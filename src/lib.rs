//! Meta-crate for the RTL-Timer reproduction workspace.
//!
//! This package exists to host the workspace-level `examples/` and `tests/`
//! directories. It re-exports every member crate so examples and integration
//! tests can reach the full stack through one dependency.

pub use rtl_timer;
pub use rtlt_bog as bog;
pub use rtlt_designgen as designgen;
pub use rtlt_liberty as liberty;
pub use rtlt_ml as ml;
pub use rtlt_sta as sta;
pub use rtlt_store as store;
pub use rtlt_synth as synth;
pub use rtlt_verilog as verilog;
