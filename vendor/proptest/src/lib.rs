//! Offline in-tree stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] test macro with optional `#![proptest_config(..)]`,
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`], numeric-range
//! strategies, [`strategy::Just`], `prop_map` / `prop_recursive`, string
//! strategies from a simplified regex alternation syntax, and
//! [`collection::vec`].
//!
//! Differences from the real crate (documented substitutions): cases are
//! generated from a fixed deterministic seed per test, and failing inputs
//! are **not shrunk** — the panic message reports the case index instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[doc(hidden)]
pub use ::rand as __rand;

/// Declares deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///     /// docs / attributes
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0.0f64..1.0, 4..64)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                // Per-test deterministic seed: hash of the test name.
                let mut __seed: u64 = 0xcafe_f00d_d15e_a5e5;
                for __b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x100000001b3) ^ (__b as u64);
                }
                for __case in 0..__config.cases {
                    let mut __rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                            __seed ^ (__case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__e) = __result {
                        ::core::panic!(
                            "proptest case {}/{} failed: {}",
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Like `assert!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
