//! Test-runner configuration and failure reporting.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; 64 keeps the fully-offline debug
        // test run fast while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (no shrinking in this stand-in).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
