//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// A cloneable generator of values of one type.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf generator, `recurse` wraps an
    /// inner strategy into a deeper one. `depth` bounds the nesting;
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of one value type (see
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.arms[rng.gen_range(0..self.arms.len())].generate(rng)
    }
}

/// [`Strategy::prop_recursive`] adapter.
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        fn expand<T: 'static>(rec: &Recursive<T>, depth: u32) -> BoxedStrategy<T> {
            if depth == 0 {
                rec.base.clone()
            } else {
                (rec.recurse)(expand(rec, depth - 1))
            }
        }
        let d = rng.gen_range(0..=self.depth);
        expand(self, d).generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `&str` strategies generate strings from a **simplified** regex syntax:
/// top-level `|` alternation over sequences of literal characters, `[...]`
/// character classes (no ranges/negation) and `\`-escapes. This covers the
/// patterns used by the workspace's tests; anything fancier is generated
/// literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let branches = split_alternation(self);
        let branch = branches[rng.gen_range(0..branches.len())];
        render_branch(branch, rng)
    }
}

fn split_alternation(pattern: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let bytes = pattern.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1,
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b'|' if depth == 0 => {
                out.push(&pattern[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    out.push(&pattern[start..]);
    out
}

fn render_branch(branch: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = branch.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '\\' if i + 1 < chars.len() => {
                out.push(chars[i + 1]);
                i += 2;
            }
            '[' => {
                let mut class = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                    }
                    class.push(chars[i]);
                    i += 1;
                }
                i += 1; // closing ']'
                if !class.is_empty() {
                    out.push(class[rng.gen_range(0..class.len())]);
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_lite_alternation_and_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = "[-+&|^]|==|<<|>>|<";
        let allowed = ["-", "+", "&", "|", "^", "==", "<<", ">>", "<"];
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(allowed.contains(&s.as_str()), "unexpected {s:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = Just("x".to_owned());
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
        });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.contains('x'));
        }
    }
}
