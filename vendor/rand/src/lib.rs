//! Offline in-tree stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing the API subset this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen`] / [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The build environment has no access to crates.io, so this crate takes the
//! name `rand` in the workspace (see `vendor/README.md`). The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given seed,
//! statistically solid for the workloads here, but **not** the same stream
//! as the real `rand::rngs::StdRng` (ChaCha12) and not cryptographic.

pub mod rngs;
pub mod seq;

/// Minimal generator core: everything derives from a 64-bit output step.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset: only `seed_from_u64` is needed here).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (uniform bits for integers, the unit interval for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`], producing values of type `T`.
///
/// `T` is a type parameter (not an associated type) and the range impls are
/// blanket impls over [`SampleUniform`], so integer-literal ranges unify
/// with the expected result type exactly like the real crate.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

// Unbiased u64 in [0, span) via 128-bit multiply (Lemire reduction; the
// tiny residual bias is < 2^-64, irrelevant for these workloads).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    // `$u` is the same-width unsigned type: the span must be computed there
    // so that e.g. an i8 span of 200 widens zero-extended, not sign-extended.
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == <$u>::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // The endpoint has measure zero; reuse the half-open sampler.
                <$t as SampleUniform>::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(5..=12);
            assert!((5..=12).contains(&i));
        }
    }

    #[test]
    fn signed_ranges_with_wide_spans_stay_in_bounds() {
        // Span 200 overflows i8: the span math must go through u8, not a
        // sign-extending cast.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "v = {v}");
            let w = rng.gen_range(i32::MIN..i32::MAX);
            assert!(w < i32::MAX);
            let x = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = x; // full-range inclusive must not panic
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }
}
