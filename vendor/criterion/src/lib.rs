//! Offline in-tree stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements the API subset the workspace's `benches/` use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`] — with a plain wall-clock measurement loop:
//! a short warm-up, then `sample_size` timed samples, reporting
//! min / median / max to stdout. No statistical analysis, plots, or
//! comparison to saved baselines.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Benchmark driver handed to the functions in a [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group; settings on the group apply to its benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark named `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Input-size hints (accepted for API compatibility; ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    s.sort();
    let median = s[s.len() / 2];
    println!(
        "{id:<40} time: [min {:>10} | median {:>10} | max {:>10}] ({} samples)",
        fmt_duration(s[0]),
        fmt_duration(median),
        fmt_duration(*s.last().expect("non-empty")),
        s.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
