//! Quickstart: compile Verilog, build the BOG, run pseudo-STA, print an
//! endpoint timing report — the first half of the RTL-Timer flow with no ML.
//!
//! Run with: `cargo run --release --example quickstart`

use rtl_timer_repro::{bog, liberty, sta, verilog};

fn main() -> Result<(), verilog::VerilogError> {
    let src = "
        module accumulator(input clk, input rst, input [15:0] din, output [15:0] sum, output parity);
          reg [15:0] acc;
          reg [15:0] stage;
          always @(posedge clk) begin
            if (rst) begin
              acc <= 16'd0;
              stage <= 16'd0;
            end else begin
              stage <= din * din[7:0];
              acc <= acc + stage;
            end
          end
          assign sum = acc;
          assign parity = ^acc;
        endmodule";

    // 1. Frontend: parse + elaborate to a word-level netlist.
    let netlist = verilog::compile(src, "accumulator")?;
    println!(
        "netlist: {} registers, {} word ops",
        netlist.regs().len(),
        netlist.stats().ops
    );

    // 2. Bit-blast to the SOG Boolean operator graph.
    let sog = bog::blast(&netlist);
    let stats = sog.stats();
    println!(
        "SOG: {} combinational pseudo-cells, {} DFFs, max logic level {}",
        stats.comb_total, stats.dff, stats.max_level
    );

    // 3. The four representations of the paper.
    for v in bog::BogVariant::ALL {
        let g = sog.to_variant(v);
        println!("  {v:<5} -> {:6} ops", g.stats().comb_total);
    }

    // 4. Pseudo-STA on the SOG as a pseudo netlist.
    let lib = liberty::Library::pseudo_bog();
    let run = sta::Sta::run(
        &sog,
        &lib,
        sta::StaConfig {
            clock_period: 0.8,
            ..Default::default()
        },
    );
    println!(
        "\npseudo-STA @ 0.8ns clock: WNS {:.3}ns TNS {:.3}ns",
        run.result().wns,
        run.result().tns
    );
    println!("\nworst 8 endpoints:");
    for row in run.endpoint_report().into_iter().take(8) {
        println!("  {row}");
    }
    Ok(())
}
