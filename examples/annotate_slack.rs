//! Application 1 (paper §3.5.1): automatic slack annotation on your
//! Verilog. Trains RTL-Timer on a few designs, predicts an unseen design,
//! and prints its source annotated with per-signal slack and criticality
//! rank — no logic synthesis needed for the new design's feedback.
//!
//! Run with: `cargo run --release --example annotate_slack`

use rtl_timer_repro::rtl_timer::annotate::annotate_source;
use rtl_timer_repro::rtl_timer::pipeline::{DesignSet, RtlTimer, TimerConfig};

fn main() {
    let cfg = TimerConfig::default();

    // Train on a handful of suite designs; annotate one held-out design.
    let names = ["b17", "b20", "conmax", "Marax", "Vex_2"];
    let sources: Vec<(String, String)> = names
        .iter()
        .map(|n| {
            (
                (*n).to_owned(),
                rtlt_designgen::generate(n).expect("catalog design"),
            )
        })
        .collect();
    eprintln!("preparing {} designs (synthesis labels)...", sources.len());
    let set = DesignSet::prepare_named(&sources, &cfg).expect("designs compile");

    let (train, test) = set.split(&["conmax"]);
    eprintln!("training RTL-Timer on {} designs ...", train.len());
    let model = RtlTimer::fit(&train, &cfg);

    let target = test[0];
    let pred = model.predict(target);
    eprintln!(
        "predicted on '{}': signal R = {:.3}, ranking COVR = {:.1}%",
        target.name,
        pred.signal_r(),
        pred.signal_covr_ranking()
    );

    println!("{}", annotate_source(target, &pred));
}
