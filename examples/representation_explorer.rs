//! Explore the four BOG representations of one design: operator mix, size,
//! depth, and how well each representation's raw pseudo-STA correlates with
//! post-synthesis ground truth (the motivation for the learned ensemble).
//!
//! Run with: `cargo run --release --example representation_explorer [design]`

use rtl_timer_repro::rtl_timer::metrics::pearson;
use rtl_timer_repro::{bog, liberty, sta, synth, verilog};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "b17".to_owned());
    let src = rtlt_designgen::generate(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown design '{name}', available: {:?}",
            rtlt_designgen::catalog()
                .iter()
                .map(|d| d.name)
                .collect::<Vec<_>>()
        );
        std::process::exit(1);
    });
    let netlist = verilog::compile(&src, &name).expect("catalog design compiles");
    let sog = bog::blast(&netlist);

    // Ground truth from the synthesis simulator.
    let lib = liberty::Library::nangate45_like();
    let res = synth::synthesize(&sog, &lib, &synth::SynthOptions::default());
    println!(
        "{name}: clock {:.3}ns, ground-truth WNS {:.3} TNS {:.1}, {} endpoints\n",
        res.clock_period,
        res.wns,
        res.tns,
        sog.regs().len()
    );

    let pseudo = liberty::Library::pseudo_bog();
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9}",
        "repr", "NOT", "AND", "OR/XOR", "MUX", "depth", "R(STA,GT)"
    );
    for v in bog::BogVariant::ALL {
        let g = sog.to_variant(v);
        let s = g.stats();
        let run = sta::Sta::run(
            &g,
            &pseudo,
            sta::StaConfig {
                clock_period: res.clock_period,
                ..Default::default()
            },
        );
        // Correlation of the raw pseudo-STA endpoint arrivals with labels.
        let n = g.regs().len();
        let sta_at: Vec<f64> = run.result().endpoint_at[..n].to_vec();
        let labels: Vec<f64> = res.endpoint_at.clone();
        let r = pearson(&sta_at, &labels);
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9.3}",
            v.to_string(),
            s.not,
            s.and2,
            s.or2 + s.xor2,
            s.mux2,
            s.max_level,
            r
        );
    }
    println!("\nNo single representation's raw STA matches the netlist well —");
    println!("that residual is what RTL-Timer's learned ensemble closes (paper Fig. 5a).");
}
