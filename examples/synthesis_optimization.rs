//! Application 2 (paper §3.5.2): prediction-guided synthesis optimization.
//! Uses RTL-Timer's fine-grained ranking to drive `group_path` + `retime`,
//! and compares default / predicted-ranking / ground-truth-ranking flows —
//! one row of the paper's Table 6.
//!
//! Run with: `cargo run --release --example synthesis_optimization`

use rtl_timer_repro::rtl_timer::optimize::optimize_design;
use rtl_timer_repro::rtl_timer::pipeline::{DesignSet, RtlTimer, TimerConfig};

fn main() {
    let cfg = TimerConfig::default();
    let names = ["b17", "b17_1", "b20", "Marax", "Vex_2", "FPU"];
    let sources: Vec<(String, String)> = names
        .iter()
        .map(|n| {
            (
                (*n).to_owned(),
                rtlt_designgen::generate(n).expect("catalog design"),
            )
        })
        .collect();
    eprintln!("preparing {} designs ...", sources.len());
    let set = DesignSet::prepare_named(&sources, &cfg).expect("designs compile");

    let target_name = "FPU";
    let (train, test) = set.split(&[target_name]);
    eprintln!("training on {} designs ...", train.len());
    let model = RtlTimer::fit(&train, &cfg);
    let target = test[0];
    let pred = model.predict(target);

    eprintln!("running default / group+retime(pred) / group+retime(real) synthesis flows ...");
    let outcome = optimize_design(target, &pred);

    println!("design {target_name} @ clock {:.3}ns", target.clock);
    println!(
        "  default   : WNS {:7.3}  TNS {:9.3}  power {:8.1}  area {:8.1}",
        outcome.default.wns, outcome.default.tns, outcome.default.power, outcome.default.area
    );
    let dp = outcome.with_pred.delta_pct(&outcome.default);
    println!(
        "  w. pred   : WNS {:7.3}  TNS {:9.3}  (Δ% {:+.1} / {:+.1}; power {:+.1}%, area {:+.1}%)",
        outcome.with_pred.wns, outcome.with_pred.tns, dp.wns, dp.tns, dp.power, dp.area
    );
    let dr = outcome.with_real.delta_pct(&outcome.default);
    println!(
        "  w. real   : WNS {:7.3}  TNS {:9.3}  (Δ% {:+.1} / {:+.1}; power {:+.1}%, area {:+.1}%)",
        outcome.with_real.wns, outcome.with_real.tns, dr.wns, dr.tns, dr.power, dr.area
    );
    println!("\nNegative WNS/TNS deltas are improvements (violation magnitude reduced).");
}
