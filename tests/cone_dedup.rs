//! Shared-cone evaluation invariants: deduplicated featurization must be
//! byte-for-byte indistinguishable from the naive per-signal path, for
//! adversarial cone structures and under `conesta` artifact corruption.

use proptest::prelude::*;
use rtl_timer_repro::rtl_timer::cache::stage;
use rtl_timer_repro::rtl_timer::dataset::{
    build_all_variant_data_scratch, FeaturizeScratch, VariantData,
};
use rtl_timer_repro::store::Store;

fn liberty() -> rtl_timer_repro::liberty::Library {
    rtl_timer_repro::liberty::Library::pseudo_bog()
}

fn blasted(src: &str, top: &str) -> rtl_timer_repro::bog::Bog {
    rtl_timer_repro::bog::blast(&rtl_timer_repro::verilog::compile(src, top).expect("compiles"))
}

/// f64 slices compared as raw bits: `==` on floats would conflate
/// `-0.0`/`0.0` and hide NaN divergence, and "bit-exact" is the contract.
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_bit_identical(a: &[VariantData], b: &[VariantData]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.variant, y.variant);
        assert_eq!(x.groups, y.groups);
        assert_eq!(bits(&x.endpoint_sta_at), bits(&y.endpoint_sta_at));
        assert_eq!(bits(&x.driving_regs), bits(&y.driving_regs));
        assert_eq!(bits(&x.design_feats), bits(&y.design_feats));
        assert_eq!(x.rows.len(), y.rows.len());
        for (r, s) in x.rows.iter().zip(&y.rows) {
            assert_eq!(bits(&r.features), bits(&s.features));
            assert_eq!(r.ops, s.ops);
            assert_eq!(r.endpoint, s.endpoint);
            assert_eq!(r.tok_feats.len(), s.tok_feats.len());
            for (tf, sf) in r.tok_feats.iter().zip(&s.tok_feats) {
                assert_eq!(bits(tf), bits(sf));
            }
        }
    }
}

/// A design with `twins` isomorphic register cones (same structure over
/// disjoint input lanes, distinct names) plus one deliberately different
/// cone — the adversarial case for structural fingerprinting.
fn twin_source(width: u32, twins: usize, op: &str) -> String {
    let x = width - 1;
    let mut ports = String::new();
    let mut body = String::new();
    for i in 0..twins {
        ports.push_str(&format!(
            "input [{x}:0] a{i}, input [{x}:0] b{i}, output [{x}:0] q{i}, "
        ));
        body.push_str(&format!(
            "reg [{x}:0] r{i};\nalways @(posedge clk) r{i} <= (a{i} {op} b{i}) ^ (r{i} >> 1);\nassign q{i} = r{i};\n"
        ));
    }
    format!(
        "module t(input clk, {ports}input [{x}:0] c, output [{x}:0] qz);\n\
         reg [{x}:0] rz;\n\
         always @(posedge clk) rz <= c + {w}'d3;\n\
         assign qz = rz;\n\
         {body}endmodule",
        w = width
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary small designs with shared bit-lane structure and
    /// extreme clocks, the deduplicated path (shared seed-independent
    /// evaluation + seeded replay) matches the naive per-signal path
    /// bit for bit, and the shared evaluation really is shared.
    #[test]
    fn dedup_matches_naive_bit_for_bit(
        width in 2u32..7,
        twins in 2usize..4,
        pick in 0usize..4,
        seed in 0u64..1000,
        clock_pick in 0usize..4,
    ) {
        let ops = ["+", "&", "^", "|"];
        // Includes a denormal-adjacent and a huge clock: arithmetic near
        // the extremes is where a reordered kernel would drift first.
        let clocks = [1.0f64, 0.037, 4.9e-300, 8.1e12];
        let clock = clocks[clock_pick];
        let sog = blasted(&twin_source(width, twins, ops[pick]), "t");
        let lib = liberty();

        let dedup_store = Store::in_memory();
        let naive_store = Store::in_memory();
        let mut scratch = FeaturizeScratch::new();
        let dedup =
            build_all_variant_data_scratch(&dedup_store, &sog, &lib, clock, seed, true, &mut scratch);
        let naive =
            build_all_variant_data_scratch(&naive_store, &sog, &lib, clock, seed, false, &mut scratch);
        assert_bit_identical(&dedup, &naive);

        // Both paths key shards identically (same misses), the naive path
        // never touches conesta, and the twins collapse onto shared
        // evaluations (fewer conesta entries than shard entries).
        let d = dedup_store.stats();
        let n = naive_store.stats();
        prop_assert_eq!(d.namespace(stage::SHARD).misses, n.namespace(stage::SHARD).misses);
        prop_assert_eq!(n.namespace(stage::CONESTA).misses, 0);
        let conesta = d.namespace(stage::CONESTA).misses;
        prop_assert!(conesta > 0);
        prop_assert!(
            conesta < d.namespace(stage::SHARD).misses,
            "isomorphic cones should share evaluations ({} conesta vs {} shard)",
            conesta,
            d.namespace(stage::SHARD).misses
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A corrupted `conesta` disk entry must degrade to recompute (same
    /// bytes out) and heal the entry in place, whichever byte is flipped.
    #[test]
    fn corrupt_conesta_entry_degrades_and_heals(
        seed in 0u64..100,
        flip in 1u8..255,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "rtlt-conesta-heal-{}-{}-{}",
            std::process::id(),
            seed,
            flip
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sog = blasted(&twin_source(4, 2, "^"), "t");
        let lib = liberty();
        let clock = 0.73;

        let reference = {
            let store = Store::on_disk(&dir);
            let mut scratch = FeaturizeScratch::new();
            let out =
                build_all_variant_data_scratch(&store, &sog, &lib, clock, seed, true, &mut scratch);
            store.flush();
            out
        };

        // Corrupt every conesta payload and drop the derived shards so the
        // rebuild is forced through the (now poisoned) kernel cache.
        let conesta_dir = dir.join(stage::CONESTA);
        let mut corrupted = 0usize;
        for entry in std::fs::read_dir(&conesta_dir).expect("conesta dir") {
            let path = entry.expect("dir entry").path();
            let mut bytes = std::fs::read(&path).expect("read entry");
            let mid = bytes.len() / 2;
            bytes[mid] ^= flip;
            std::fs::write(&path, &bytes).expect("write corrupt entry");
            corrupted += 1;
        }
        prop_assert!(corrupted > 0);
        std::fs::remove_dir_all(dir.join(stage::SHARD)).expect("drop shards");

        let rebuilt = {
            let store = Store::on_disk(&dir);
            let mut scratch = FeaturizeScratch::new();
            let out =
                build_all_variant_data_scratch(&store, &sog, &lib, clock, seed, true, &mut scratch);
            store.flush();
            // The corrupt payloads fail their checksum, so every conesta
            // read degrades to a recompute rather than decoding garbage.
            prop_assert_eq!(store.stats().namespace(stage::CONESTA).misses as usize, corrupted);
            out
        };
        assert_bit_identical(&reference, &rebuilt);

        // Healed: a third cold store now serves conesta from disk again.
        {
            let _ = std::fs::remove_dir_all(dir.join(stage::SHARD));
            let store = Store::on_disk(&dir);
            let mut scratch = FeaturizeScratch::new();
            let again =
                build_all_variant_data_scratch(&store, &sog, &lib, clock, seed, true, &mut scratch);
            prop_assert_eq!(store.stats().namespace(stage::CONESTA).misses, 0);
            assert_bit_identical(&reference, &again);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
