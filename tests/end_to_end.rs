//! End-to-end integration: Verilog source → labels → trained model →
//! prediction → annotation → optimization, across crate boundaries.

use rtl_timer_repro::rtl_timer::annotate::annotate_source;
use rtl_timer_repro::rtl_timer::optimize::{optimize_design, path_groups_from_scores};
use rtl_timer_repro::rtl_timer::pipeline::{DesignSet, RtlTimer, TimerConfig};

fn sources() -> Vec<(String, String)> {
    let mk = |name: &str, w: u32, body: &str| {
        (
            name.to_owned(),
            format!(
                "module {name}(input clk, input rst, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
                   reg [{x}:0] r;
                   reg [{x}:0] s;
                   always @(posedge clk)
                     if (rst) begin r <= {w}'d0; s <= {w}'d0; end
                     else begin r <= {body}; s <= s + r; end
                   assign q = s;
                 endmodule",
                x = w - 1
            ),
        )
    };
    vec![
        mk("ia", 8, "a + b"),
        mk("ib", 10, "(a - b) ^ s"),
        mk("ic", 12, "(a & b) | (s >> 1)"),
        mk("id", 9, "a + (b << 1)"),
    ]
}

fn cfg() -> TimerConfig {
    TimerConfig {
        threads: 2,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_annotates_and_optimizes() {
    let set = DesignSet::prepare_named_or_panic(&sources(), &cfg());
    let (train, test) = set.split(&["id"]);
    let model = RtlTimer::fit(&train, &cfg());
    let d = test[0];
    let pred = model.predict(d);

    // Predictions must cover all endpoints/signals with finite values.
    assert_eq!(pred.bit_pred.len(), d.labels_at.len());
    assert!(pred.bit_pred.iter().all(|p| p.is_finite()));
    assert_eq!(pred.signal_pred.len(), d.signals().len());

    // Annotation embeds every top-level signal.
    let annotated = annotate_source(d, &pred);
    for s in d.signals() {
        assert!(
            annotated.contains(&format!("({})", s.name)),
            "missing annotation for {}",
            s.name
        );
    }

    // Optimization flows run and produce plausible metrics.
    let outcome = optimize_design(d, &pred);
    assert!(outcome.default.area > 0.0);
    assert!(outcome.with_pred.area > 0.0);
    assert!(outcome.with_pred.wns <= 0.0);
    // Grouping must partition all endpoints.
    let pg = path_groups_from_scores(&pred.bit_pred);
    let total: usize = pg.groups.iter().map(|g| g.len()).sum();
    assert_eq!(total, d.labels_at.len());
}

#[test]
fn deterministic_preparation_and_prediction() {
    let set1 = DesignSet::prepare_named_or_panic(&sources()[..2], &cfg());
    let set2 = DesignSet::prepare_named_or_panic(&sources()[..2], &cfg());
    for (a, b) in set1.designs().iter().zip(set2.designs()) {
        assert_eq!(
            a.labels_at, b.labels_at,
            "{} labels must be reproducible",
            a.name
        );
        assert_eq!(a.wns, b.wns);
        assert_eq!(a.tns, b.tns);
    }
    let (train1, _) = set1.split(&["ia"]);
    let (train2, _) = set2.split(&["ia"]);
    let m1 = RtlTimer::fit(&train1, &cfg());
    let m2 = RtlTimer::fit(&train2, &cfg());
    let p1 = m1.predict(set1.get("ia").unwrap());
    let p2 = m2.predict(set2.get("ia").unwrap());
    assert_eq!(p1.bit_pred, p2.bit_pred);
    assert_eq!(p1.wns_pred, p2.wns_pred);
}

#[test]
fn design_data_round_trips_through_the_disk_store() {
    // A preparation written by one store instance must be readable by a
    // fresh instance over the same directory (the cross-process warm-cache
    // path of the bench binaries), and the decoded DesignData must be
    // bit-identical to the computed one — the byte-identical-tables
    // guarantee rests on this.
    use rtl_timer_repro::rtl_timer::cache::stage;
    use rtl_timer_repro::rtl_timer::PrepareStages;
    use rtlt_store::Store;

    let dir = std::env::temp_dir().join(format!("rtlt-e2e-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = cfg();
    let stages = PrepareStages::new(&config);
    let (name, src) = &sources()[0];

    let writer = Store::on_disk(&dir);
    let computed = stages.run_with(&writer, name, src).expect("compiles");

    let reader = Store::on_disk(&dir);
    let decoded = stages.run_with(&reader, name, src).expect("warm hit");
    let s = reader.stats().namespace(stage::FEATURIZE);
    assert_eq!((s.disk_hits, s.misses), (1, 0), "served from disk");

    assert_eq!(decoded.name, computed.name);
    assert_eq!(decoded.labels_at, computed.labels_at);
    assert_eq!(decoded.signal_names, computed.signal_names);
    assert_eq!(decoded.sog.nodes(), computed.sog.nodes());
    assert_eq!(decoded.sog.regs(), computed.sog.regs());
    assert_eq!(decoded.clock.to_bits(), computed.clock.to_bits());
    assert_eq!(decoded.wns.to_bits(), computed.wns.to_bits());
    assert_eq!(decoded.ast_feats, computed.ast_feats);
    assert_eq!(decoded.prepare_key, computed.prepare_key);
    for (dv, cv) in decoded.variant_data.iter().zip(&computed.variant_data) {
        assert_eq!(dv.variant, cv.variant);
        assert_eq!(dv.endpoint_sta_at, cv.endpoint_sta_at);
        assert_eq!(dv.groups, cv.groups);
        assert_eq!(dv.design_feats, cv.design_feats);
        assert_eq!(dv.rows.len(), cv.rows.len());
        for (dr, cr) in dv.rows.iter().zip(&cv.rows) {
            assert_eq!(dr.features, cr.features);
            assert_eq!(dr.ops, cr.ops);
            assert_eq!(dr.tok_feats, cr.tok_feats);
            assert_eq!(dr.endpoint, cr.endpoint);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn labels_respond_to_structure() {
    // The register fed by a multiplier must have later ground-truth
    // arrivals than a pass-through register in the same design.
    let src = "module lt(input clk, input [11:0] a, input [11:0] b,
                        output [11:0] q1, output [11:0] q2);
                 reg [11:0] fast;
                 reg [11:0] slow;
                 always @(posedge clk) begin
                   fast <= a;
                   slow <= a * b;
                 end
                 assign q1 = fast;
                 assign q2 = slow;
               endmodule";
    let set = DesignSet::prepare_named_or_panic(&[("lt".to_owned(), src.to_owned())], &cfg());
    let d = set.get("lt").unwrap();
    let sig_at = |name: &str| -> f64 {
        let sig = d.signals().iter().find(|s| s.name == name).unwrap();
        sig.regs
            .iter()
            .map(|&b| d.labels_at[b as usize])
            .fold(f64::MIN, f64::max)
    };
    assert!(
        sig_at("slow") > sig_at("fast") + 0.05,
        "slow {} vs fast {}",
        sig_at("slow"),
        sig_at("fast")
    );
}
