//! Keeps `docs/` honest: the configuration table must list exactly the
//! `RTLT_*` environment variables the code mentions, and every relative
//! markdown link in `README.md` and `docs/*.md` must resolve to a real
//! file. Both checks are pure directory walks — no network, no build.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // Vendored stand-ins and build output are not our surface.
            if name == "vendor" || name == "target" || name == ".git" {
                continue;
            }
            walk_rs_files(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Every `RTLT_<NAME>` token in `text`, longest-match.
fn rtlt_tokens(text: &str, into: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(off) = text[i..].find("RTLT_") {
        let start = i + off;
        let mut end = start + "RTLT_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end] == b'_'
                || bytes[end].is_ascii_digit())
        {
            end += 1;
        }
        if end > start + "RTLT_".len() {
            into.insert(text[start..end].trim_end_matches('_').to_string());
        }
        i = end;
    }
}

#[test]
fn configuration_table_matches_the_env_vars_the_code_mentions() {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        walk_rs_files(&root.join(dir), &mut files);
    }
    assert!(!files.is_empty(), "source walk found nothing — wrong root?");

    let mut in_code = BTreeSet::new();
    for f in &files {
        if let Ok(text) = fs::read_to_string(f) {
            rtlt_tokens(&text, &mut in_code);
        }
    }

    // Documented = the rows of the configuration.md table (lines of the
    // form `| `RTLT_...` | ... |`), not incidental prose mentions.
    let config = fs::read_to_string(root.join("docs/configuration.md"))
        .expect("docs/configuration.md exists");
    let mut documented = BTreeSet::new();
    for line in config.lines() {
        if let Some(rest) = line.strip_prefix("| `RTLT_") {
            let var = rest.split('`').next().unwrap_or("");
            documented.insert(format!("RTLT_{var}"));
        }
    }

    let undocumented: Vec<_> = in_code.difference(&documented).collect();
    let stale: Vec<_> = documented.difference(&in_code).collect();
    assert!(
        undocumented.is_empty(),
        "env vars used in code but missing from docs/configuration.md: {undocumented:?}"
    );
    assert!(
        stale.is_empty(),
        "env vars documented in docs/configuration.md but absent from code: {stale:?}"
    );
}

/// Extracts markdown link targets: the `x` of `](x)`, minus anchors.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(off) = text[i..].find("](") {
        let start = i + off + 2;
        if let Some(len) = text[start..].find(')') {
            let target = &text[start..start + len];
            out.push(target.split('#').next().unwrap_or("").to_string());
            i = start + len;
        } else {
            break;
        }
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut pages = vec![root.join("README.md")];
    for entry in fs::read_dir(root.join("docs"))
        .expect("docs/ exists")
        .flatten()
    {
        if entry.path().extension().and_then(|e| e.to_str()) == Some("md") {
            pages.push(entry.path());
        }
    }
    assert!(pages.len() >= 5, "expected README + at least 4 docs pages");

    let mut broken = Vec::new();
    for page in &pages {
        let text = fs::read_to_string(page).expect("readable page");
        let dir = page.parent().expect("page has a dir");
        for target in link_targets(&text) {
            if target.is_empty() || target.starts_with("http://") || target.starts_with("https://")
            {
                continue;
            }
            if !dir.join(&target).exists() {
                broken.push(format!("{}: {target}", page.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}
