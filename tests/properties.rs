//! Workspace-level property tests: metric invariants, printer round-trips
//! over generated expression grammars, and graph-construction invariants.

use proptest::prelude::*;
use rtl_timer_repro::rtl_timer::metrics::{covr, mape, pearson, r_squared, rank_groups};
use rtl_timer_repro::verilog::{parse, printer};

// ---------------------------------------------------------------------------
// Metric invariants.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn pearson_bounded_and_symmetric(
        a in proptest::collection::vec(-1e3f64..1e3, 4..64),
        b in proptest::collection::vec(-1e3f64..1e3, 4..64),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let r = pearson(a, b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((r - pearson(b, a)).abs() < 1e-9);
    }

    #[test]
    fn pearson_scale_invariant(
        a in proptest::collection::vec(-1e2f64..1e2, 4..32),
        scale in 0.1f64..50.0,
        shift in -100.0f64..100.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * scale + shift).collect();
        // Perfect linear relation with positive slope → R = 1 (unless a is
        // constant, where R = 0 by convention).
        let r = pearson(&a, &b);
        prop_assert!(r > 0.999 || r == 0.0, "r = {r}");
    }

    #[test]
    fn covr_bounds_and_perfection(
        labels in proptest::collection::vec(0.0f64..1e3, 8..128),
    ) {
        let c = covr(&labels, &labels);
        prop_assert!(c <= 100.0 + 1e-9);
        // Self-coverage with distinct scores is exact; ties may split
        // groups arbitrarily but stay bounded.
        let mut sorted = labels.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sorted.dedup();
        let distinct = sorted.len() == labels.len();
        if distinct {
            prop_assert!((c - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_groups_partition(scores in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let g = rank_groups(&scores);
        prop_assert_eq!(g.len(), scores.len());
        prop_assert!(g.iter().all(|&x| x < 4));
        // Group sizes follow the paper's fractions (to rounding).
        let n = scores.len() as f64;
        let c0 = g.iter().filter(|&&x| x == 0).count() as f64;
        prop_assert!(c0 >= 1.0 && c0 <= (n * 0.05).ceil().max(1.0) + 1.0);
    }

    #[test]
    fn mape_zero_for_perfect(pred in proptest::collection::vec(0.1f64..1e3, 2..64)) {
        prop_assert!(mape(&pred, &pred) < 1e-9);
        // R² of a perfect fit is 1 whenever the labels carry any variance
        // (constant labels return 0 by convention).
        let varied = pred.iter().any(|v| (v - pred[0]).abs() > 1e-9);
        if varied {
            prop_assert!((r_squared(&pred, &pred) - 1.0).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// Printer round-trip over a generated expression grammar.
// ---------------------------------------------------------------------------

fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        (1u64..200).prop_map(|v| format!("8'd{}", v.min(255))),
        (0u32..8).prop_map(|i| format!("a[{i}]")),
        Just("b[5:2]".to_owned()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), "[-+&|^]|==|<<|>>|<")
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            (inner.clone()).prop_map(|e| format!("(~{e})")),
            (inner.clone()).prop_map(|e| format!("(^{e})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("({c} ? {t} : {f})")),
            (inner.clone(), inner).prop_map(|(l, r)| format!("{{{l}, {r}}}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → print → parse must be a fixpoint for arbitrary expressions
    /// of the subset grammar.
    #[test]
    fn printer_roundtrip_random_expressions(expr in expr_strategy()) {
        let src = format!(
            "module p(input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);
               assign y = {expr};
             endmodule"
        );
        let ast1 = parse(&src).expect("generated source parses");
        let p1 = printer::print_source(&ast1);
        let ast2 = parse(&p1).unwrap_or_else(|e| panic!("reparse: {e}\n{p1}"));
        let p2 = printer::print_source(&ast2);
        prop_assert_eq!(p1, p2);
    }

    /// Elaboration of printed source matches the original (same netlist
    /// size and register count).
    #[test]
    fn printed_source_elaborates_identically(expr in expr_strategy()) {
        let src = format!(
            "module p(input clk, input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);
               reg [7:0] r;
               always @(posedge clk) r <= {expr};
               assign y = r;
             endmodule"
        );
        let ast1 = parse(&src).expect("parses");
        let n1 = rtl_timer_repro::verilog::elaborate(&ast1, "p").expect("elaborates");
        let printed = printer::print_source(&ast1);
        let ast2 = parse(&printed).expect("reparses");
        let n2 = rtl_timer_repro::verilog::elaborate(&ast2, "p").expect("re-elaborates");
        prop_assert_eq!(n1.regs().len(), n2.regs().len());
        prop_assert_eq!(n1.stats().ops, n2.stats().ops);
    }
}

// ---------------------------------------------------------------------------
// Graph invariants on generated designs.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Strashing: no two structurally identical nodes in a blasted graph.
    #[test]
    fn no_duplicate_structural_nodes(width in 3u32..10, pick in 0usize..4) {
        let ops = ["+", "&", "^", "|"];
        let src = format!(
            "module s(input [{x}:0] a, input [{x}:0] b, output [{x}:0] y, output [{x}:0] z);
               assign y = a {op} b;
               assign z = (a {op} b) ^ a;
             endmodule",
            x = width - 1,
            op = ops[pick],
        );
        let bog = rtl_timer_repro::bog::blast(
            &rtl_timer_repro::verilog::compile(&src, "s").expect("compiles"),
        );
        let mut seen = std::collections::HashSet::new();
        for id in 0..bog.len() as u32 {
            let n = bog.node(id);
            if n.op.is_comb() {
                prop_assert!(
                    seen.insert((n.op, n.fanins)),
                    "duplicate structural node {:?}",
                    (n.op, n.fanins)
                );
            }
        }
    }

    /// Variant conversions preserve endpoint count and only use allowed
    /// operators, for arbitrary small datapaths.
    #[test]
    fn variant_alphabet_invariant(width in 2u32..8, seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ops = ["+", "-", "&", "|", "^"];
        let op = ops[rng.gen_range(0..ops.len())];
        let src = format!(
            "module v(input clk, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
               reg [{x}:0] r;
               always @(posedge clk) r <= (a {op} b) ^ (r >> 1);
               assign q = r;
             endmodule",
            x = width - 1
        );
        let sog = rtl_timer_repro::bog::blast(
            &rtl_timer_repro::verilog::compile(&src, "v").expect("compiles"),
        );
        for v in rtl_timer_repro::bog::BogVariant::ALL {
            let g = sog.to_variant(v);
            prop_assert_eq!(g.regs().len(), sog.regs().len());
            for n in g.nodes() {
                prop_assert!(v.allows(n.op));
            }
        }
    }
}
