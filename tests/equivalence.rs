//! Cross-crate functional-equivalence properties: the word-level simulator,
//! the bit-blasted SOG, all four BOG variants, and the balanced SOG must
//! compute identical functions — on real benchmark designs and on
//! property-generated random datapaths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtl_timer_repro::bog::{blast, BitSim, BogVariant};
use rtl_timer_repro::verilog::compile;

/// Drives all representations of a design with identical random stimuli for
/// `cycles` cycles and checks that every output word matches the word-level
/// simulator everywhere.
fn check_design(name: &str, src: &str, cycles: usize, seed: u64) {
    let netlist = compile(src, name).expect("compiles");
    let sog = blast(&netlist);
    let balanced = rtl_timer_repro::synth::opt::balance(&sog);
    let mut graphs = vec![balanced];
    for v in BogVariant::ALL {
        graphs.push(sog.to_variant(v));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wsim = netlist.simulator();
    let mut bsims: Vec<BitSim> = graphs.iter().map(BitSim::new).collect();

    let input_names: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&i| netlist.input_name(i).to_owned())
        .collect();
    let input_widths: Vec<u32> = netlist
        .inputs()
        .iter()
        .map(|&i| netlist.node(i).width)
        .collect();
    let outputs: Vec<String> = netlist.outputs().iter().map(|(n, _)| n.clone()).collect();

    for _ in 0..cycles {
        for (n, w) in input_names.iter().zip(&input_widths) {
            let v = rng.gen::<u64>() & rtl_timer_repro::verilog::rtlir::mask(*w);
            wsim.set_input(n, v);
            for b in &mut bsims {
                b.set_input_word(n, &[v]);
            }
        }
        wsim.step();
        for b in &mut bsims {
            b.step();
        }
        for o in &outputs {
            let want = wsim.output(o);
            for (gi, b) in bsims.iter().enumerate() {
                let got = b.output_word(o)[0]
                    & rtl_timer_repro::verilog::rtlir::mask(
                        netlist
                            .outputs()
                            .iter()
                            .find(|(n, _)| n == o)
                            .map(|(_, id)| netlist.node(*id).width)
                            .unwrap(),
                    );
                assert_eq!(got, want, "{name}: output {o} mismatch in graph {gi}");
            }
        }
    }
}

#[test]
fn benchmark_designs_are_equivalent_across_representations() {
    // Small/medium catalog designs (keeps debug-mode runtime reasonable).
    for name in ["b20", "conmax", "b17"] {
        let src = rtlt_designgen::generate(name).unwrap();
        check_design(name, &src, 6, 0xC0FFEE);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random two-operand datapath expressions stay equivalent through
    /// blasting, balancing and variant conversion.
    #[test]
    fn random_datapath_equivalence(
        op_idx in 0usize..9,
        width in 4u32..14,
        shift in 1u32..4,
        seed in 0u64..1000,
    ) {
        let ops = ["+", "-", "&", "|", "^", "*"];
        let expr = if op_idx < 6 {
            format!("a {} b", ops[op_idx])
        } else if op_idx == 6 {
            format!("(a << {shift}) ^ b")
        } else if op_idx == 7 {
            "(a < b) ? (a + b) : (a - b)".to_string()
        } else {
            format!("{{a[{h}:0], b[{m}:{h2}]}}", h = width / 2, m = width - 1, h2 = width - 1 - width / 2)
        };
        let src = format!(
            "module p(input clk, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
               reg [{x}:0] r;
               always @(posedge clk) r <= {expr};
               assign q = r;
             endmodule",
            x = width - 1
        );
        check_design("p", &src, 4, seed);
    }

    /// Reductions and comparisons (1-bit results) survive all rewrites.
    #[test]
    fn random_predicate_equivalence(
        which in 0usize..5,
        width in 3u32..12,
        seed in 0u64..1000,
    ) {
        let expr = match which {
            0 => "&a".to_owned(),
            1 => "|a ^ ^b".to_owned(),
            2 => "a == b".to_owned(),
            3 => "a < b".to_owned(),
            _ => "^(a & b)".to_owned(),
        };
        let src = format!(
            "module p(input clk, input [{x}:0] a, input [{x}:0] b, output q);
               reg r;
               always @(posedge clk) r <= {expr};
               assign q = r;
             endmodule",
            x = width - 1
        );
        check_design("p", &src, 4, seed);
    }
}
