//! Timing path extraction: slowest path and random sampled paths.

use crate::arrival::Sta;
use rand::Rng;
use rtlt_bog::{BogOp, Endpoint, NodeId};

/// A combinational timing path into an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Target endpoint.
    pub endpoint: Endpoint,
    /// Nodes from the launching source (register Q / input / constant) to
    /// the endpoint driver, inclusive.
    pub nodes: Vec<NodeId>,
    /// Accumulated arrival time along this specific path (ns).
    pub arrival: f64,
}

impl TimingPath {
    /// Number of combinational operators on the path.
    pub fn op_count(&self, sta: &Sta<'_>) -> usize {
        self.nodes
            .iter()
            .filter(|&&n| sta.bog().node(n).op.is_comb())
            .count()
    }
}

impl<'a> Sta<'a> {
    /// Traces the slowest path `S*→i` ending at `ep` by walking the max-AT
    /// fanin chain backward.
    pub fn critical_path(&self, ep: Endpoint) -> TimingPath {
        let mut nodes = Vec::new();
        let mut cur = self.bog.endpoint_node(ep);
        nodes.push(cur);
        while self.bog.node(cur).op.is_comb() {
            let worst = self
                .bog
                .fanins(cur)
                .iter()
                .copied()
                .max_by(|&x, &y| {
                    self.res.arrival[x as usize]
                        .partial_cmp(&self.res.arrival[y as usize])
                        .expect("finite ATs")
                })
                .expect("comb node has fanins");
            nodes.push(worst);
            cur = worst;
        }
        nodes.reverse();
        let arrival = self.res.arrival[*nodes.last().expect("nonempty") as usize];
        TimingPath {
            endpoint: ep,
            nodes,
            arrival,
        }
    }

    /// Samples one random path `L(k)*→i` by a backward walk from `ep`,
    /// choosing fanins with probability proportional to their arrival time
    /// (slower fanins more likely — the sample should cover plausibly
    /// critical structure, not uniformly random wires).
    ///
    /// The returned [`TimingPath::arrival`] is the accumulated delay along
    /// the sampled path (≤ the STA arrival of the endpoint).
    pub fn sample_path(&self, ep: Endpoint, rng: &mut impl Rng) -> TimingPath {
        let mut nodes = Vec::new();
        let mut cur = self.bog.endpoint_node(ep);
        let mut path_delay = 0.0f64;
        nodes.push(cur);
        while self.bog.node(cur).op.is_comb() {
            let fis = self.bog.fanins(cur);
            let chosen = if fis.len() == 1 {
                fis[0]
            } else {
                // Weight ∝ (arrival + ε) so zero-AT sources remain pickable.
                let weights: Vec<f64> = fis
                    .iter()
                    .map(|&f| self.res.arrival[f as usize] + 0.01)
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut t = rng.gen::<f64>() * total;
                let mut pick = fis[fis.len() - 1];
                for (i, w) in weights.iter().enumerate() {
                    if t < *w {
                        pick = fis[i];
                        break;
                    }
                    t -= w;
                }
                pick
            };
            path_delay += self.arc_delay(cur, chosen);
            nodes.push(chosen);
            cur = chosen;
        }
        nodes.reverse();
        let launch = self.res.arrival[nodes[0] as usize];
        TimingPath {
            endpoint: ep,
            nodes,
            arrival: launch + path_delay,
        }
    }

    /// Samples up to `k` distinct random paths (deduplicated by node
    /// sequence; gives up after `4 k` attempts).
    pub fn sample_paths(&self, ep: Endpoint, k: usize, rng: &mut impl Rng) -> Vec<TimingPath> {
        let mut out: Vec<TimingPath> = Vec::with_capacity(k);
        let mut attempts = 0;
        while out.len() < k && attempts < 4 * k.max(1) {
            attempts += 1;
            let p = self.sample_path(ep, rng);
            if !out.iter().any(|q| q.nodes == p.nodes) {
                out.push(p);
            }
        }
        out
    }

    /// Whether `ep` launches from at least one register/input (i.e. the
    /// cone is non-trivial).
    pub fn has_logic(&self, ep: Endpoint) -> bool {
        let n = self.bog.endpoint_node(ep);
        self.bog.node(n).op.is_comb()
    }

    /// Source node kind of a traced path (register, input, or constant).
    pub fn path_source_op(&self, path: &TimingPath) -> BogOp {
        self.bog.node(path.nodes[0]).op
    }
}

#[cfg(test)]
mod tests {
    use crate::arrival::{Sta, StaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtlt_bog::{blast, Endpoint};
    use rtlt_liberty::Library;
    use rtlt_verilog::compile;

    fn setup() -> (rtlt_bog::Bog, Library) {
        let bog = blast(
            &compile(
                "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
                   reg [7:0] r;
                   always @(posedge clk) r <= (a + b) ^ (a & r);
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        (bog, Library::pseudo_bog())
    }

    #[test]
    fn critical_path_arrival_matches_endpoint_at() {
        let (bog, lib) = setup();
        let sta = Sta::run(&bog, &lib, StaConfig::default());
        for (i, ep) in bog.endpoints().into_iter().enumerate() {
            let p = sta.critical_path(ep);
            let at = sta.result().endpoint_at[i];
            assert!(
                (p.arrival - at).abs() < 1e-9,
                "ep {i}: {} vs {at}",
                p.arrival
            );
        }
    }

    #[test]
    fn sampled_paths_never_exceed_critical() {
        let (bog, lib) = setup();
        let sta = Sta::run(&bog, &lib, StaConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        for ep in bog.endpoints() {
            let crit = sta.critical_path(ep).arrival;
            for p in sta.sample_paths(ep, 6, &mut rng) {
                assert!(p.arrival <= crit + 1e-9, "{} > {crit}", p.arrival);
                // Path is structurally connected.
                for w in p.nodes.windows(2) {
                    assert!(bog.fanins(w[1]).contains(&w[0]));
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (bog, lib) = setup();
        let sta = Sta::run(&bog, &lib, StaConfig::default());
        let ep = Endpoint::Reg(7);
        let a: Vec<_> = sta.sample_paths(ep, 5, &mut StdRng::seed_from_u64(11));
        let b: Vec<_> = sta.sample_paths(ep, 5, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
