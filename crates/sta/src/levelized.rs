//! Levelized struct-of-arrays pseudo-STA kernel.
//!
//! [`Sta::run`] walks the graph in topological order resolving each node's
//! cell as it goes. For the sharded featurize path — thousands of small
//! canonical cones per design — the per-run Kahn queue allocation and the
//! per-node match/cell-lookup dominate. [`Sta::run_levelized`] computes the
//! *bit-identical* [`StaResult`] from flat tables instead:
//!
//! * one id-order pass packs each node's op code and fanin slots into
//!   contiguous arrays, assigns logic levels, and accumulates pin loads in
//!   exactly the accumulation order [`Sta::run`] uses (so every f64 sum is
//!   identical),
//! * nodes are bucketed by level with a counting sort (stable in id order),
//! * arrival/slew/delay propagate level-by-level over the flat arrays; every
//!   fanin is finalized before its reader's level runs, and per-node
//!   arithmetic is the same operation sequence as the monolithic walk, so
//!   the results match bit-for-bit.
//!
//! The topology tables live in a reusable [`LevelScratch`], so a worker
//! evaluating many cones pays no per-cone allocation churn beyond the
//! result arrays themselves (which outlive the run as the product).
//!
//! Canonically renumbered cones from `extract_signal_cone` (and any
//! builder-constructed BOG) list fanins before their readers, which is what
//! the single id-order packing pass requires; if a graph violates that, the
//! kernel transparently falls back to [`Sta::run`].

use crate::arrival::{cell_for_op, Sta, StaConfig, StaResult};
use rtlt_bog::{Bog, BogOp, Endpoint, NodeId};
use rtlt_liberty::{Cell, CellFunc, Drive, Library};
use std::sync::Arc;

const CODE_INPUT: u8 = 0;
const CODE_CONST: u8 = 1;
const CODE_DFF: u8 = 2;
/// Codes ≥ `CODE_COMB` index the comb cell table: Not, And2, Or2, Xor2, Mux2.
const CODE_COMB: u8 = 3;

const COMB_ARITY: [usize; 5] = [1, 2, 2, 2, 3];

fn op_code(op: BogOp) -> u8 {
    match op {
        BogOp::Input => CODE_INPUT,
        BogOp::Const0 | BogOp::Const1 => CODE_CONST,
        BogOp::Dff => CODE_DFF,
        BogOp::Not => CODE_COMB,
        BogOp::And2 => CODE_COMB + 1,
        BogOp::Or2 => CODE_COMB + 2,
        BogOp::Xor2 => CODE_COMB + 3,
        BogOp::Mux2 => CODE_COMB + 4,
    }
}

/// Reusable topology tables for [`Sta::run_levelized`]. One instance per
/// worker; cleared and refilled per cone, never shrunk.
#[derive(Debug, Default)]
pub struct LevelScratch {
    /// Per-node op code (`CODE_*`).
    code: Vec<u8>,
    /// Per-node fanin slots, padded with `NO_NODE` past the arity.
    fanins: Vec<[NodeId; 3]>,
    /// Per-node logic level (sources at 0).
    level: Vec<u32>,
    /// Counting-sort bucket offsets, one per level (+1 sentinel).
    counts: Vec<u32>,
    /// Node ids sorted by (level, id).
    order: Vec<NodeId>,
}

impl LevelScratch {
    /// A fresh, empty scratch. Buffers grow on first use and are retained.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<'a> Sta<'a> {
    /// Runs pseudo-STA via the levelized SoA kernel. Bit-identical to
    /// [`Sta::run`] on any graph; `scratch` is reused across calls.
    pub fn run_levelized(
        bog: &'a Bog,
        lib: &'a Library,
        cfg: StaConfig,
        scratch: &mut LevelScratch,
    ) -> Sta<'a> {
        let n = bog.len();
        let comb_cells: [&Cell; 5] = [
            cell_for_op(lib, BogOp::Not).expect("inv cell"),
            cell_for_op(lib, BogOp::And2).expect("and cell"),
            cell_for_op(lib, BogOp::Or2).expect("or cell"),
            cell_for_op(lib, BogOp::Xor2).expect("xor cell"),
            cell_for_op(lib, BogOp::Mux2).expect("mux cell"),
        ];
        let dff = lib.cell(CellFunc::Dff, Drive::X1);

        scratch.code.clear();
        scratch.code.reserve(n);
        scratch.fanins.clear();
        scratch.fanins.reserve(n);
        scratch.level.clear();
        scratch.level.reserve(n);

        let mut load = vec![0.0f64; n];
        let mut max_level = 0u32;

        // Pass 1, in id order: pack the SoA tables, assign levels, and
        // accumulate fanout pin loads. The load accumulation order (node id
        // ascending, pin slot ascending) matches `Sta::run` exactly, which
        // keeps the floating-point sums bit-identical. Level assignment
        // needs every fanin packed before its reader; builder-produced
        // graphs satisfy that, but fall back to the monolithic walk if not.
        for id in 0..n as NodeId {
            let node = bog.node(id);
            let code = op_code(node.op);
            let mut lvl = 0u32;
            if code >= CODE_COMB {
                let cell = comb_cells[(code - CODE_COMB) as usize];
                let fis = bog.fanins(id);
                for (pin, &f) in fis.iter().enumerate() {
                    if f >= id {
                        return Sta::run(bog, lib, cfg);
                    }
                    load[f as usize] += cell.pin_cap(pin) + cfg.wire_cap_per_fanout;
                    lvl = lvl.max(scratch.level[f as usize] + 1);
                }
            }
            max_level = max_level.max(lvl);
            scratch.code.push(code);
            scratch.fanins.push(node.fanins);
            scratch.level.push(lvl);
        }
        for r in bog.regs() {
            load[r.d as usize] += dff.pin_cap(0) + cfg.wire_cap_per_fanout;
        }
        for (_, o) in bog.outputs() {
            load[*o as usize] += cfg.output_load;
        }

        // Counting sort by level, stable in id order.
        let n_levels = max_level as usize + 1;
        scratch.counts.clear();
        scratch.counts.resize(n_levels + 1, 0);
        for &l in &scratch.level {
            scratch.counts[l as usize + 1] += 1;
        }
        for l in 0..n_levels {
            scratch.counts[l + 1] += scratch.counts[l];
        }
        scratch.order.clear();
        scratch.order.resize(n, 0);
        {
            let counts = &mut scratch.counts[..n_levels];
            for id in 0..n as NodeId {
                let l = scratch.level[id as usize] as usize;
                scratch.order[counts[l] as usize] = id;
                counts[l] += 1;
            }
        }

        let mut arrival = vec![0.0f64; n];
        let mut slew = vec![cfg.input_slew; n];
        let mut delay = vec![0.0f64; n];
        let seq = dff.seq.expect("dff sequential");

        // Level-by-level propagation. Any order that finalizes fanins before
        // readers yields the same per-node arithmetic as the topo walk in
        // `Sta::run`, hence bit-identical arrays.
        for &id in &scratch.order {
            let i = id as usize;
            match scratch.code[i] {
                CODE_INPUT => {
                    arrival[i] = cfg.input_delay;
                    slew[i] = cfg.input_slew;
                }
                CODE_CONST => {
                    arrival[i] = 0.0;
                    slew[i] = cfg.input_slew;
                }
                CODE_DFF => {
                    arrival[i] = seq.clk_to_q;
                    slew[i] = dff.out_slew(cfg.input_slew, load[i]);
                }
                code => {
                    let k = (code - CODE_COMB) as usize;
                    let cell = comb_cells[k];
                    let mut at = 0.0;
                    let mut in_slew = cfg.input_slew;
                    for &f in &scratch.fanins[i][..COMB_ARITY[k]] {
                        if arrival[f as usize] >= at {
                            at = arrival[f as usize];
                            in_slew = slew[f as usize];
                        }
                    }
                    let d = cell.delay(in_slew, load[i]);
                    arrival[i] = at + d;
                    slew[i] = cell.out_slew(in_slew, load[i]);
                    delay[i] = d;
                }
            }
        }

        // Endpoint arrivals and slacks — same loop as `Sta::run`.
        let setup = seq.setup;
        let endpoints = bog.endpoints();
        let mut endpoint_at = Vec::with_capacity(endpoints.len());
        let mut endpoint_slack = Vec::with_capacity(endpoints.len());
        let mut wns = 0.0f64;
        let mut tns = 0.0f64;
        for ep in &endpoints {
            let node = bog.endpoint_node(*ep);
            let at = arrival[node as usize];
            let margin = match ep {
                Endpoint::Reg(_) => setup,
                Endpoint::Output(_) => 0.0,
            };
            let slack = cfg.clock_period - margin - at;
            endpoint_at.push(at);
            endpoint_slack.push(slack);
            if slack < 0.0 {
                tns += slack;
                wns = wns.min(slack);
            }
        }

        Sta {
            bog,
            lib,
            cfg,
            res: Arc::new(StaResult {
                arrival,
                slew,
                load,
                delay,
                endpoint_at,
                endpoint_slack,
                wns,
                tns,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn assert_bit_identical(bog: &Bog, lib: &Library, cfg: StaConfig) {
        let base = Sta::run(bog, lib, cfg);
        let mut scratch = LevelScratch::new();
        let fast = Sta::run_levelized(bog, lib, cfg, &mut scratch);
        let (b, f) = (base.result(), fast.result());
        assert_eq!(b.arrival, f.arrival);
        assert_eq!(b.slew, f.slew);
        assert_eq!(b.load, f.load);
        assert_eq!(b.delay, f.delay);
        assert_eq!(b.endpoint_at, f.endpoint_at);
        assert_eq!(b.endpoint_slack, f.endpoint_slack);
        assert_eq!(b.wns.to_bits(), f.wns.to_bits());
        assert_eq!(b.tns.to_bits(), f.tns.to_bits());
    }

    #[test]
    fn levelized_matches_monolithic_bit_for_bit() {
        let lib = Library::pseudo_bog();
        let srcs = [
            "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
               reg [7:0] r;
               always @(posedge clk) r <= a + b;
               assign q = r;
             endmodule",
            "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
               reg [15:0] r;
               always @(posedge clk) r <= (a * b) ^ (a + r);
               assign q = r;
             endmodule",
            "module m(input clk, input s, input [3:0] a, input [3:0] b, output [3:0] q);
               reg [3:0] r;
               always @(posedge clk) r <= s ? (a & b) : (a | ~b);
               assign q = r;
             endmodule",
        ];
        for src in srcs {
            let bog = blast(&compile(src, "m").unwrap());
            for clock in [1.0, 0.05, 10.0] {
                let cfg = StaConfig {
                    clock_period: clock,
                    ..StaConfig::default()
                };
                assert_bit_identical(&bog, &lib, cfg);
            }
        }
    }

    #[test]
    fn scratch_reuse_across_different_cones_is_clean() {
        let lib = Library::pseudo_bog();
        let big = blast(
            &compile(
                "module m(input clk, input [15:0] a, output [15:0] q);
                   reg [15:0] r;
                   always @(posedge clk) r <= r * a;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let small = blast(
            &compile(
                "module m(input clk, input a, input b, output q);
                   reg r;
                   always @(posedge clk) r <= a ^ b;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let cfg = StaConfig::default();
        let mut scratch = LevelScratch::new();
        // Big first so the small run must not see stale tail state.
        let _ = Sta::run_levelized(&big, &lib, cfg, &mut scratch);
        let base = Sta::run(&small, &lib, cfg);
        let fast = Sta::run_levelized(&small, &lib, cfg, &mut scratch);
        assert_eq!(base.result().arrival, fast.result().arrival);
        assert_eq!(base.result().endpoint_slack, fast.result().endpoint_slack);
    }
}
