//! Arrival-time / slew propagation and slack computation.

use rtlt_bog::{Bog, BogOp, Endpoint, NodeId};
use rtlt_liberty::{Cell, CellFunc, Drive, Library};
use std::sync::Arc;

/// Timing constraints and boundary conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaConfig {
    /// Clock period (ns).
    pub clock_period: f64,
    /// Arrival time at primary inputs (ns).
    pub input_delay: f64,
    /// Slew assumed at primary inputs (ns).
    pub input_slew: f64,
    /// Capacitive load on primary outputs (cap units).
    pub output_load: f64,
    /// Extra estimated wire capacitance per fanout (cap units) — the
    /// RTL-stage pseudo netlist has no placement, so a constant per-fanout
    /// estimate stands in for wire load.
    pub wire_cap_per_fanout: f64,
}

impl Default for StaConfig {
    fn default() -> Self {
        StaConfig {
            clock_period: 1.0,
            input_delay: 0.0,
            input_slew: 0.012,
            output_load: 2.0,
            wire_cap_per_fanout: 0.35,
        }
    }
}

/// Raw per-node and per-endpoint STA quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct StaResult {
    /// Arrival time at each node's output (ns).
    pub arrival: Vec<f64>,
    /// Output slew at each node (ns).
    pub slew: Vec<f64>,
    /// Capacitive load seen by each node (cap units).
    pub load: Vec<f64>,
    /// Cell delay used for each node's AT (ns); 0 for sources.
    pub delay: Vec<f64>,
    /// Arrival at each endpoint, ordered as [`Bog::endpoints`].
    pub endpoint_at: Vec<f64>,
    /// Slack at each endpoint (ns).
    pub endpoint_slack: Vec<f64>,
    /// Worst negative slack (0 if all endpoints meet timing).
    pub wns: f64,
    /// Total negative slack (sum of negative slacks; ≤ 0).
    pub tns: f64,
}

/// A completed pseudo-STA run, retaining the graph/library context so paths
/// can be traced and re-timed.
///
/// The result tables are held behind an [`Arc`] so a shared evaluation
/// (e.g. one cached per unique cone) can be replayed against many seeds
/// without cloning the arrays — see [`Sta::with_result`].
#[derive(Debug)]
pub struct Sta<'a> {
    pub(crate) bog: &'a Bog,
    pub(crate) lib: &'a Library,
    pub(crate) cfg: StaConfig,
    pub(crate) res: Arc<StaResult>,
}

pub(crate) fn cell_for_op(lib: &Library, op: BogOp) -> Option<&Cell> {
    let func = match op {
        BogOp::Not => CellFunc::Inv,
        BogOp::And2 => CellFunc::And2,
        BogOp::Or2 => CellFunc::Or2,
        BogOp::Xor2 => CellFunc::Xor2,
        BogOp::Mux2 => CellFunc::Mux2,
        BogOp::Dff => CellFunc::Dff,
        BogOp::Input | BogOp::Const0 | BogOp::Const1 => return None,
    };
    Some(lib.cell(func, Drive::X1))
}

impl<'a> Sta<'a> {
    /// Runs pseudo-STA on a BOG.
    pub fn run(bog: &'a Bog, lib: &'a Library, cfg: StaConfig) -> Sta<'a> {
        let n = bog.len();
        let mut load = vec![0.0f64; n];

        // Loads: every fanout pin contributes its input capacitance plus a
        // wire estimate.
        for id in 0..n as NodeId {
            if let Some(cell) = cell_for_op(lib, bog.node(id).op) {
                for (pin, &f) in bog.fanins(id).iter().enumerate() {
                    load[f as usize] += cell.pin_cap(pin) + cfg.wire_cap_per_fanout;
                }
            }
        }
        let dff = lib.cell(CellFunc::Dff, Drive::X1);
        for r in bog.regs() {
            load[r.d as usize] += dff.pin_cap(0) + cfg.wire_cap_per_fanout;
        }
        for (_, o) in bog.outputs() {
            load[*o as usize] += cfg.output_load;
        }

        let mut arrival = vec![0.0f64; n];
        let mut slew = vec![cfg.input_slew; n];
        let mut delay = vec![0.0f64; n];

        for id in bog.topo_order() {
            let node = bog.node(id);
            match node.op {
                BogOp::Input => {
                    arrival[id as usize] = cfg.input_delay;
                    slew[id as usize] = cfg.input_slew;
                }
                BogOp::Const0 | BogOp::Const1 => {
                    arrival[id as usize] = 0.0;
                    slew[id as usize] = cfg.input_slew;
                }
                BogOp::Dff => {
                    let seq = dff.seq.expect("dff sequential");
                    arrival[id as usize] = seq.clk_to_q;
                    slew[id as usize] = dff.out_slew(cfg.input_slew, load[id as usize]);
                }
                _ => {
                    let cell = cell_for_op(lib, node.op).expect("comb cell");
                    // Worst (latest) fanin selects the arc.
                    let mut at = 0.0;
                    let mut in_slew = cfg.input_slew;
                    for &f in bog.fanins(id) {
                        if arrival[f as usize] >= at {
                            at = arrival[f as usize];
                            in_slew = slew[f as usize];
                        }
                    }
                    let d = cell.delay(in_slew, load[id as usize]);
                    arrival[id as usize] = at + d;
                    slew[id as usize] = cell.out_slew(in_slew, load[id as usize]);
                    delay[id as usize] = d;
                }
            }
        }

        // Endpoint arrivals and slacks.
        let setup = dff.seq.expect("dff sequential").setup;
        let endpoints = bog.endpoints();
        let mut endpoint_at = Vec::with_capacity(endpoints.len());
        let mut endpoint_slack = Vec::with_capacity(endpoints.len());
        let mut wns = 0.0f64;
        let mut tns = 0.0f64;
        for ep in &endpoints {
            let node = bog.endpoint_node(*ep);
            let at = arrival[node as usize];
            let margin = match ep {
                Endpoint::Reg(_) => setup,
                Endpoint::Output(_) => 0.0,
            };
            let slack = cfg.clock_period - margin - at;
            endpoint_at.push(at);
            endpoint_slack.push(slack);
            if slack < 0.0 {
                tns += slack;
                wns = wns.min(slack);
            }
        }

        Sta {
            bog,
            lib,
            cfg,
            res: Arc::new(StaResult {
                arrival,
                slew,
                load,
                delay,
                endpoint_at,
                endpoint_slack,
                wns,
                tns,
            }),
        }
    }

    /// Rehydrates an [`Sta`] from a previously computed (possibly cached and
    /// shared) result, skipping propagation entirely. The caller must pass
    /// the same graph/library/config the result was computed under —
    /// path tracing reads the graph, and `arc_delay` reads the config's
    /// slew/load tables.
    pub fn with_result(
        bog: &'a Bog,
        lib: &'a Library,
        cfg: StaConfig,
        res: Arc<StaResult>,
    ) -> Sta<'a> {
        debug_assert_eq!(res.arrival.len(), bog.len());
        Sta { bog, lib, cfg, res }
    }

    /// The raw result tables.
    pub fn result(&self) -> &StaResult {
        &self.res
    }

    /// The result tables behind their shared handle, for caching/replay.
    pub fn result_arc(&self) -> Arc<StaResult> {
        Arc::clone(&self.res)
    }

    /// The analyzed graph.
    pub fn bog(&self) -> &Bog {
        self.bog
    }

    /// The configuration used.
    pub fn config(&self) -> &StaConfig {
        &self.cfg
    }

    /// Delay through `node` when driven from `fanin` (ns), using the STA
    /// slews/loads — the per-arc delay needed when re-timing sampled paths.
    pub fn arc_delay(&self, node: NodeId, fanin: NodeId) -> f64 {
        match cell_for_op(self.lib, self.bog.node(node).op) {
            Some(cell) => cell.delay(self.res.slew[fanin as usize], self.res.load[node as usize]),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn sta_for(src: &str, top: &str, clock: f64) -> (Bog, StaConfig) {
        let bog = blast(&compile(src, top).unwrap());
        (
            bog,
            StaConfig {
                clock_period: clock,
                ..StaConfig::default()
            },
        )
    }

    #[test]
    fn deeper_logic_has_later_arrival() {
        let lib = Library::pseudo_bog();
        let (bog, cfg) = sta_for(
            "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q1, output [7:0] q8);
               reg [7:0] r1;
               reg [7:0] r8;
               always @(posedge clk) begin
                 r1 <= a;
                 r8 <= a + b;
               end
               assign q1 = r1;
               assign q8 = r8;
             endmodule",
            "m",
            2.0,
        );
        let sta = Sta::run(&bog, &lib, cfg);
        let r1 = bog.signals().iter().position(|s| s.name == "r1").unwrap();
        let r8 = bog.signals().iter().position(|s| s.name == "r8").unwrap();
        // MSB of the adder arrives later than the pass-through register.
        let at = |sig: usize, bit: usize| {
            let reg = bog.signals()[sig].regs[bit] as usize;
            sta.result().arrival[bog.regs()[reg].d as usize]
        };
        assert!(at(r8, 7) > at(r1, 7));
        // And the adder MSB arrives later than its LSB (ripple).
        assert!(at(r8, 7) > at(r8, 0));
    }

    #[test]
    fn wns_tns_respond_to_clock() {
        let lib = Library::pseudo_bog();
        let (bog, mut cfg) = sta_for(
            "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
               reg [15:0] r;
               always @(posedge clk) r <= a * b;
               assign q = r;
             endmodule",
            "m",
            10.0,
        );
        cfg.clock_period = 10.0;
        let relaxed = Sta::run(&bog, &lib, cfg);
        assert_eq!(relaxed.result().wns, 0.0);
        assert_eq!(relaxed.result().tns, 0.0);

        cfg.clock_period = 0.05;
        let tight = Sta::run(&bog, &lib, cfg);
        assert!(tight.result().wns < 0.0);
        assert!(tight.result().tns <= tight.result().wns);
    }

    #[test]
    fn fanout_increases_delay() {
        let lib = Library::pseudo_bog();
        // One driver with large fanout vs small fanout.
        let (bog_small, cfg) = sta_for(
            "module m(input clk, input a, input b, output o0);
               wire t;
               assign t = a & b;
               assign o0 = t;
             endmodule",
            "m",
            1.0,
        );
        let (bog_big, _) = sta_for(
            "module m(input clk, input a, input b,
                      output o0, output o1, output o2, output o3,
                      output o4, output o5, output o6, output o7);
               wire t;
               assign t = a & b;
               assign o0 = t ^ a; assign o1 = t ^ b; assign o2 = t & b; assign o3 = t | b;
               assign o4 = t ^ 1'b1; assign o5 = t & a; assign o6 = t | a; assign o7 = ~t;
             endmodule",
            "m",
            1.0,
        );
        let s_small = Sta::run(&bog_small, &lib, cfg);
        let s_big = Sta::run(&bog_big, &lib, cfg);
        let and_at = |bog: &Bog, sta: &Sta| {
            (0..bog.len() as NodeId)
                .filter(|&i| bog.node(i).op == BogOp::And2)
                .map(|i| sta.result().delay[i as usize])
                .fold(0.0f64, f64::max)
        };
        assert!(and_at(&bog_big, &s_big) > and_at(&bog_small, &s_small));
    }
}
