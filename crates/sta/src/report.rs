//! Human-readable endpoint timing reports.

use crate::arrival::Sta;
use rtlt_bog::Endpoint;
use std::fmt;

/// One row of an endpoint timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointReport {
    /// Endpoint identity.
    pub endpoint: Endpoint,
    /// Display name (`signal[bit]` or output name).
    pub name: String,
    /// Arrival time (ns).
    pub arrival: f64,
    /// Slack (ns).
    pub slack: f64,
}

impl<'a> Sta<'a> {
    /// Builds the per-endpoint report, sorted worst-slack first.
    pub fn endpoint_report(&self) -> Vec<EndpointReport> {
        let mut rows: Vec<EndpointReport> = self
            .bog
            .endpoints()
            .into_iter()
            .enumerate()
            .map(|(i, ep)| EndpointReport {
                endpoint: ep,
                name: self.bog.endpoint_name(ep),
                arrival: self.res.endpoint_at[i],
                slack: self.res.endpoint_slack[i],
            })
            .collect();
        rows.sort_by(|a, b| a.slack.partial_cmp(&b.slack).expect("finite slack"));
        rows
    }
}

impl fmt::Display for EndpointReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} AT {:>8.4} ns  slack {:>8.4} ns",
            self.name, self.arrival, self.slack
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::arrival::{Sta, StaConfig};
    use rtlt_bog::blast;
    use rtlt_liberty::Library;
    use rtlt_verilog::compile;

    #[test]
    fn report_sorted_by_slack() {
        let bog = blast(
            &compile(
                "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
                   reg [7:0] fast;
                   reg [7:0] slow;
                   always @(posedge clk) begin
                     fast <= a;
                     slow <= a * b;
                   end
                   assign q = fast ^ slow;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let lib = Library::pseudo_bog();
        let sta = Sta::run(
            &bog,
            &lib,
            StaConfig {
                clock_period: 0.3,
                ..Default::default()
            },
        );
        let report = sta.endpoint_report();
        for w in report.windows(2) {
            assert!(w[0].slack <= w[1].slack);
        }
        // The worst row should be a bit of the multiplier register.
        assert!(report[0].name.starts_with("slow["), "{}", report[0].name);
        let display = report[0].to_string();
        assert!(display.contains("slack"));
    }
}
