//! Pseudo static timing analysis over Boolean operator graphs.
//!
//! The paper's trick (§3.2): "Since we construct R as a pseudo netlist, we
//! can efficiently traverse R in topological order and perform the
//! traditional STA algorithm on it." Each BOG operator is timed as a pseudo
//! standard cell from [`rtlt_liberty::Library::pseudo_bog`]:
//! load = fanout pin capacitance, NLDM lookup for delay and output slew,
//! arrival times propagated in topological order, slack/WNS/TNS computed at
//! register-D and primary-output endpoints.
//!
//! Two path extraction primitives feed the register-oriented ML workflow:
//!
//! * [`Sta::critical_path`] — the slowest path `S*→i` into an endpoint, and
//! * [`Sta::sample_path`] — a random backward walk `L(k)*→i`, biased toward
//!   slower fanins, approximating the paper's random path sampling in the
//!   endpoint's input cone.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), rtlt_verilog::VerilogError> {
//! let netlist = rtlt_verilog::compile(
//!     "module m(input clk, input [7:0] a, output [7:0] q);
//!        reg [7:0] r;
//!        always @(posedge clk) r <= r + a;
//!        assign q = r;
//!      endmodule", "m")?;
//! let bog = rtlt_bog::blast(&netlist);
//! let lib = rtlt_liberty::Library::pseudo_bog();
//! let sta = rtlt_sta::Sta::run(&bog, &lib, rtlt_sta::StaConfig::default());
//! let worst = sta.result().wns;
//! assert!(worst.is_finite());
//! # Ok(())
//! # }
//! ```

mod arrival;
mod levelized;
mod paths;
mod report;

pub use arrival::{Sta, StaConfig, StaResult};
pub use levelized::LevelScratch;
pub use paths::TimingPath;
pub use report::EndpointReport;
