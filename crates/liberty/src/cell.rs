//! Cell definitions: combinational functions, drive strengths, sequential
//! timing.

use crate::nldm::Nldm;
use std::fmt;

/// Logic function implemented by a cell.
///
/// The first group are the *pseudo cells* used when a Boolean operator graph
/// is timed as a pseudo netlist; the remainder are mapped-library functions
/// produced by technology mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellFunc {
    /// Non-inverting buffer.
    Buf,
    /// Inverter (`NOT` pseudo cell).
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input multiplexer (pins: sel, a, b).
    Mux2,
    /// D flip-flop.
    Dff,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// AND-OR-invert: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`.
    Oai21,
    /// AND-OR-invert: `!((a & b) | (c & d))`.
    Aoi22,
    /// OR-AND-invert: `!((a | b) & (c | d))`.
    Oai22,
}

impl CellFunc {
    /// Number of data input pins.
    pub fn arity(self) -> usize {
        match self {
            CellFunc::Buf | CellFunc::Inv | CellFunc::Dff => 1,
            CellFunc::And2
            | CellFunc::Or2
            | CellFunc::Xor2
            | CellFunc::Nand2
            | CellFunc::Nor2
            | CellFunc::Xnor2 => 2,
            CellFunc::Mux2
            | CellFunc::Nand3
            | CellFunc::Nor3
            | CellFunc::Aoi21
            | CellFunc::Oai21 => 3,
            CellFunc::Aoi22 | CellFunc::Oai22 => 4,
        }
    }

    /// Whether the output is logically inverted relative to the "positive"
    /// form (used by mapping to track inverter parity).
    pub fn inverting(self) -> bool {
        matches!(
            self,
            CellFunc::Inv
                | CellFunc::Nand2
                | CellFunc::Nor2
                | CellFunc::Xnor2
                | CellFunc::Nand3
                | CellFunc::Nor3
                | CellFunc::Aoi21
                | CellFunc::Oai21
                | CellFunc::Aoi22
                | CellFunc::Oai22
        )
    }
}

impl fmt::Display for CellFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellFunc::Buf => "BUF",
            CellFunc::Inv => "INV",
            CellFunc::And2 => "AND2",
            CellFunc::Or2 => "OR2",
            CellFunc::Xor2 => "XOR2",
            CellFunc::Mux2 => "MUX2",
            CellFunc::Dff => "DFF",
            CellFunc::Nand2 => "NAND2",
            CellFunc::Nor2 => "NOR2",
            CellFunc::Xnor2 => "XNOR2",
            CellFunc::Nand3 => "NAND3",
            CellFunc::Nor3 => "NOR3",
            CellFunc::Aoi21 => "AOI21",
            CellFunc::Oai21 => "OAI21",
            CellFunc::Aoi22 => "AOI22",
            CellFunc::Oai22 => "OAI22",
        };
        f.write_str(s)
    }
}

/// Drive strength variant of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl Drive {
    /// All drives, weakest first.
    pub const ALL: [Drive; 3] = [Drive::X1, Drive::X2, Drive::X4];

    /// Relative output conductance (1.0 for X1).
    pub fn strength(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
        }
    }

    /// Next stronger drive, if any.
    pub fn upsize(self) -> Option<Drive> {
        match self {
            Drive::X1 => Some(Drive::X2),
            Drive::X2 => Some(Drive::X4),
            Drive::X4 => None,
        }
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drive::X1 => f.write_str("X1"),
            Drive::X2 => f.write_str("X2"),
            Drive::X4 => f.write_str("X4"),
        }
    }
}

/// Delay and output-slew tables for the worst timing arc of a cell.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Propagation delay table (ns) vs (input slew ns, output load cap-units).
    pub delay: Nldm,
    /// Output slew table (ns).
    pub out_slew: Nldm,
}

/// Sequential constraints for flip-flops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqTiming {
    /// Clock-to-Q propagation delay (ns).
    pub clk_to_q: f64,
    /// Setup requirement at D (ns).
    pub setup: f64,
    /// Hold requirement at D (ns).
    pub hold: f64,
}

/// A characterized standard cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Liberty-style name, e.g. `NAND2_X1`.
    pub name: String,
    /// Logic function.
    pub func: CellFunc,
    /// Drive strength.
    pub drive: Drive,
    /// Cell area (µm²-like abstract units).
    pub area: f64,
    /// Leakage power (nW-like abstract units).
    pub leakage: f64,
    /// Input capacitance per data pin (cap units; 1.0 = X1 inverter pin).
    pub pin_caps: Vec<f64>,
    /// Maximum drivable load before the cell is considered overloaded.
    pub max_load: f64,
    /// Worst-arc delay/slew tables.
    pub timing: Timing,
    /// Present only for sequential cells.
    pub seq: Option<SeqTiming>,
}

impl Cell {
    /// Propagation delay (ns) for the given input slew and output load.
    pub fn delay(&self, in_slew: f64, load: f64) -> f64 {
        self.timing.delay.lookup(in_slew, load)
    }

    /// Output slew (ns) for the given input slew and output load.
    pub fn out_slew(&self, in_slew: f64, load: f64) -> f64 {
        self.timing.out_slew.lookup(in_slew, load)
    }

    /// Total input capacitance across all pins.
    pub fn input_cap(&self) -> f64 {
        self.pin_caps.iter().sum()
    }

    /// Capacitance of one input pin.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the cell's arity.
    pub fn pin_cap(&self, pin: usize) -> f64 {
        self.pin_caps[pin]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_function() {
        assert_eq!(CellFunc::Inv.arity(), 1);
        assert_eq!(CellFunc::Nand2.arity(), 2);
        assert_eq!(CellFunc::Mux2.arity(), 3);
        assert_eq!(CellFunc::Aoi22.arity(), 4);
    }

    #[test]
    fn inverting_classification() {
        assert!(CellFunc::Nand2.inverting());
        assert!(CellFunc::Aoi21.inverting());
        assert!(!CellFunc::And2.inverting());
        assert!(!CellFunc::Mux2.inverting());
    }

    #[test]
    fn drive_ladder() {
        assert_eq!(Drive::X1.upsize(), Some(Drive::X2));
        assert_eq!(Drive::X2.upsize(), Some(Drive::X4));
        assert_eq!(Drive::X4.upsize(), None);
        assert_eq!(Drive::X4.strength(), 4.0);
    }
}
