//! Non-linear delay model lookup tables.

/// A 2-D lookup table indexed by (input slew, output load), as in liberty
/// NLDM `cell_rise`/`cell_fall` groups.
///
/// Values between grid points are bilinearly interpolated; queries outside
/// the characterized grid are clamped to the boundary (the conservative
/// behaviour most STA engines default to).
#[derive(Debug, Clone, PartialEq)]
pub struct Nldm {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    /// Row-major `[slew][load]`.
    values: Vec<f64>,
}

impl Nldm {
    /// Builds a table by sampling `f(slew, load)` on the given axes.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing.
    pub fn from_fn(slew_axis: Vec<f64>, load_axis: Vec<f64>, f: impl Fn(f64, f64) -> f64) -> Self {
        assert!(
            !slew_axis.is_empty() && !load_axis.is_empty(),
            "empty NLDM axis"
        );
        assert!(
            slew_axis.windows(2).all(|w| w[0] < w[1]),
            "slew axis must be strictly increasing"
        );
        assert!(
            load_axis.windows(2).all(|w| w[0] < w[1]),
            "load axis must be strictly increasing"
        );
        let mut values = Vec::with_capacity(slew_axis.len() * load_axis.len());
        for &s in &slew_axis {
            for &l in &load_axis {
                values.push(f(s, l));
            }
        }
        Nldm {
            slew_axis,
            load_axis,
            values,
        }
    }

    /// Bilinear interpolation with clamped extrapolation.
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (si, sf) = Self::locate(&self.slew_axis, slew);
        let (li, lf) = Self::locate(&self.load_axis, load);
        let nl = self.load_axis.len();
        let v00 = self.values[si * nl + li];
        let v01 = self.values[si * nl + (li + 1).min(nl - 1)];
        let s_hi = (si + 1).min(self.slew_axis.len() - 1);
        let v10 = self.values[s_hi * nl + li];
        let v11 = self.values[s_hi * nl + (li + 1).min(nl - 1)];
        let v0 = v00 + (v01 - v00) * lf;
        let v1 = v10 + (v11 - v10) * lf;
        v0 + (v1 - v0) * sf
    }

    /// Returns `(lower index, fraction in [0,1])`, clamped to the axis range.
    fn locate(axis: &[f64], x: f64) -> (usize, f64) {
        if x <= axis[0] {
            return (0, 0.0);
        }
        let last = axis.len() - 1;
        if x >= axis[last] {
            return (last, 0.0);
        }
        // axis is short (<= 8 entries): linear scan beats binary search.
        let mut i = 0;
        while axis[i + 1] < x {
            i += 1;
        }
        let frac = (x - axis[i]) / (axis[i + 1] - axis[i]);
        (i, frac)
    }

    /// The characterized slew axis.
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The characterized load axis.
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Nldm {
        Nldm::from_fn(vec![0.01, 0.1, 1.0], vec![1.0, 10.0, 100.0], |s, l| {
            2.0 * s + 3.0 * l
        })
    }

    #[test]
    fn exact_grid_points() {
        let t = table();
        assert!((t.lookup(0.01, 1.0) - (0.02 + 3.0)).abs() < 1e-12);
        assert!((t.lookup(1.0, 100.0) - (2.0 + 300.0)).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_exact_for_bilinear_function() {
        // f is affine in each axis, so bilinear interpolation reproduces it
        // anywhere inside the grid.
        let t = table();
        for &(s, l) in &[(0.05, 5.0), (0.3, 40.0), (0.9, 99.0)] {
            let want = 2.0 * s + 3.0 * l;
            assert!((t.lookup(s, l) - want).abs() < 1e-9, "at ({s},{l})");
        }
    }

    #[test]
    fn extrapolation_clamps_to_boundary() {
        let t = table();
        assert_eq!(t.lookup(0.0, 0.0), t.lookup(0.01, 1.0));
        assert_eq!(t.lookup(5.0, 1e6), t.lookup(1.0, 100.0));
    }

    #[test]
    fn lookup_is_monotone_for_monotone_table() {
        let t = table();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..50 {
            let l = 1.0 + i as f64 * 2.0;
            let v = t.lookup(0.05, l);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_axis() {
        let _ = Nldm::from_fn(vec![0.1, 0.1], vec![1.0], |_, _| 0.0);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any in-grid query of a bilinear-generated table stays within
            /// the envelope of the four surrounding grid values.
            #[test]
            fn lookup_within_corner_envelope(
                s in 0.01f64..1.0,
                l in 1.0f64..100.0,
                a in 0.1f64..5.0,
                b in 0.01f64..0.5,
            ) {
                let t = Nldm::from_fn(
                    vec![0.01, 0.05, 0.2, 1.0],
                    vec![1.0, 5.0, 25.0, 100.0],
                    |x, y| a * y + b * x * y + x,
                );
                let v = t.lookup(s, l);
                let corners = [
                    t.lookup(0.01, 1.0),
                    t.lookup(0.01, 100.0),
                    t.lookup(1.0, 1.0),
                    t.lookup(1.0, 100.0),
                ];
                let lo = corners.iter().cloned().fold(f64::MAX, f64::min);
                let hi = corners.iter().cloned().fold(f64::MIN, f64::max);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
            }

            /// Monotone generator ⇒ monotone interpolation along each axis.
            #[test]
            fn monotone_in_load(s in 0.01f64..1.0, l1 in 1.0f64..99.0, dl in 0.01f64..1.0) {
                let t = Nldm::from_fn(
                    vec![0.01, 0.1, 1.0],
                    vec![1.0, 10.0, 100.0],
                    |x, y| 0.02 * x + 0.005 * y,
                );
                let l2 = (l1 + dl).min(100.0);
                prop_assert!(t.lookup(s, l2) + 1e-12 >= t.lookup(s, l1));
            }
        }
    }
}
