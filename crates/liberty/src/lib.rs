//! Synthetic NLDM-style standard-cell timing library.
//!
//! The RTL-Timer paper characterizes designs against the NanGate 45 nm PDK.
//! That PDK (and the commercial tools reading it) is unavailable offline, so
//! this crate provides a self-contained, NanGate45-inspired library with the
//! same *structure* a real liberty file exposes to a timing engine:
//!
//! * cells with per-pin input capacitance, area, leakage and a max-load limit,
//! * non-linear delay model ([`Nldm`]) lookup tables indexed by input slew and
//!   output load, with bilinear interpolation and clamped extrapolation,
//! * sequential cells with clk→Q delay, setup and hold constraints,
//! * multiple drive strengths (X1/X2/X4) per logic function,
//! * a lumped [`WireModel`] used by the placement-aware timer.
//!
//! Two libraries are built:
//!
//! * [`Library::pseudo_bog`] — one "pseudo cell" per Boolean-operator-graph
//!   node type, exactly the paper's trick of treating a BOG as a *pseudo
//!   netlist* so a conventional STA algorithm can run on RTL, and
//! * [`Library::nangate45_like`] — the mapped-cell library used by the
//!   synthesis simulator to produce ground-truth netlists.
//!
//! # Example
//!
//! ```
//! use rtlt_liberty::{CellFunc, Drive, Library};
//!
//! let lib = Library::nangate45_like();
//! let nand = lib.cell(CellFunc::Nand2, Drive::X1);
//! let d = nand.delay(0.02, 4.0);
//! assert!(d > 0.0 && d < 1.0, "plausible gate delay in ns");
//! ```

mod cell;
mod library;
mod nldm;

pub use cell::{Cell, CellFunc, Drive, SeqTiming, Timing};
pub use library::{Library, WireModel};
pub use nldm::Nldm;
