//! Library construction: the pseudo-cell library for BOG timing and the
//! NanGate45-inspired mapped library for the synthesis simulator.

use crate::cell::{Cell, CellFunc, Drive, SeqTiming, Timing};
use crate::nldm::Nldm;
use std::collections::HashMap;

/// Lumped wire parasitics used by the placement-aware timer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Resistance per unit length (ns per cap-unit per unit length).
    pub res_per_unit: f64,
    /// Capacitance per unit length (cap units per unit length).
    pub cap_per_unit: f64,
}

impl WireModel {
    /// Elmore-style lumped delay of a wire of `len` units driving `pin_cap`.
    pub fn delay(&self, len: f64, pin_cap: f64) -> f64 {
        let wire_cap = self.cap_per_unit * len;
        self.res_per_unit * len * (wire_cap / 2.0 + pin_cap)
    }

    /// Total capacitance contributed by a wire of `len` units.
    pub fn cap(&self, len: f64) -> f64 {
        self.cap_per_unit * len
    }
}

/// A characterized cell library.
#[derive(Debug, Clone)]
pub struct Library {
    /// Library name.
    pub name: String,
    cells: Vec<Cell>,
    index: HashMap<(CellFunc, Drive), usize>,
    /// Wire parasitic model.
    pub wire: WireModel,
    /// Slew assumed at primary inputs and register Q pins.
    pub default_input_slew: f64,
}

/// Per-function electrical archetype used to generate NLDM tables.
struct Proto {
    func: CellFunc,
    /// Intrinsic delay at zero load/slew (ns).
    intrinsic: f64,
    /// Output resistance for the X1 variant (ns per cap unit).
    resistance: f64,
    /// Delay sensitivity to input slew (dimensionless).
    slew_sens: f64,
    /// X1 input pin capacitance (cap units), uniform across pins.
    pin_cap: f64,
    /// X1 area.
    area: f64,
    /// X1 leakage.
    leakage: f64,
}

const SLEW_AXIS: [f64; 6] = [0.002, 0.010, 0.030, 0.080, 0.200, 0.500];
const LOAD_AXIS: [f64; 6] = [0.5, 2.0, 6.0, 16.0, 40.0, 100.0];

fn build_cell(p: &Proto, drive: Drive) -> Cell {
    let k = drive.strength();
    // Bigger drives: lower output resistance, proportionally larger input
    // pins/area/leakage (sub-linear pin growth, as in real libraries).
    let res = p.resistance / k;
    let pin = p.pin_cap * (1.0 + 0.85 * (k - 1.0));
    let intr = p.intrinsic * (1.0 + 0.06 * (k - 1.0));
    let slew_sens = p.slew_sens;
    let delay = Nldm::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| {
        intr + res * l + slew_sens * s
    });
    let out_slew = Nldm::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| {
        0.6 * intr + 2.1 * res * l + 0.12 * s
    });
    let seq = if p.func == CellFunc::Dff {
        Some(SeqTiming {
            clk_to_q: intr,
            setup: 0.035,
            hold: 0.004,
        })
    } else {
        None
    };
    Cell {
        name: format!("{}_{}", p.func, drive),
        func: p.func,
        drive,
        area: p.area * (1.0 + 0.55 * (k - 1.0)),
        leakage: p.leakage * (1.0 + 0.75 * (k - 1.0)),
        pin_caps: vec![pin; p.func.arity()],
        max_load: 24.0 * k,
        timing: Timing { delay, out_slew },
        seq,
    }
}

impl Library {
    fn from_protos(name: &str, protos: &[Proto], drives: &[Drive]) -> Library {
        let mut cells = Vec::new();
        let mut index = HashMap::new();
        for p in protos {
            for &d in drives {
                index.insert((p.func, d), cells.len());
                cells.push(build_cell(p, d));
            }
        }
        Library {
            name: name.to_owned(),
            cells,
            index,
            wire: WireModel {
                res_per_unit: 0.00022,
                cap_per_unit: 0.18,
            },
            default_input_slew: 0.012,
        }
    }

    /// The pseudo-cell library: one cell per Boolean-operator-graph node
    /// type, single drive. This is what lets the pseudo-STA treat a BOG as a
    /// pseudo netlist (paper §3.1).
    pub fn pseudo_bog() -> Library {
        let protos = [
            Proto {
                func: CellFunc::Buf,
                intrinsic: 0.016,
                resistance: 0.0036,
                slew_sens: 0.09,
                pin_cap: 1.0,
                area: 1.07,
                leakage: 1.0,
            },
            Proto {
                func: CellFunc::Inv,
                intrinsic: 0.008,
                resistance: 0.0040,
                slew_sens: 0.10,
                pin_cap: 1.0,
                area: 0.80,
                leakage: 0.9,
            },
            Proto {
                func: CellFunc::And2,
                intrinsic: 0.021,
                resistance: 0.0046,
                slew_sens: 0.11,
                pin_cap: 1.0,
                area: 1.33,
                leakage: 1.3,
            },
            Proto {
                func: CellFunc::Or2,
                intrinsic: 0.024,
                resistance: 0.0050,
                slew_sens: 0.12,
                pin_cap: 1.0,
                area: 1.33,
                leakage: 1.3,
            },
            Proto {
                func: CellFunc::Xor2,
                intrinsic: 0.031,
                resistance: 0.0064,
                slew_sens: 0.16,
                pin_cap: 1.9,
                area: 2.13,
                leakage: 2.2,
            },
            Proto {
                func: CellFunc::Mux2,
                intrinsic: 0.034,
                resistance: 0.0060,
                slew_sens: 0.15,
                pin_cap: 1.4,
                area: 2.40,
                leakage: 2.4,
            },
            Proto {
                func: CellFunc::Dff,
                intrinsic: 0.046,
                resistance: 0.0052,
                slew_sens: 0.05,
                pin_cap: 1.2,
                area: 4.52,
                leakage: 3.1,
            },
        ];
        Library::from_protos("pseudo_bog", &protos, &[Drive::X1])
    }

    /// The NanGate45-inspired mapped library used to build ground-truth
    /// netlists (substitute for the paper's commercial PDK; DESIGN.md §2).
    pub fn nangate45_like() -> Library {
        let protos = [
            Proto {
                func: CellFunc::Buf,
                intrinsic: 0.016,
                resistance: 0.0036,
                slew_sens: 0.09,
                pin_cap: 1.0,
                area: 1.07,
                leakage: 1.0,
            },
            Proto {
                func: CellFunc::Inv,
                intrinsic: 0.008,
                resistance: 0.0040,
                slew_sens: 0.10,
                pin_cap: 1.0,
                area: 0.80,
                leakage: 0.9,
            },
            Proto {
                func: CellFunc::Nand2,
                intrinsic: 0.012,
                resistance: 0.0044,
                slew_sens: 0.11,
                pin_cap: 1.0,
                area: 1.06,
                leakage: 1.1,
            },
            Proto {
                func: CellFunc::Nor2,
                intrinsic: 0.015,
                resistance: 0.0056,
                slew_sens: 0.13,
                pin_cap: 1.1,
                area: 1.06,
                leakage: 1.2,
            },
            Proto {
                func: CellFunc::And2,
                intrinsic: 0.020,
                resistance: 0.0045,
                slew_sens: 0.11,
                pin_cap: 1.0,
                area: 1.33,
                leakage: 1.3,
            },
            Proto {
                func: CellFunc::Or2,
                intrinsic: 0.023,
                resistance: 0.0049,
                slew_sens: 0.12,
                pin_cap: 1.0,
                area: 1.33,
                leakage: 1.3,
            },
            Proto {
                func: CellFunc::Xor2,
                intrinsic: 0.030,
                resistance: 0.0063,
                slew_sens: 0.16,
                pin_cap: 1.9,
                area: 2.13,
                leakage: 2.2,
            },
            Proto {
                func: CellFunc::Xnor2,
                intrinsic: 0.030,
                resistance: 0.0063,
                slew_sens: 0.16,
                pin_cap: 1.9,
                area: 2.13,
                leakage: 2.2,
            },
            Proto {
                func: CellFunc::Mux2,
                intrinsic: 0.033,
                resistance: 0.0059,
                slew_sens: 0.15,
                pin_cap: 1.4,
                area: 2.40,
                leakage: 2.4,
            },
            Proto {
                func: CellFunc::Nand3,
                intrinsic: 0.016,
                resistance: 0.0050,
                slew_sens: 0.12,
                pin_cap: 1.1,
                area: 1.33,
                leakage: 1.4,
            },
            Proto {
                func: CellFunc::Nor3,
                intrinsic: 0.021,
                resistance: 0.0068,
                slew_sens: 0.15,
                pin_cap: 1.2,
                area: 1.33,
                leakage: 1.5,
            },
            Proto {
                func: CellFunc::Aoi21,
                intrinsic: 0.017,
                resistance: 0.0058,
                slew_sens: 0.13,
                pin_cap: 1.1,
                area: 1.33,
                leakage: 1.3,
            },
            Proto {
                func: CellFunc::Oai21,
                intrinsic: 0.017,
                resistance: 0.0058,
                slew_sens: 0.13,
                pin_cap: 1.1,
                area: 1.33,
                leakage: 1.3,
            },
            Proto {
                func: CellFunc::Aoi22,
                intrinsic: 0.021,
                resistance: 0.0064,
                slew_sens: 0.14,
                pin_cap: 1.2,
                area: 1.60,
                leakage: 1.5,
            },
            Proto {
                func: CellFunc::Oai22,
                intrinsic: 0.021,
                resistance: 0.0064,
                slew_sens: 0.14,
                pin_cap: 1.2,
                area: 1.60,
                leakage: 1.5,
            },
            Proto {
                func: CellFunc::Dff,
                intrinsic: 0.045,
                resistance: 0.0050,
                slew_sens: 0.05,
                pin_cap: 1.2,
                area: 4.52,
                leakage: 3.1,
            },
        ];
        Library::from_protos("nangate45_like", &protos, &Drive::ALL)
    }

    /// Looks up a cell by function and drive.
    ///
    /// # Panics
    ///
    /// Panics if the library has no such cell; both built-in libraries are
    /// complete over their advertised function sets.
    pub fn cell(&self, func: CellFunc, drive: Drive) -> &Cell {
        let idx = self
            .index
            .get(&(func, drive))
            .unwrap_or_else(|| panic!("library {} has no cell {func}_{drive}", self.name));
        &self.cells[*idx]
    }

    /// Looks up a cell, returning `None` when absent.
    pub fn try_cell(&self, func: CellFunc, drive: Drive) -> Option<&Cell> {
        self.index.get(&(func, drive)).map(|&i| &self.cells[i])
    }

    /// All cells in the library.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Drive strengths available for a function, weakest first.
    pub fn drives_for(&self, func: CellFunc) -> Vec<Drive> {
        Drive::ALL
            .iter()
            .copied()
            .filter(|&d| self.index.contains_key(&(func, d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_library_covers_all_bog_ops() {
        let lib = Library::pseudo_bog();
        for f in [
            CellFunc::Buf,
            CellFunc::Inv,
            CellFunc::And2,
            CellFunc::Or2,
            CellFunc::Xor2,
            CellFunc::Mux2,
            CellFunc::Dff,
        ] {
            assert!(lib.try_cell(f, Drive::X1).is_some(), "missing {f}");
        }
    }

    #[test]
    fn mapped_library_has_three_drives() {
        let lib = Library::nangate45_like();
        assert_eq!(
            lib.drives_for(CellFunc::Nand2),
            vec![Drive::X1, Drive::X2, Drive::X4]
        );
    }

    #[test]
    fn upsizing_reduces_delay_under_load() {
        let lib = Library::nangate45_like();
        let slew = 0.02;
        let load = 20.0;
        let d1 = lib.cell(CellFunc::Nand2, Drive::X1).delay(slew, load);
        let d2 = lib.cell(CellFunc::Nand2, Drive::X2).delay(slew, load);
        let d4 = lib.cell(CellFunc::Nand2, Drive::X4).delay(slew, load);
        assert!(d1 > d2 && d2 > d4, "{d1} {d2} {d4}");
    }

    #[test]
    fn upsizing_increases_area_and_input_cap() {
        let lib = Library::nangate45_like();
        let c1 = lib.cell(CellFunc::Inv, Drive::X1);
        let c4 = lib.cell(CellFunc::Inv, Drive::X4);
        assert!(c4.area > c1.area);
        assert!(c4.pin_cap(0) > c1.pin_cap(0));
    }

    #[test]
    fn xor_is_slower_than_nand() {
        let lib = Library::nangate45_like();
        let x = lib.cell(CellFunc::Xor2, Drive::X1).delay(0.02, 4.0);
        let n = lib.cell(CellFunc::Nand2, Drive::X1).delay(0.02, 4.0);
        assert!(x > n);
    }

    #[test]
    fn dff_has_sequential_constraints() {
        let lib = Library::nangate45_like();
        let dff = lib.cell(CellFunc::Dff, Drive::X1);
        let seq = dff.seq.expect("dff is sequential");
        assert!(seq.clk_to_q > 0.0 && seq.setup > 0.0 && seq.hold >= 0.0);
    }

    #[test]
    fn wire_model_delay_grows_superlinearly() {
        let lib = Library::nangate45_like();
        let d1 = lib.wire.delay(10.0, 1.0);
        let d2 = lib.wire.delay(20.0, 1.0);
        assert!(
            d2 > 2.0 * d1,
            "Elmore wire delay is quadratic-ish in length"
        );
    }

    #[test]
    fn delay_monotone_in_load_for_every_cell() {
        for lib in [Library::pseudo_bog(), Library::nangate45_like()] {
            for c in lib.cells() {
                let a = c.delay(0.02, 1.0);
                let b = c.delay(0.02, 30.0);
                assert!(b > a, "cell {} not monotone in load", c.name);
            }
        }
    }
}
