//! Mapped (post-synthesis) netlist representation.

use rtlt_liberty::{CellFunc, Drive};

/// Cell identifier inside a [`MappedNetlist`].
pub type CellId = u32;

/// Sentinel for absent cells.
pub const NO_CELL: CellId = CellId::MAX;

/// One placed standard cell (or boundary pseudo-cell).
#[derive(Debug, Clone, PartialEq)]
pub struct MappedCell {
    /// Logic function, `None` for boundary pseudo-cells (inputs/constants).
    pub func: Option<CellFunc>,
    /// Drive strength (meaningful only when `func` is `Some`).
    pub drive: Drive,
    /// Input connections (driver cell ids), in pin order.
    pub fanins: Vec<CellId>,
    /// Placement coordinates (site units).
    pub x: f64,
    /// Placement coordinates (site units).
    pub y: f64,
    /// Per-cell delay derate (models tool/process heuristics; ~1.0).
    pub derate: f64,
    /// For tie cells (constants): the driven value. `None` otherwise.
    pub tie: Option<bool>,
}

impl MappedCell {
    /// True for combinational standard cells.
    pub fn is_comb(&self) -> bool {
        matches!(self.func, Some(f) if f != CellFunc::Dff)
    }

    /// True for sequential cells.
    pub fn is_seq(&self) -> bool {
        self.func == Some(CellFunc::Dff)
    }
}

/// A mapped register and its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedReg {
    /// The DFF cell (its output is Q).
    pub q: CellId,
    /// Driver of the D pin.
    pub d: CellId,
    /// Originating BOG register index; `u32::MAX` for registers created by
    /// retiming (no RTL identity).
    pub bog_reg: u32,
}

/// A placed, mapped gate-level netlist.
#[derive(Debug, Clone)]
pub struct MappedNetlist {
    /// Design name.
    pub name: String,
    /// All cells.
    pub cells: Vec<MappedCell>,
    /// Registers (order: original BOG registers first).
    pub regs: Vec<MappedReg>,
    /// Primary inputs `(name, cell)`.
    pub inputs: Vec<(String, CellId)>,
    /// Primary outputs `(name, driver cell)`.
    pub outputs: Vec<(String, CellId)>,
}

impl MappedNetlist {
    /// Fanins of a cell.
    pub fn fanins(&self, id: CellId) -> &[CellId] {
        &self.cells[id as usize].fanins
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the netlist has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Combinational + sequential standard-cell count (excludes boundary
    /// pseudo-cells).
    pub fn gate_count(&self) -> usize {
        self.cells.iter().filter(|c| c.func.is_some()).count()
    }

    /// Topological order over all cells (fanins before fanouts; DFF outputs
    /// are sources — their D connection lives in [`MappedReg::d`]).
    ///
    /// # Panics
    ///
    /// Panics on a combinational cycle (the flow never creates one).
    pub fn topo_order(&self) -> Vec<CellId> {
        let n = self.cells.len();
        let mut indeg = vec![0u32; n];
        let mut fanouts: Vec<Vec<CellId>> = vec![Vec::new(); n];
        for (id, c) in self.cells.iter().enumerate() {
            for &f in &c.fanins {
                indeg[id] += 1;
                fanouts[f as usize].push(id as CellId);
            }
        }
        let mut queue: Vec<CellId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| i as CellId)
            .collect();
        let mut head = 0;
        let mut order = Vec::with_capacity(n);
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &o in &fanouts[id as usize] {
                indeg[o as usize] -= 1;
                if indeg[o as usize] == 0 {
                    queue.push(o);
                }
            }
        }
        assert_eq!(order.len(), n, "combinational cycle in mapped netlist");
        order
    }

    /// Sink pins of every cell: `(sink cell, pin index)`; register D pins
    /// appear as `(q cell, 0)` sinks flagged separately via
    /// [`MappedNetlist::reg_d_sinks`].
    pub fn fanout_pins(&self) -> Vec<Vec<(CellId, usize)>> {
        let mut fo: Vec<Vec<(CellId, usize)>> = vec![Vec::new(); self.cells.len()];
        for (id, c) in self.cells.iter().enumerate() {
            for (pin, &f) in c.fanins.iter().enumerate() {
                fo[f as usize].push((id as CellId, pin));
            }
        }
        fo
    }

    /// For each cell, the register indices whose D pin it drives.
    pub fn reg_d_sinks(&self) -> Vec<Vec<usize>> {
        let mut sinks: Vec<Vec<usize>> = vec![Vec::new(); self.cells.len()];
        for (ri, r) in self.regs.iter().enumerate() {
            sinks[r.d as usize].push(ri);
        }
        sinks
    }

    /// Per-function cell histogram (for reports/tests).
    pub fn cell_histogram(&self) -> Vec<(CellFunc, usize)> {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<CellFunc, usize> = BTreeMap::new();
        for c in &self.cells {
            if let Some(f) = c.func {
                *m.entry(f).or_default() += 1;
            }
        }
        m.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_liberty::{CellFunc, Drive};

    fn cell(func: Option<CellFunc>, fanins: Vec<CellId>) -> MappedCell {
        MappedCell {
            func,
            drive: Drive::X1,
            fanins,
            x: 0.0,
            y: 0.0,
            derate: 1.0,
            tie: None,
        }
    }

    #[test]
    fn topo_order_and_counts() {
        let n = MappedNetlist {
            name: "t".into(),
            cells: vec![
                cell(None, vec![]),                      // 0: input
                cell(Some(CellFunc::Inv), vec![0]),      // 1
                cell(Some(CellFunc::Nand2), vec![0, 1]), // 2
            ],
            regs: vec![],
            inputs: vec![("a".into(), 0)],
            outputs: vec![("y".into(), 2)],
        };
        let order = n.topo_order();
        assert_eq!(order.len(), 3);
        assert!(order.iter().position(|&c| c == 0) < order.iter().position(|&c| c == 2));
        assert_eq!(n.gate_count(), 2);
        assert_eq!(
            n.cell_histogram(),
            vec![(CellFunc::Inv, 1), (CellFunc::Nand2, 1)]
        );
    }
}
