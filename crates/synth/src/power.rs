//! Area and power models.
//!
//! Area = Σ cell areas. Power = Σ leakage + k·Σ activity·load, with switching
//! activity from static signal-probability propagation (independence
//! assumption, inputs and register outputs at p = 0.5). Good enough to
//! expose the area/power side effects of upsizing and retiming that Table 6
//! tracks.

use crate::netlist::{CellId, MappedNetlist};
use rtlt_liberty::{CellFunc, Library};

/// Area/power summary of a mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerArea {
    /// Total cell area.
    pub area: f64,
    /// Total leakage.
    pub leakage: f64,
    /// Dynamic (switching) power estimate.
    pub dynamic: f64,
    /// Combined power figure.
    pub total_power: f64,
}

const DYNAMIC_SCALE: f64 = 0.45;

/// Computes area and power for the netlist.
pub fn power_area(n: &MappedNetlist, lib: &Library) -> PowerArea {
    let mut area = 0.0;
    let mut leakage = 0.0;
    for c in &n.cells {
        if let Some(func) = c.func {
            let cell = lib.cell(func, c.drive);
            area += cell.area;
            leakage += cell.leakage;
        }
    }

    // Signal probabilities.
    let probs = signal_probabilities(n);
    let loads = crate::timing::static_loads(n, lib);
    let mut dynamic = 0.0;
    for (id, c) in n.cells.iter().enumerate() {
        if c.func.is_some() || c.tie.is_none() {
            let p = probs[id];
            let activity = 2.0 * p * (1.0 - p);
            dynamic += activity * loads[id];
        }
    }
    dynamic *= DYNAMIC_SCALE;
    PowerArea {
        area,
        leakage,
        dynamic,
        total_power: leakage + dynamic,
    }
}

/// Static probability that each cell output is 1.
pub fn signal_probabilities(n: &MappedNetlist) -> Vec<f64> {
    let mut p = vec![0.5f64; n.cells.len()];
    for id in n.topo_order() {
        let c = &n.cells[id as usize];
        let f = |i: usize| p[c.fanins[i] as usize];
        p[id as usize] = match c.func {
            None => match c.tie {
                Some(true) => 1.0,
                Some(false) => 0.0,
                None => 0.5, // primary input
            },
            Some(CellFunc::Dff) => 0.5,
            Some(CellFunc::Buf) => f(0),
            Some(CellFunc::Inv) => 1.0 - f(0),
            Some(CellFunc::And2) => f(0) * f(1),
            Some(CellFunc::Nand2) => 1.0 - f(0) * f(1),
            Some(CellFunc::Or2) => or(f(0), f(1)),
            Some(CellFunc::Nor2) => 1.0 - or(f(0), f(1)),
            Some(CellFunc::Xor2) => xor(f(0), f(1)),
            Some(CellFunc::Xnor2) => 1.0 - xor(f(0), f(1)),
            Some(CellFunc::Mux2) => f(0) * f(1) + (1.0 - f(0)) * f(2),
            Some(CellFunc::Nand3) => 1.0 - f(0) * f(1) * f(2),
            Some(CellFunc::Nor3) => 1.0 - or(or(f(0), f(1)), f(2)),
            Some(CellFunc::Aoi21) => 1.0 - or(f(0) * f(1), f(2)),
            Some(CellFunc::Oai21) => 1.0 - or(f(0), f(1)) * f(2),
            Some(CellFunc::Aoi22) => 1.0 - or(f(0) * f(1), f(2) * f(3)),
            Some(CellFunc::Oai22) => 1.0 - or(f(0), f(1)) * or(f(2), f(3)),
        };
    }
    p
}

fn or(a: f64, b: f64) -> f64 {
    a + b - a * b
}

fn xor(a: f64, b: f64) -> f64 {
    a * (1.0 - b) + b * (1.0 - a)
}

/// Convenience: cells driving a given set of sinks (used by reports).
pub fn drivers_of(n: &MappedNetlist, sinks: &[CellId]) -> Vec<CellId> {
    let mut out = Vec::new();
    for &s in sinks {
        out.extend(n.cells[s as usize].fanins.iter().copied());
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::tech_map;
    use crate::opt::balance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtlt_bog::blast;
    use rtlt_liberty::Drive;
    use rtlt_verilog::compile;

    fn netlist() -> (MappedNetlist, Library) {
        let bog = balance(&blast(
            &compile(
                "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
                   reg [7:0] r;
                   always @(posedge clk) r <= (a & b) + r;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        ));
        let lib = Library::nangate45_like();
        let n = tech_map(&bog, &lib, &mut StdRng::seed_from_u64(2));
        (n, lib)
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (n, _) = netlist();
        for (i, p) in signal_probabilities(&n).iter().enumerate() {
            assert!((0.0..=1.0).contains(p), "cell {i}: p={p}");
        }
    }

    #[test]
    fn and_of_independent_halves() {
        let (n, _) = netlist();
        let probs = signal_probabilities(&n);
        for (id, c) in n.cells.iter().enumerate() {
            if c.func == Some(CellFunc::And2) {
                let pa = probs[c.fanins[0] as usize];
                let pb = probs[c.fanins[1] as usize];
                assert!((probs[id] - pa * pb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upsizing_increases_area_and_power() {
        let (mut n, lib) = netlist();
        let before = power_area(&n, &lib);
        for c in n.cells.iter_mut() {
            if c.is_comb() {
                c.drive = Drive::X4;
            }
        }
        let after = power_area(&n, &lib);
        assert!(after.area > before.area);
        assert!(after.total_power > before.total_power);
    }
}
