//! Logic synthesis and physical design **simulator**.
//!
//! The paper labels RTL endpoints with post-synthesis arrival times from
//! Synopsys Design Compiler + Cadence Innovus + PrimeTime on NanGate 45 nm.
//! None of that exists offline, so this crate is the documented substitute
//! (DESIGN.md §2): it applies the same *classes* of transformations that
//! create the RTL↔netlist timing gap the paper's ML model must learn:
//!
//! 1. [`opt`] — associative tree balancing (ripple chains become log-depth
//!    trees) over the SOG,
//! 2. [`map`] — technology mapping onto the NanGate45-like library
//!    (NAND/NOR/XNOR/AOI/OAI fusion), fanout buffering, load-based sizing,
//! 3. [`place`] — recursive-bisection placement and per-net wire lengths,
//! 4. [`timing`] — slew/load-aware STA with Elmore wire delays,
//! 5. [`effort`] — iterative timing-driven sizing with an effort budget that
//!    can be split across **path groups** (the `group_path` knob), and
//! 6. [`retime`] — backward register retiming for selected critical
//!    endpoints (the `retime` knob).
//!
//! Register endpoints keep their identity through the flow (except when
//! retimed), so each BOG register bit can be labeled with its mapped-netlist
//! arrival time — the ground truth for RTL-Timer's models.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), rtlt_verilog::VerilogError> {
//! let netlist = rtlt_verilog::compile(
//!     "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
//!        reg [7:0] r;
//!        always @(posedge clk) r <= r + (a ^ b);
//!        assign q = r;
//!      endmodule", "m")?;
//! let bog = rtlt_bog::blast(&netlist);
//! let lib = rtlt_liberty::Library::nangate45_like();
//! let res = rtlt_synth::synthesize(&bog, &lib, &rtlt_synth::SynthOptions::default());
//! assert_eq!(res.endpoint_at.len(), bog.regs().len());
//! # Ok(())
//! # }
//! ```

pub mod effort;
pub mod flow;
pub mod map;
pub mod netlist;
pub mod opt;
pub mod place;
pub mod power;
pub mod retime;
pub mod timing;

pub use flow::{synthesize, PathGroups, SynthOptions, SynthResult};
pub use netlist::{CellId, MappedCell, MappedNetlist, MappedReg, NO_CELL};
pub use timing::{NetTiming, PhysicalSta};
