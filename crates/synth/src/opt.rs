//! Logic optimization on the SOG before mapping.
//!
//! The headline transformation is **associative tree balancing**: bit-blasted
//! RTL arrives with linear chains (ripple reductions, chained conditions);
//! synthesis rebuilds maximal single-fanout same-operator trees into
//! balanced (Huffman-by-depth) trees, collapsing O(n) depth to O(log n).
//! This is the main source of structural divergence between the RTL-stage
//! pseudo netlist and the final netlist — exactly the gap the paper's models
//! must bridge.

use rtlt_bog::{Bog, BogBuilder, BogOp, NodeId, NO_NODE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn assoc(op: BogOp) -> bool {
    matches!(op, BogOp::And2 | BogOp::Or2 | BogOp::Xor2)
}

/// Balances associative chains, returning a functionally equivalent SOG.
pub fn balance(bog: &Bog) -> Bog {
    let fanout = bog.fanout_counts();
    let levels = bog.levels();

    // A node is *consumed* (folded into its parent's balanced tree) when it
    // is an associative op with exactly one fanout of the same op.
    let mut unique_parent: Vec<NodeId> = vec![NO_NODE; bog.len()];
    for id in 0..bog.len() as NodeId {
        for &f in bog.fanins(id) {
            unique_parent[f as usize] = id;
        }
    }
    let consumed = |id: NodeId| -> bool {
        let op = bog.node(id).op;
        if !assoc(op) || fanout[id as usize] != 1 {
            return false;
        }
        let p = unique_parent[id as usize];
        p != NO_NODE && bog.node(p).op == op
    };

    let mut b = BogBuilder::new(bog.name.clone(), bog.variant);
    let mut qs_by_signal = Vec::with_capacity(bog.signals().len());
    for s in bog.signals() {
        qs_by_signal.push(b.signal(s.name.clone(), s.width, s.decl_line, s.top_level));
    }
    let mut map: Vec<NodeId> = vec![NO_NODE; bog.len()];
    for r in bog.regs() {
        map[r.q as usize] = qs_by_signal[r.signal as usize][r.bit as usize];
    }

    for id in bog.topo_order() {
        if map[id as usize] != NO_NODE || consumed(id) {
            continue;
        }
        let node = bog.node(id);
        let f = node.fanins;
        let new_id = match node.op {
            BogOp::Input => {
                let name = bog
                    .inputs()
                    .iter()
                    .find(|(_, n)| *n == id)
                    .map(|(s, _)| s.clone())
                    .unwrap_or_else(|| format!("in{id}"));
                b.input(name)
            }
            BogOp::Const0 => b.const0(),
            BogOp::Const1 => b.const1(),
            BogOp::Dff => unreachable!("DFFs pre-mapped"),
            BogOp::Not => {
                let a = map[f[0] as usize];
                debug_assert!(a != NO_NODE);
                b.not(a)
            }
            BogOp::Mux2 => {
                let (s, t, fe) = (map[f[0] as usize], map[f[1] as usize], map[f[2] as usize]);
                b.mux2(s, t, fe)
            }
            op if assoc(op) => {
                // Collect the maximal same-op single-fanout tree's leaves.
                let mut leaves: Vec<NodeId> = Vec::new();
                let mut stack = vec![id];
                while let Some(n) = stack.pop() {
                    for &fi in bog.fanins(n) {
                        if bog.node(fi).op == op && consumed(fi) {
                            stack.push(fi);
                        } else {
                            leaves.push(fi);
                        }
                    }
                }
                // Huffman combine by (projected) depth: repeatedly join the
                // two shallowest subtrees.
                let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = leaves
                    .iter()
                    .map(|&l| {
                        let nl = map[l as usize];
                        debug_assert!(nl != NO_NODE, "leaf mapped before root");
                        Reverse((levels[l as usize], nl))
                    })
                    .collect();
                while heap.len() > 1 {
                    let Reverse((l1, a)) = heap.pop().expect("len>1");
                    let Reverse((l2, c)) = heap.pop().expect("len>1");
                    let joined = match op {
                        BogOp::And2 => b.and2(a, c),
                        BogOp::Or2 => b.or2(a, c),
                        BogOp::Xor2 => b.xor2(a, c),
                        _ => unreachable!(),
                    };
                    heap.push(Reverse((l1.max(l2) + 1, joined)));
                }
                heap.pop().expect("nonempty tree").0 .1
            }
            other => unreachable!("unexpected op {other}"),
        };
        map[id as usize] = new_id;
    }

    for (i, r) in bog.regs().iter().enumerate() {
        b.set_reg_d(i, map[r.d as usize]);
    }
    for (name, drv) in bog.outputs() {
        b.output(name.clone(), map[*drv as usize]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rtlt_bog::{blast, BitSim};
    use rtlt_verilog::compile;

    #[test]
    fn balancing_reduces_reduction_chain_depth() {
        let bog = blast(
            &compile(
                "module m(input [31:0] a, output y);
                   assign y = &a;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let bal = balance(&bog);
        let d0 = *bog.levels().iter().max().unwrap();
        let d1 = *bal.levels().iter().max().unwrap();
        assert_eq!(d0, 31, "linear AND chain");
        assert!(d1 <= 6, "balanced depth {d1} should be ~log2(32)");
    }

    #[test]
    fn balancing_preserves_function() {
        let src = "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q, output r);
                     reg [15:0] acc;
                     always @(posedge clk) acc <= acc + (a & b);
                     assign q = acc;
                     assign r = ^acc | &a;
                   endmodule";
        let bog = blast(&compile(src, "m").unwrap());
        let bal = balance(&bog);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s0 = BitSim::new(&bog);
        let mut s1 = BitSim::new(&bal);
        for _ in 0..10 {
            let a: Vec<u64> = (0..64).map(|_| rng.gen_range(0..65536)).collect();
            let b: Vec<u64> = (0..64).map(|_| rng.gen_range(0..65536)).collect();
            for s in [&mut s0, &mut s1] {
                s.set_input_word("a", &a);
                s.set_input_word("b", &b);
                s.step();
            }
            assert_eq!(s0.output_word("q"), s1.output_word("q"));
            assert_eq!(s0.output_word("r"), s1.output_word("r"));
        }
    }

    #[test]
    fn shared_nodes_are_not_consumed() {
        // t = a&b has fanout 2 — must survive as a distinct node.
        let bog = blast(
            &compile(
                "module m(input a, input b, input c, input d, output y1, output y2);
                   wire t;
                   assign t = a & b;
                   assign y1 = t & c;
                   assign y2 = t & d;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let bal = balance(&bog);
        // Function must hold.
        let mut s0 = BitSim::new(&bog);
        let mut s1 = BitSim::new(&bal);
        for v in 0..16u64 {
            let (a, b, c, d) = (v & 1, (v >> 1) & 1, (v >> 2) & 1, (v >> 3) & 1);
            for s in [&mut s0, &mut s1] {
                s.set_input_word("a", &[a]);
                s.set_input_word("b", &[b]);
                s.set_input_word("c", &[c]);
                s.set_input_word("d", &[d]);
                s.settle();
            }
            assert_eq!(s0.output_word("y1")[0] & 1, s1.output_word("y1")[0] & 1);
            assert_eq!(s0.output_word("y2")[0] & 1, s1.output_word("y2")[0] & 1);
        }
    }
}
