//! The end-to-end synthesis flow: balance → map → place → (retime) →
//! timing-driven effort → sign-off STA → power/area.

use crate::effort::{optimize_timing, EffortGroup};
use crate::map::tech_map;
use crate::netlist::MappedNetlist;
use crate::opt::balance;
use crate::place::place;
use crate::power::power_area;
use crate::retime::retime_backward;
use crate::timing::time_netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtlt_bog::Bog;
use rtlt_liberty::Library;
use std::time::{Duration, Instant};

/// Criticality path groups for `group_path`-style optimization: BOG register
/// indices per group plus the effort weight of each group.
#[derive(Debug, Clone, Default)]
pub struct PathGroups {
    /// Endpoint (BOG register index) sets, most critical group first.
    pub groups: Vec<Vec<u32>>,
    /// Effort weight per group (same length as `groups`).
    pub weights: Vec<f64>,
}

/// Synthesis flow options.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Seed for all heuristic tie-breaking (mapping derates, placement).
    pub seed: u64,
    /// Clock period; `None` derives one at ~88% of the unoptimized critical
    /// arrival (guaranteeing a timing-driven run).
    pub clock_period: Option<f64>,
    /// Effort multiplier: budget = effort × gate count / 12.
    pub effort: f64,
    /// Optional `group_path`-style grouping of optimization effort.
    pub path_groups: Option<PathGroups>,
    /// BOG register indices to attempt backward retiming on.
    pub retime_endpoints: Vec<u32>,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            seed: 1,
            clock_period: None,
            effort: 1.0,
            path_groups: None,
            retime_endpoints: Vec::new(),
        }
    }
}

/// Result of a synthesis run — the reproduction's stand-in for the paper's
/// post-synthesis netlist + PrimeTime report.
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The final mapped, placed, optimized netlist.
    pub netlist: MappedNetlist,
    /// Ground-truth arrival time for each **BOG register endpoint** (ns);
    /// `NaN` where the register was retimed away.
    pub endpoint_at: Vec<f64>,
    /// Slack per BOG register endpoint (ns); `NaN` where retimed.
    pub endpoint_slack: Vec<f64>,
    /// Arrival per primary-output bit (ns).
    pub output_at: Vec<f64>,
    /// Worst negative slack of the design (ns, ≤ 0).
    pub wns: f64,
    /// Total negative slack of the design (ns, ≤ 0).
    pub tns: f64,
    /// Total cell area.
    pub area: f64,
    /// Total power estimate.
    pub power: f64,
    /// Clock period used (ns).
    pub clock_period: f64,
    /// Wall-clock runtime of the flow (for the paper's §4.5 analysis).
    pub elapsed: Duration,
}

/// Runs the full synthesis + physical design flow on a SOG.
///
/// # Panics
///
/// Panics if `bog` is not the SOG variant (labels are defined against the
/// structural representation the netlist is derived from).
pub fn synthesize(bog: &Bog, lib: &Library, opts: &SynthOptions) -> SynthResult {
    assert_eq!(
        bog.variant,
        rtlt_bog::BogVariant::Sog,
        "synthesis consumes the SOG representation"
    );
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Logic optimization + mapping + placement.
    let balanced = balance(bog);
    let mut netlist = tech_map(&balanced, lib, &mut rng);
    place(&mut netlist, &mut rng);

    // Clock selection on the unoptimized design: tight enough that the
    // timing-driven flow runs out of budget before closing everything, so
    // designs ship with realistic residual violations (as in the paper's
    // Table 6 baselines).
    let initial = time_netlist(&netlist, lib, 1.0);
    let clock = opts
        .clock_period
        .unwrap_or_else(|| (initial.max_arrival() * 0.80).max(0.05));

    // Optional retiming of selected endpoints (before sizing, as tools do).
    if !opts.retime_endpoints.is_empty() {
        let sta = time_netlist(&netlist, lib, clock);
        let eps: Vec<usize> = opts
            .retime_endpoints
            .iter()
            .filter_map(|&bog_reg| netlist.regs.iter().position(|r| r.bog_reg == bog_reg))
            .collect();
        let _ = retime_backward(&mut netlist, &sta, &eps);
    }

    // Timing-driven effort, grouped or default.
    let budget = ((netlist.gate_count() as f64) * opts.effort / 12.0).ceil() as usize;
    let groups: Vec<EffortGroup> = match &opts.path_groups {
        Some(pg) => {
            let mut groups: Vec<EffortGroup> = pg
                .groups
                .iter()
                .zip(&pg.weights)
                .map(|(g, &w)| EffortGroup {
                    endpoints: g
                        .iter()
                        .filter_map(|&bog_reg| {
                            netlist.regs.iter().position(|r| r.bog_reg == bog_reg)
                        })
                        .collect(),
                    weight: w,
                })
                .collect();
            // Registers created by retiming have no RTL identity and thus
            // no group assignment; they came from the most critical
            // endpoints, so they join the top group.
            let grouped: std::collections::HashSet<usize> = groups
                .iter()
                .flat_map(|g| g.endpoints.iter().copied())
                .collect();
            if let Some(top) = groups.first_mut() {
                for (ri, r) in netlist.regs.iter().enumerate() {
                    if !grouped.contains(&ri) && r.d != r.q {
                        top.endpoints.push(ri);
                    }
                }
            }
            groups
        }
        None => vec![EffortGroup {
            endpoints: (0..netlist.regs.len()).collect(),
            weight: 1.0,
        }],
    };
    let _ = optimize_timing(&mut netlist, lib, clock, &groups, budget);

    // Sign-off.
    let sta = time_netlist(&netlist, lib, clock);
    let pa = power_area(&netlist, lib);

    // Map endpoint labels back to BOG register order.
    let nregs_bog = bog.regs().len();
    let mut endpoint_at = vec![f64::NAN; nregs_bog];
    let mut endpoint_slack = vec![f64::NAN; nregs_bog];
    for (ri, r) in netlist.regs.iter().enumerate() {
        if r.bog_reg != u32::MAX && (r.bog_reg as usize) < nregs_bog && r.d != r.q {
            endpoint_at[r.bog_reg as usize] = sta.reg_at[ri];
            endpoint_slack[r.bog_reg as usize] = sta.reg_slack[ri];
        }
    }

    SynthResult {
        endpoint_at,
        endpoint_slack,
        output_at: sta.output_at.clone(),
        wns: sta.wns,
        tns: sta.tns,
        area: pa.area,
        power: pa.total_power,
        clock_period: clock,
        elapsed: start.elapsed(),
        netlist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn bog() -> Bog {
        blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] acc;
                   reg [15:0] stage;
                   always @(posedge clk) begin
                     stage <= a * b;
                     acc <= acc + stage;
                   end
                   assign q = acc;
                 endmodule",
                "m",
            )
            .unwrap(),
        )
    }

    #[test]
    fn default_flow_labels_every_endpoint() {
        let bog = bog();
        let lib = Library::nangate45_like();
        let res = synthesize(&bog, &lib, &SynthOptions::default());
        assert_eq!(res.endpoint_at.len(), bog.regs().len());
        assert!(res.endpoint_at.iter().all(|a| a.is_finite()));
        assert!(res.area > 0.0 && res.power > 0.0);
        assert!(res.clock_period > 0.0);
        // The derived clock forces some violations (timing-driven run).
        assert!(res.tns <= 0.0);
    }

    #[test]
    fn same_seed_same_labels() {
        let bog = bog();
        let lib = Library::nangate45_like();
        let a = synthesize(&bog, &lib, &SynthOptions::default());
        let b = synthesize(&bog, &lib, &SynthOptions::default());
        assert_eq!(a.endpoint_at, b.endpoint_at);
        assert_eq!(a.wns, b.wns);
        let c = synthesize(
            &bog,
            &lib,
            &SynthOptions {
                seed: 99,
                ..Default::default()
            },
        );
        let differs = a
            .endpoint_at
            .iter()
            .zip(&c.endpoint_at)
            .any(|(x, y)| (x - y).abs() > 1e-12);
        assert!(differs, "different seed should perturb labels");
    }

    #[test]
    fn grouped_effort_improves_tns_vs_default() {
        let bog = bog();
        let lib = Library::nangate45_like();
        // Scarce-budget, tight-clock regime: the interesting case for
        // group_path (when budget is plentiful both flows close timing).
        let probe = synthesize(&bog, &lib, &SynthOptions::default());
        let clock = probe.clock_period * 0.72;
        let base_opts = SynthOptions {
            clock_period: Some(clock),
            effort: 0.35,
            ..Default::default()
        };
        let default = synthesize(&bog, &lib, &base_opts);
        assert!(default.tns < 0.0, "regime must leave violations");

        // Real ranking from the default run, 4 paper-style groups.
        let mut idx: Vec<u32> = (0..bog.regs().len() as u32).collect();
        idx.sort_by(|&x, &y| {
            default.endpoint_at[y as usize]
                .partial_cmp(&default.endpoint_at[x as usize])
                .unwrap()
        });
        let n = idx.len();
        let cut = |a: f64| ((n as f64) * a).ceil() as usize;
        let groups = vec![
            idx[..cut(0.05).max(1)].to_vec(),
            idx[cut(0.05).max(1)..cut(0.40)].to_vec(),
            idx[cut(0.40)..cut(0.70)].to_vec(),
            idx[cut(0.70)..].to_vec(),
        ];
        let opt = synthesize(
            &bog,
            &lib,
            &SynthOptions {
                path_groups: Some(PathGroups {
                    groups,
                    weights: vec![0.4, 0.3, 0.2, 0.1],
                }),
                ..base_opts
            },
        );
        // On a single tiny design (one shared multiplier cone) grouping can
        // only dilute effort slightly; across a diverse suite it wins on
        // average (Table 6 bench). Here we check it is never catastrophic.
        assert!(
            opt.tns >= default.tns * 1.10,
            "grouped TNS {} should stay within 10% of default {}",
            opt.tns,
            default.tns
        );
    }
}
