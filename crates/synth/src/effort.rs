//! Timing-driven optimization effort with path groups.
//!
//! Real synthesis spends a bounded optimization effort; by default it
//! fixates on the single most critical violation, leaving near-critical
//! endpoints untouched (paper §3.5.2 and Fig. 4). The `group_path` command
//! instead dedicates effort to each criticality group. This module models
//! both: the budget is divided across groups by weight, and inside each
//! group the worst endpoints get iterative drive upsizing along their
//! critical paths, with STA refreshed between passes.

use crate::netlist::MappedNetlist;
use crate::timing::{critical_cells, time_netlist, PhysicalSta};
use rtlt_liberty::Library;

/// One optimization group: register endpoint indices plus effort weight.
#[derive(Debug, Clone)]
pub struct EffortGroup {
    /// Register endpoint indices (into `netlist.regs`).
    pub endpoints: Vec<usize>,
    /// Relative share of the effort budget.
    pub weight: f64,
}

/// Outcome of the effort loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffortReport {
    /// Upsizing operations applied.
    pub upsizes: usize,
    /// STA passes run.
    pub passes: usize,
}

const MAX_PASSES: usize = 6;

/// Runs the timing-driven sizing loop. `budget` bounds the total number of
/// upsizing operations.
pub fn optimize_timing(
    n: &mut MappedNetlist,
    lib: &Library,
    clock: f64,
    groups: &[EffortGroup],
    budget: usize,
) -> EffortReport {
    let mut report = EffortReport {
        upsizes: 0,
        passes: 0,
    };
    let total_weight: f64 = groups.iter().map(|g| g.weight).sum();
    if total_weight <= 0.0 || budget == 0 {
        return report;
    }

    for _pass in 0..MAX_PASSES {
        let sta = time_netlist(n, lib, clock);
        report.passes += 1;
        if sta.wns >= 0.0 || report.upsizes >= budget {
            break;
        }
        let mut changed = 0usize;
        for g in groups {
            let group_budget =
                ((budget as f64) * g.weight / total_weight / MAX_PASSES as f64).ceil() as usize;
            changed += optimize_group(n, lib, &sta, &g.endpoints, group_budget);
            if report.upsizes + changed >= budget {
                break;
            }
        }
        report.upsizes += changed;
        if changed == 0 {
            break;
        }
    }
    report
}

/// Upsizes cells along the critical paths of the worst endpoints in a
/// group; returns the number of changes.
fn optimize_group(
    n: &mut MappedNetlist,
    lib: &Library,
    sta: &PhysicalSta,
    endpoints: &[usize],
    group_budget: usize,
) -> usize {
    if group_budget == 0 || endpoints.is_empty() {
        return 0;
    }
    // Worst endpoints first.
    let mut eps: Vec<usize> = endpoints
        .iter()
        .copied()
        .filter(|&e| sta.reg_slack[e] < 0.0)
        .collect();
    eps.sort_by(|&a, &b| {
        sta.reg_slack[a]
            .partial_cmp(&sta.reg_slack[b])
            .expect("finite")
    });
    // Narrow attention: like a default tool run, only the worst few
    // endpoints of the group get effort each pass. Grouped optimization
    // covers more of the slack distribution simply by having four groups.
    let take = eps.len().min(4.max(eps.len() / 16));

    let mut changes = 0usize;
    for &ep in eps.iter().take(take) {
        let path = critical_cells(n, sta, ep);
        for &cid in path.iter().rev() {
            if changes >= group_budget {
                return changes;
            }
            let c = &n.cells[cid as usize];
            let Some(func) = c.func else { continue };
            if !c.is_comb() {
                continue;
            }
            // Upsize pays off when the cell carries appreciable load
            // (nearly always true on a critical path once wires count).
            let x1 = lib.cell(func, rtlt_liberty::Drive::X1);
            if sta.nets.load[cid as usize] > 0.12 * x1.max_load {
                if let Some(up) = c.drive.upsize() {
                    n.cells[cid as usize].drive = up;
                    changes += 1;
                }
            }
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::tech_map;
    use crate::opt::balance;
    use crate::place::place;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn setup() -> (MappedNetlist, Library) {
        let bog = balance(&blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] r;
                   always @(posedge clk) r <= r + (a * b);
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        ));
        let lib = Library::nangate45_like();
        let mut rng = StdRng::seed_from_u64(21);
        let mut n = tech_map(&bog, &lib, &mut rng);
        place(&mut n, &mut rng);
        (n, lib)
    }

    #[test]
    fn effort_improves_wns_under_tight_clock() {
        let (mut n, lib) = setup();
        let base = time_netlist(&n, &lib, 1.0);
        let clock = base.max_arrival() * 0.8; // force violations
        let before = time_netlist(&n, &lib, clock);
        assert!(before.wns < 0.0);
        let groups = [EffortGroup {
            endpoints: (0..n.regs.len()).collect(),
            weight: 1.0,
        }];
        let report = optimize_timing(&mut n, &lib, clock, &groups, 400);
        assert!(report.upsizes > 0);
        let after = time_netlist(&n, &lib, clock);
        assert!(
            after.wns > before.wns,
            "wns should improve: {} -> {}",
            before.wns,
            after.wns
        );
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let (mut n, lib) = setup();
        let drives: Vec<_> = n.cells.iter().map(|c| c.drive).collect();
        let groups = [EffortGroup {
            endpoints: (0..n.regs.len()).collect(),
            weight: 1.0,
        }];
        let report = optimize_timing(&mut n, &lib, 0.1, &groups, 0);
        assert_eq!(report.upsizes, 0);
        let after: Vec<_> = n.cells.iter().map(|c| c.drive).collect();
        assert_eq!(drives, after);
    }

    #[test]
    fn met_timing_short_circuits() {
        let (mut n, lib) = setup();
        let groups = [EffortGroup {
            endpoints: (0..n.regs.len()).collect(),
            weight: 1.0,
        }];
        let report = optimize_timing(&mut n, &lib, 100.0, &groups, 100);
        assert_eq!(report.upsizes, 0);
        assert_eq!(report.passes, 1);
    }
}
