//! Technology mapping: balanced SOG → mapped standard-cell netlist.
//!
//! Greedy pattern fusion rooted at inverters (NAND/NOR/XNOR, AOI/OAI 21/22,
//! NAND3/NOR3), followed by fanout-tree buffering and load-based initial
//! drive selection. Every cell receives a small deterministic delay derate
//! sampled from the seed — modeling the heuristic variability of a real
//! synthesis tool that no RTL-stage predictor can fully explain.

use crate::netlist::{CellId, MappedCell, MappedNetlist, MappedReg, NO_CELL};
use rand::rngs::StdRng;
use rand::Rng;
use rtlt_bog::{Bog, BogOp, NodeId};
use rtlt_liberty::{CellFunc, Drive, Library};

/// Maximum sinks before a buffer tree is inserted.
const FANOUT_LIMIT: usize = 10;

/// Technology-maps a (balanced) SOG.
pub fn tech_map(bog: &Bog, lib: &Library, rng: &mut StdRng) -> MappedNetlist {
    let fanout = bog.fanout_counts();
    let single = |id: NodeId| fanout[id as usize] == 1;
    let op_of = |id: NodeId| bog.node(id).op;

    // Pass 1: choose fusion patterns rooted at NOT nodes; record consumed
    // interior nodes and the pattern of each root.
    #[derive(Clone)]
    enum Pattern {
        Plain,
        Fused {
            func: CellFunc,
            pins: Vec<NodeId>,
            interior: Vec<NodeId>,
        },
    }
    let mut pattern: Vec<Option<Pattern>> = vec![None; bog.len()];
    let mut consumed = vec![false; bog.len()];

    for id in 0..bog.len() as NodeId {
        if op_of(id) != BogOp::Not {
            continue;
        }
        let x = bog.fanins(id)[0];
        if consumed[x as usize] || !single(x) {
            continue;
        }
        let choice: Option<(CellFunc, Vec<NodeId>, Vec<NodeId>)> = match op_of(x) {
            BogOp::And2 => {
                let [p, q, _] = bog.node(x).fanins;
                let p_or = op_of(p) == BogOp::Or2 && single(p) && !consumed[p as usize];
                let q_or = op_of(q) == BogOp::Or2 && single(q) && !consumed[q as usize];
                let p_and = op_of(p) == BogOp::And2 && single(p) && !consumed[p as usize];
                if p_or && q_or {
                    let [a, b2, _] = bog.node(p).fanins;
                    let [c, d, _] = bog.node(q).fanins;
                    Some((CellFunc::Oai22, vec![a, b2, c, d], vec![x, p, q]))
                } else if p_or {
                    let [a, b2, _] = bog.node(p).fanins;
                    Some((CellFunc::Oai21, vec![a, b2, q], vec![x, p]))
                } else if q_or {
                    let [a, b2, _] = bog.node(q).fanins;
                    Some((CellFunc::Oai21, vec![a, b2, p], vec![x, q]))
                } else if p_and {
                    let [a, b2, _] = bog.node(p).fanins;
                    Some((CellFunc::Nand3, vec![a, b2, q], vec![x, p]))
                } else {
                    Some((CellFunc::Nand2, vec![p, q], vec![x]))
                }
            }
            BogOp::Or2 => {
                let [p, q, _] = bog.node(x).fanins;
                let p_and = op_of(p) == BogOp::And2 && single(p) && !consumed[p as usize];
                let q_and = op_of(q) == BogOp::And2 && single(q) && !consumed[q as usize];
                let p_or = op_of(p) == BogOp::Or2 && single(p) && !consumed[p as usize];
                if p_and && q_and {
                    let [a, b2, _] = bog.node(p).fanins;
                    let [c, d, _] = bog.node(q).fanins;
                    Some((CellFunc::Aoi22, vec![a, b2, c, d], vec![x, p, q]))
                } else if p_and {
                    let [a, b2, _] = bog.node(p).fanins;
                    Some((CellFunc::Aoi21, vec![a, b2, q], vec![x, p]))
                } else if q_and {
                    let [a, b2, _] = bog.node(q).fanins;
                    Some((CellFunc::Aoi21, vec![a, b2, p], vec![x, q]))
                } else if p_or {
                    let [a, b2, _] = bog.node(p).fanins;
                    Some((CellFunc::Nor3, vec![a, b2, q], vec![x, p]))
                } else {
                    Some((CellFunc::Nor2, vec![p, q], vec![x]))
                }
            }
            BogOp::Xor2 => {
                let [p, q, _] = bog.node(x).fanins;
                Some((CellFunc::Xnor2, vec![p, q], vec![x]))
            }
            _ => None,
        };
        if let Some((func, pins, interior)) = choice {
            for &i in &interior {
                consumed[i as usize] = true;
            }
            pattern[id as usize] = Some(Pattern::Fused {
                func,
                pins,
                interior,
            });
        } else {
            pattern[id as usize] = Some(Pattern::Plain);
        }
    }

    // Pass 2: emit cells in topological order.
    let mut cells: Vec<MappedCell> = Vec::with_capacity(bog.len());
    let mut regs: Vec<MappedReg> = Vec::with_capacity(bog.regs().len());
    let mut inputs = Vec::new();
    let mut map: Vec<CellId> = vec![NO_CELL; bog.len()];

    let new_cell = |cells: &mut Vec<MappedCell>,
                    func: Option<CellFunc>,
                    tie: Option<bool>,
                    fanins: Vec<CellId>,
                    rng: &mut StdRng| {
        let derate = if func.is_some() {
            rng.gen_range(0.97..1.03)
        } else {
            1.0
        };
        let id = cells.len() as CellId;
        cells.push(MappedCell {
            func,
            drive: Drive::X1,
            fanins,
            x: 0.0,
            y: 0.0,
            derate,
            tie,
        });
        id
    };

    // DFF cells first (registers keep BOG identity).
    for (ri, _r) in bog.regs().iter().enumerate() {
        let q = new_cell(&mut cells, Some(CellFunc::Dff), None, Vec::new(), rng);
        regs.push(MappedReg {
            q,
            d: NO_CELL,
            bog_reg: ri as u32,
        });
        // map entry set below when the Q node is visited.
    }
    for (ri, r) in bog.regs().iter().enumerate() {
        map[r.q as usize] = regs[ri].q;
    }

    for id in bog.topo_order() {
        if map[id as usize] != NO_CELL || consumed[id as usize] {
            continue;
        }
        let node = bog.node(id);
        let cell = match node.op {
            BogOp::Dff => continue, // pre-created
            BogOp::Input => {
                let name = bog
                    .inputs()
                    .iter()
                    .find(|(_, n)| *n == id)
                    .map(|(s, _)| s.clone())
                    .unwrap_or_else(|| format!("in{id}"));
                let c = new_cell(&mut cells, None, None, Vec::new(), rng);
                inputs.push((name, c));
                c
            }
            BogOp::Const0 => new_cell(&mut cells, None, Some(false), Vec::new(), rng),
            BogOp::Const1 => new_cell(&mut cells, None, Some(true), Vec::new(), rng),
            BogOp::Not => match pattern[id as usize].take() {
                Some(Pattern::Fused {
                    func,
                    pins,
                    interior,
                }) => {
                    let fanins: Vec<CellId> = pins.iter().map(|&p| map[p as usize]).collect();
                    debug_assert!(fanins.iter().all(|&f| f != NO_CELL));
                    let c = new_cell(&mut cells, Some(func), None, fanins, rng);
                    for i in interior {
                        map[i as usize] = c;
                    }
                    c
                }
                _ => {
                    let a = map[bog.fanins(id)[0] as usize];
                    new_cell(&mut cells, Some(CellFunc::Inv), None, vec![a], rng)
                }
            },
            BogOp::And2 | BogOp::Or2 | BogOp::Xor2 | BogOp::Mux2 => {
                let func = match node.op {
                    BogOp::And2 => CellFunc::And2,
                    BogOp::Or2 => CellFunc::Or2,
                    BogOp::Xor2 => CellFunc::Xor2,
                    BogOp::Mux2 => CellFunc::Mux2,
                    _ => unreachable!(),
                };
                let fanins: Vec<CellId> = bog.fanins(id).iter().map(|&f| map[f as usize]).collect();
                debug_assert!(fanins.iter().all(|&f| f != NO_CELL));
                new_cell(&mut cells, Some(func), None, fanins, rng)
            }
        };
        map[id as usize] = cell;
    }

    for (ri, r) in bog.regs().iter().enumerate() {
        regs[ri].d = map[r.d as usize];
        debug_assert!(regs[ri].d != NO_CELL);
    }
    let outputs: Vec<(String, CellId)> = bog
        .outputs()
        .iter()
        .map(|(n, d)| (n.clone(), map[*d as usize]))
        .collect();

    let mut netlist = MappedNetlist {
        name: bog.name.clone(),
        cells,
        regs,
        inputs,
        outputs,
    };
    buffer_heavy_nets(&mut netlist, rng);
    initial_sizing(&mut netlist, lib);
    netlist
}

/// Inserts buffer trees on nets whose cell-pin sink count exceeds
/// [`FANOUT_LIMIT`] (register D and primary-output sinks keep their direct
/// connection — they are endpoints; their load is handled by sizing).
fn buffer_heavy_nets(n: &mut MappedNetlist, rng: &mut StdRng) {
    loop {
        let fo = n.fanout_pins();
        let mut changed = false;
        for id in 0..n.cells.len() as CellId {
            let pins = fo[id as usize].clone();
            if pins.is_empty() || pins.len() <= FANOUT_LIMIT {
                continue;
            }
            changed = true;
            for chunk in pins.chunks(FANOUT_LIMIT.max(2) - 1) {
                let derate = rng.gen_range(0.97..1.03);
                let buf = n.cells.len() as CellId;
                n.cells.push(MappedCell {
                    func: Some(CellFunc::Buf),
                    drive: Drive::X1,
                    fanins: vec![id],
                    x: 0.0,
                    y: 0.0,
                    derate,
                    tie: None,
                });
                for &(sink, pin) in chunk {
                    n.cells[sink as usize].fanins[pin] = buf;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Upgrades drive strength where static pin-cap load is heavy.
fn initial_sizing(n: &mut MappedNetlist, lib: &Library) {
    let loads = crate::timing::static_loads(n, lib);
    for (id, c) in n.cells.iter_mut().enumerate() {
        if let Some(func) = c.func {
            let max_load = lib.cell(func, Drive::X1).max_load;
            if loads[id] > max_load {
                c.drive = Drive::X4;
            } else if loads[id] > max_load * 0.55 {
                c.drive = Drive::X2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::balance;
    use rand::SeedableRng;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn map_src(src: &str) -> MappedNetlist {
        let bog = balance(&blast(&compile(src, "m").unwrap()));
        let lib = Library::nangate45_like();
        tech_map(&bog, &lib, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn nand_fusion_happens() {
        let n = map_src(
            "module m(input a, input b, output y);
               assign y = ~(a & b);
             endmodule",
        );
        let hist = n.cell_histogram();
        assert!(
            hist.iter().any(|(f, c)| *f == CellFunc::Nand2 && *c == 1),
            "{hist:?}"
        );
        assert!(!hist.iter().any(|(f, _)| *f == CellFunc::Inv), "{hist:?}");
    }

    #[test]
    fn aoi_fusion_happens() {
        let n = map_src(
            "module m(input a, input b, input c, output y);
               assign y = ~((a & b) | c);
             endmodule",
        );
        let hist = n.cell_histogram();
        assert!(
            hist.iter().any(|(f, c)| *f == CellFunc::Aoi21 && *c >= 1),
            "{hist:?}"
        );
    }

    #[test]
    fn shared_interior_not_fused() {
        // t = a&b feeds two consumers: cannot be folded into a NAND.
        let n = map_src(
            "module m(input a, input b, input c, output y1, output y2);
               wire t;
               assign t = a & b;
               assign y1 = ~t;
               assign y2 = t & c;
             endmodule",
        );
        let hist = n.cell_histogram();
        assert!(hist.iter().any(|(f, _)| *f == CellFunc::And2), "{hist:?}");
        assert!(hist.iter().any(|(f, _)| *f == CellFunc::Inv), "{hist:?}");
    }

    #[test]
    fn registers_preserve_bog_identity() {
        let n = map_src(
            "module m(input clk, input [3:0] d, output [3:0] q);
               reg [3:0] r;
               always @(posedge clk) r <= d;
               assign q = r;
             endmodule",
        );
        assert_eq!(n.regs.len(), 4);
        for (i, r) in n.regs.iter().enumerate() {
            assert_eq!(r.bog_reg as usize, i);
            assert!(r.d != NO_CELL);
        }
    }

    #[test]
    fn heavy_fanout_gets_buffered() {
        // One AND gate feeding 16 XORs exceeds the fanout limit.
        let mut uses = String::new();
        for i in 0..16 {
            uses.push_str(&format!("assign o{i} = t ^ x[{i}];\n"));
        }
        let mut ports = String::new();
        for i in 0..16 {
            ports.push_str(&format!(", output o{i}"));
        }
        let src = format!(
            "module m(input a, input b, input [15:0] x {ports});
               wire t;
               assign t = a & b;
               {uses}
             endmodule"
        );
        let n = map_src(&src);
        let hist = n.cell_histogram();
        assert!(
            hist.iter().any(|(f, c)| *f == CellFunc::Buf && *c >= 2),
            "{hist:?}"
        );
        // No net exceeds the limit afterwards.
        let fo = n.fanout_pins();
        for (id, pins) in fo.iter().enumerate() {
            assert!(
                pins.len() <= FANOUT_LIMIT,
                "cell {id} drives {}",
                pins.len()
            );
        }
    }
}
