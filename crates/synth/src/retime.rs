//! Backward register retiming.
//!
//! `retime` in the paper's flow repositions registers across combinational
//! gates to balance path delays, guided by the top-5% predicted-critical
//! endpoints (§3.5.2). We implement *backward* moves: a register whose D is
//! driven by a single-fanout combinational cell is moved to that cell's
//! inputs; the cell then computes on the register outputs. The input-side
//! path shortens by the cell delay, the output side lengthens by it — a win
//! exactly when the endpoint dominates the WNS, which is how callers select
//! candidates.

use crate::netlist::{CellId, MappedCell, MappedNetlist, MappedReg};
use crate::timing::PhysicalSta;
use rtlt_liberty::{CellFunc, Drive};

/// Report of applied retiming moves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetimeReport {
    /// Registers moved backward.
    pub moves: usize,
    /// Registers added (fanin count minus one per move).
    pub regs_added: usize,
}

/// Attempts a backward retime of each listed register endpoint (indices
/// into `netlist.regs`), best candidates first. A move is applied when:
///
/// * the D driver is combinational with this register as its only sink, and
/// * the endpoint's slack is negative and worse than the slack margin left
///   on the register's output side (so moving the gate across helps).
pub fn retime_backward(
    n: &mut MappedNetlist,
    sta: &PhysicalSta,
    endpoints: &[usize],
) -> RetimeReport {
    let mut report = RetimeReport::default();
    let mut order: Vec<usize> = endpoints.to_vec();
    order.sort_by(|&a, &b| {
        sta.reg_slack[a]
            .partial_cmp(&sta.reg_slack[b])
            .expect("finite")
    });

    for ep in order {
        if sta.reg_slack[ep] >= 0.0 {
            continue;
        }
        // Connectivity is recomputed per move: earlier moves rewire nets.
        let fanout = n.fanout_pins();
        let regd = n.reg_d_sinks();
        let mut out_drivers: std::collections::HashSet<CellId> = std::collections::HashSet::new();
        for (_, d) in &n.outputs {
            out_drivers.insert(*d);
        }
        let reg = n.regs[ep];
        let d = reg.d;
        let dc = n.cells[d as usize].clone();
        if !dc.is_comb() || dc.fanins.is_empty() {
            continue;
        }
        // Legality: the driver cell must feed only this register.
        let feeds_others = !fanout[d as usize].is_empty()
            || regd[d as usize].len() != 1
            || out_drivers.contains(&d);
        if feeds_others {
            continue;
        }
        // Q must not be a primary output (moving it would change interface
        // timing).
        if out_drivers.contains(&reg.q) {
            continue;
        }

        // Move: new registers on each distinct fanin of the driver cell.
        let mut new_qs: Vec<CellId> = Vec::with_capacity(dc.fanins.len());
        let mut seen: Vec<(CellId, CellId)> = Vec::new();
        for &f in &dc.fanins {
            if let Some(&(_, q)) = seen.iter().find(|(src, _)| *src == f) {
                new_qs.push(q);
                continue;
            }
            let q = n.cells.len() as CellId;
            n.cells.push(MappedCell {
                func: Some(CellFunc::Dff),
                drive: Drive::X1,
                fanins: Vec::new(),
                x: n.cells[f as usize].x,
                y: n.cells[f as usize].y,
                derate: 1.0,
                tie: None,
            });
            n.regs.push(MappedReg {
                q,
                d: f,
                bog_reg: u32::MAX,
            });
            seen.push((f, q));
            new_qs.push(q);
            report.regs_added += 1;
        }
        report.regs_added = report.regs_added.saturating_sub(1); // net growth per move is k-1

        // The driver cell now computes on the new register outputs…
        n.cells[d as usize].fanins = new_qs;
        // …and everything that read the old Q reads the driver cell output.
        let q_old = reg.q;
        for (sink, pin) in &fanout[q_old as usize] {
            n.cells[*sink as usize].fanins[*pin] = d;
        }
        for &ri in &regd[q_old as usize] {
            n.regs[ri].d = d;
        }
        for o in n.outputs.iter_mut() {
            if o.1 == q_old {
                o.1 = d;
            }
        }
        // The moved register keeps its cell but becomes disconnected; mark
        // it gone by pointing its D at itself and dropping the reg entry.
        n.regs[ep].d = n.regs[ep].q;
        n.regs[ep].bog_reg = u32::MAX;
        n.cells[q_old as usize].func = None; // now a dead boundary cell
        report.moves += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::tech_map;
    use crate::opt::balance;
    use crate::place::place;
    use crate::timing::time_netlist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtlt_bog::blast;
    use rtlt_liberty::Library;
    use rtlt_verilog::compile;

    /// Long input cone into r, trivial output side — ideal backward retime.
    fn setup() -> (MappedNetlist, Library) {
        let bog = balance(&blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output q);
                   reg r;
                   reg [15:0] pipe;
                   always @(posedge clk) begin
                     r <= ^(a * b);
                     pipe <= {pipe[14:0], r};
                   end
                   assign q = pipe[15];
                 endmodule",
                "m",
            )
            .unwrap(),
        ));
        let lib = Library::nangate45_like();
        let mut rng = StdRng::seed_from_u64(5);
        let mut n = tech_map(&bog, &lib, &mut rng);
        place(&mut n, &mut rng);
        (n, lib)
    }

    #[test]
    fn backward_retime_improves_worst_endpoint() {
        let (mut n, lib) = setup();
        let base = time_netlist(&n, &lib, 1.0);
        let clock = base.max_arrival() * 0.7;
        let sta = time_netlist(&n, &lib, clock);
        let worst = sta
            .reg_slack
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let before_at = sta.reg_at[worst];
        let report = retime_backward(&mut n, &sta, &[worst]);
        if report.moves == 0 {
            // Legality can reject (shared driver); that's a valid outcome,
            // but for this crafted design the move should apply.
            panic!("expected a legal retime move");
        }
        let after = time_netlist(&n, &lib, clock);
        assert!(
            after.max_arrival() < before_at + 1e-9,
            "retime should cut the worst arrival ({before_at} -> {})",
            after.max_arrival()
        );
    }

    #[test]
    fn retime_preserves_netlist_acyclicity() {
        let (mut n, lib) = setup();
        let sta = time_netlist(&n, &lib, 0.2);
        let eps: Vec<usize> = (0..n.regs.len()).collect();
        let _ = retime_backward(&mut n, &sta, &eps);
        let _ = n.topo_order(); // panics on cycle
    }

    #[test]
    fn positive_slack_endpoints_not_touched() {
        let (mut n, lib) = setup();
        let sta = time_netlist(&n, &lib, 50.0); // everything meets timing
        let eps: Vec<usize> = (0..n.regs.len()).collect();
        let report = retime_backward(&mut n, &sta, &eps);
        assert_eq!(report.moves, 0);
    }
}
