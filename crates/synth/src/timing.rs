//! Slew/load-aware STA over the mapped netlist, with Elmore wire delays
//! from placement geometry. This is the simulator's stand-in for sign-off
//! timing (PrimeTime in the paper's flow) — endpoint arrival times computed
//! here are the ground-truth labels for RTL-Timer's models.

use crate::netlist::{CellId, MappedNetlist};
use rtlt_liberty::{Cell, CellFunc, Drive, Library};

/// Per-net/per-cell timing quantities.
#[derive(Debug, Clone)]
pub struct NetTiming {
    /// Arrival time at each cell output (ns).
    pub arrival: Vec<f64>,
    /// Output slew at each cell (ns).
    pub slew: Vec<f64>,
    /// Load seen by each cell output (cap units, wire included).
    pub load: Vec<f64>,
}

/// Completed physical STA.
#[derive(Debug, Clone)]
pub struct PhysicalSta {
    /// Per-cell quantities.
    pub nets: NetTiming,
    /// Arrival at each register D pin (ns), ordered as `netlist.regs`.
    pub reg_at: Vec<f64>,
    /// Slack at each register endpoint (ns).
    pub reg_slack: Vec<f64>,
    /// Arrival at each primary output (ns).
    pub output_at: Vec<f64>,
    /// Slack at each primary output (ns).
    pub output_slack: Vec<f64>,
    /// Worst negative slack (0 when timing is met).
    pub wns: f64,
    /// Total negative slack (≤ 0).
    pub tns: f64,
    /// Clock period used (ns).
    pub clock: f64,
}

impl PhysicalSta {
    /// Worst arrival over all endpoints.
    pub fn max_arrival(&self) -> f64 {
        self.reg_at
            .iter()
            .chain(self.output_at.iter())
            .fold(0.0f64, |m, &v| if v.is_finite() { m.max(v) } else { m })
    }
}

fn dist(n: &MappedNetlist, a: CellId, b: CellId) -> f64 {
    let ca = &n.cells[a as usize];
    let cb = &n.cells[b as usize];
    (ca.x - cb.x).abs() + (ca.y - cb.y).abs()
}

fn lib_cell<'l>(lib: &'l Library, n: &MappedNetlist, id: CellId) -> Option<&'l Cell> {
    n.cells[id as usize]
        .func
        .map(|f| lib.cell(f, n.cells[id as usize].drive))
}

/// Static (pre-placement) loads: sink pin caps only. Used by initial sizing.
pub fn static_loads(n: &MappedNetlist, lib: &Library) -> Vec<f64> {
    let mut load = vec![0.0f64; n.cells.len()];
    for (id, c) in n.cells.iter().enumerate() {
        if let Some(cell) = lib_cell(lib, n, id as CellId) {
            for (pin, &f) in c.fanins.iter().enumerate() {
                load[f as usize] += cell.pin_cap(pin);
            }
        }
    }
    let dff = lib.cell(CellFunc::Dff, Drive::X1);
    for r in &n.regs {
        load[r.d as usize] += dff.pin_cap(0);
    }
    for (_, o) in &n.outputs {
        load[*o as usize] += 2.0;
    }
    load
}

/// Runs STA over a mapped netlist at the given clock period.
pub fn time_netlist(n: &MappedNetlist, lib: &Library, clock: f64) -> PhysicalSta {
    let ncells = n.cells.len();
    let wire = lib.wire;
    let input_slew = lib.default_input_slew;

    // Loads: sink pin caps plus wire capacitance per connection.
    let mut load = vec![0.0f64; ncells];
    for (id, c) in n.cells.iter().enumerate() {
        if let Some(cell) = lib_cell(lib, n, id as CellId) {
            for (pin, &f) in c.fanins.iter().enumerate() {
                load[f as usize] += cell.pin_cap(pin) + wire.cap(dist(n, f, id as CellId));
            }
        }
    }
    let dff = lib.cell(CellFunc::Dff, Drive::X1);
    for r in &n.regs {
        load[r.d as usize] += dff.pin_cap(0) + wire.cap(dist(n, r.d, r.q));
    }
    for (_, o) in &n.outputs {
        load[*o as usize] += 2.0;
    }

    let mut arrival = vec![0.0f64; ncells];
    let mut slew = vec![input_slew; ncells];

    for id in n.topo_order() {
        let c = &n.cells[id as usize];
        match c.func {
            None => {
                // Boundary: primary input (AT 0) or tie cell (AT 0).
                arrival[id as usize] = 0.0;
                slew[id as usize] = input_slew;
            }
            Some(CellFunc::Dff) => {
                let seq = dff.seq.expect("dff sequential");
                arrival[id as usize] = seq.clk_to_q;
                slew[id as usize] = dff.out_slew(input_slew, load[id as usize]);
            }
            Some(func) => {
                let cell = lib.cell(func, c.drive);
                let mut at = 0.0f64;
                let mut in_slew = input_slew;
                for &f in &c.fanins {
                    let wd = wire.delay(dist(n, f, id as CellId), cell.pin_cap(0));
                    let cand = arrival[f as usize] + wd;
                    if cand >= at {
                        at = cand;
                        in_slew = slew[f as usize] + 0.3 * wd;
                    }
                }
                let d = cell.delay(in_slew, load[id as usize]) * c.derate;
                arrival[id as usize] = at + d;
                slew[id as usize] = cell.out_slew(in_slew, load[id as usize]);
            }
        }
    }

    let setup = dff.seq.expect("dff sequential").setup;
    let mut reg_at = Vec::with_capacity(n.regs.len());
    let mut reg_slack = Vec::with_capacity(n.regs.len());
    let mut wns = 0.0f64;
    let mut tns = 0.0f64;
    for r in &n.regs {
        let wd = wire.delay(dist(n, r.d, r.q), dff.pin_cap(0));
        let at = arrival[r.d as usize] + wd;
        let slack = clock - setup - at;
        reg_at.push(at);
        reg_slack.push(slack);
        if slack < 0.0 {
            tns += slack;
            wns = wns.min(slack);
        }
    }
    let mut output_at = Vec::with_capacity(n.outputs.len());
    let mut output_slack = Vec::with_capacity(n.outputs.len());
    for (_, o) in &n.outputs {
        let at = arrival[*o as usize];
        let slack = clock - at;
        output_at.push(at);
        output_slack.push(slack);
        if slack < 0.0 {
            tns += slack;
            wns = wns.min(slack);
        }
    }

    PhysicalSta {
        nets: NetTiming {
            arrival,
            slew,
            load,
        },
        reg_at,
        reg_slack,
        output_at,
        output_slack,
        wns,
        tns,
        clock,
    }
}

/// Traces the critical path into register `reg_index`, returning cells from
/// launch to capture-side driver.
pub fn critical_cells(n: &MappedNetlist, sta: &PhysicalSta, reg_index: usize) -> Vec<CellId> {
    let mut path = Vec::new();
    let mut cur = n.regs[reg_index].d;
    path.push(cur);
    loop {
        let c = &n.cells[cur as usize];
        if !c.is_comb() || c.fanins.is_empty() {
            break;
        }
        let worst = c
            .fanins
            .iter()
            .copied()
            .max_by(|&x, &y| {
                sta.nets.arrival[x as usize]
                    .partial_cmp(&sta.nets.arrival[y as usize])
                    .expect("finite")
            })
            .expect("nonempty");
        path.push(worst);
        cur = worst;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::tech_map;
    use crate::opt::balance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn netlist_for(src: &str) -> (MappedNetlist, Library) {
        let bog = balance(&blast(&compile(src, "m").unwrap()));
        let lib = Library::nangate45_like();
        let n = tech_map(&bog, &lib, &mut StdRng::seed_from_u64(9));
        (n, lib)
    }

    #[test]
    fn arrival_monotone_along_paths() {
        let (n, lib) = netlist_for(
            "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
               reg [7:0] r;
               always @(posedge clk) r <= (a + b) ^ r;
               assign q = r;
             endmodule",
        );
        let sta = time_netlist(&n, &lib, 1.0);
        for (id, c) in n.cells.iter().enumerate() {
            for &f in &c.fanins {
                assert!(
                    sta.nets.arrival[id] >= sta.nets.arrival[f as usize] - 1e-9,
                    "cell {id} earlier than fanin {f}"
                );
            }
        }
    }

    #[test]
    fn slacks_sum_to_tns() {
        let (n, lib) = netlist_for(
            "module m(input clk, input [15:0] a, output [15:0] q);
               reg [15:0] r;
               always @(posedge clk) r <= r * a;
               assign q = r;
             endmodule",
        );
        let sta = time_netlist(&n, &lib, 0.2);
        let manual: f64 = sta
            .reg_slack
            .iter()
            .chain(sta.output_slack.iter())
            .filter(|&&s| s < 0.0)
            .sum();
        assert!((manual - sta.tns).abs() < 1e-9);
        assert!(sta.wns <= 0.0);
    }

    #[test]
    fn critical_path_is_connected_and_ends_at_reg_d() {
        let (n, lib) = netlist_for(
            "module m(input clk, input [7:0] a, output [7:0] q);
               reg [7:0] r;
               always @(posedge clk) r <= r + a;
               assign q = r;
             endmodule",
        );
        let sta = time_netlist(&n, &lib, 1.0);
        // Worst register endpoint.
        let (worst, _) = sta
            .reg_slack
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let path = critical_cells(&n, &sta, worst);
        assert_eq!(*path.last().unwrap(), n.regs[worst].d);
        for w in path.windows(2) {
            assert!(n.cells[w[1] as usize].fanins.contains(&w[0]));
        }
    }

    #[test]
    fn placement_distance_adds_delay() {
        let (mut n, lib) = netlist_for(
            "module m(input a, input b, output y);
               assign y = a & b;
             endmodule",
        );
        let before = time_netlist(&n, &lib, 1.0).output_at[0];
        // Move the AND far from its fanins.
        for c in n.cells.iter_mut() {
            if c.is_comb() {
                c.x = 400.0;
                c.y = 400.0;
            }
        }
        let after = time_netlist(&n, &lib, 1.0).output_at[0];
        assert!(after > before, "{after} <= {before}");
    }
}
