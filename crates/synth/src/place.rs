//! Placement: recursive bisection over the connectivity graph.
//!
//! Connected cells are kept together by splitting a breadth-first ordering
//! of the region's cell set, alternating cut direction. The result is a
//! legal-enough 2-D spread whose Manhattan distances drive the wire-delay
//! model — the placement-induced component of the ground-truth labels that
//! an RTL-stage predictor cannot directly see.

use crate::netlist::{CellId, MappedNetlist};
use rand::rngs::StdRng;
use rand::Rng;

/// Site pitch between neighbouring cells (distance units).
const PITCH: f64 = 2.0;

/// Places all cells; mutates coordinates in-place.
pub fn place(n: &mut MappedNetlist, rng: &mut StdRng) {
    let ncells = n.cells.len();
    if ncells == 0 {
        return;
    }
    // Undirected adjacency.
    let mut adj: Vec<Vec<CellId>> = vec![Vec::new(); ncells];
    for (id, c) in n.cells.iter().enumerate() {
        for &f in &c.fanins {
            adj[id].push(f);
            adj[f as usize].push(id as CellId);
        }
    }
    for r in &n.regs {
        adj[r.d as usize].push(r.q);
        adj[r.q as usize].push(r.d);
    }

    let side = ((ncells as f64).sqrt().ceil() * PITCH).max(PITCH);
    let all: Vec<CellId> = (0..ncells as CellId).collect();
    let mut region_stack = vec![(all, 0.0f64, 0.0f64, side, side, false)];
    while let Some((cells, x0, y0, x1, y1, vertical)) = region_stack.pop() {
        if cells.len() <= 4 {
            // Final placement inside a leaf region with jitter.
            for (i, &c) in cells.iter().enumerate() {
                let fx = (i % 2) as f64;
                let fy = (i / 2) as f64;
                n.cells[c as usize].x =
                    x0 + (x1 - x0) * (0.25 + 0.5 * fx) + rng.gen_range(-0.3..0.3);
                n.cells[c as usize].y =
                    y0 + (y1 - y0) * (0.25 + 0.5 * fy) + rng.gen_range(-0.3..0.3);
            }
            continue;
        }
        // BFS ordering from a random seed keeps connected clusters adjacent.
        let order = bfs_order(&cells, &adj, rng);
        let half = order.len() / 2;
        let (a, b) = order.split_at(half);
        if vertical {
            let ym = (y0 + y1) / 2.0;
            region_stack.push((a.to_vec(), x0, y0, x1, ym, false));
            region_stack.push((b.to_vec(), x0, ym, x1, y1, false));
        } else {
            let xm = (x0 + x1) / 2.0;
            region_stack.push((a.to_vec(), x0, y0, xm, y1, true));
            region_stack.push((b.to_vec(), xm, y0, x1, y1, true));
        }
    }
}

fn bfs_order(cells: &[CellId], adj: &[Vec<CellId>], rng: &mut StdRng) -> Vec<CellId> {
    let inset: std::collections::HashSet<CellId> = cells.iter().copied().collect();
    let mut seen: std::collections::HashSet<CellId> = std::collections::HashSet::new();
    let mut order = Vec::with_capacity(cells.len());
    let mut queue = std::collections::VecDeque::new();
    let start = cells[rng.gen_range(0..cells.len())];
    queue.push_back(start);
    seen.insert(start);
    loop {
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &nb in &adj[c as usize] {
                if inset.contains(&nb) && seen.insert(nb) {
                    queue.push_back(nb);
                }
            }
        }
        if order.len() == cells.len() {
            break;
        }
        // Disconnected component: pick the next unseen cell.
        let next = cells
            .iter()
            .copied()
            .find(|c| !seen.contains(c))
            .expect("unseen remains");
        seen.insert(next);
        queue.push_back(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::tech_map;
    use crate::opt::balance;
    use rand::SeedableRng;
    use rtlt_bog::blast;
    use rtlt_liberty::Library;
    use rtlt_verilog::compile;

    fn placed(seed: u64) -> MappedNetlist {
        let bog = balance(&blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] r;
                   always @(posedge clk) r <= (a + b) ^ (r << 1);
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        ));
        let lib = Library::nangate45_like();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = tech_map(&bog, &lib, &mut rng);
        place(&mut n, &mut rng);
        n
    }

    #[test]
    fn all_cells_receive_positions_in_die() {
        let n = placed(3);
        let side = (n.cells.len() as f64).sqrt().ceil() * PITCH;
        for c in &n.cells {
            assert!(c.x > -1.0 && c.x < side + 1.0, "x {}", c.x);
            assert!(c.y > -1.0 && c.y < side + 1.0, "y {}", c.y);
        }
        // Not all on one spot.
        let xs: Vec<f64> = n.cells.iter().map(|c| c.x).collect();
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > PITCH);
    }

    #[test]
    fn placement_is_seed_deterministic() {
        let a = placed(7);
        let b = placed(7);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.x, cb.x);
            assert_eq!(ca.y, cb.y);
        }
        let c = placed(8);
        let diff = a.cells.iter().zip(&c.cells).any(|(x, y)| x.x != y.x);
        assert!(diff, "different seeds should move cells");
    }

    #[test]
    fn connected_cells_are_near_on_average() {
        let n = placed(11);
        let mut conn_d = 0.0;
        let mut conn_c = 0usize;
        for c in n.cells.iter() {
            for &f in &c.fanins {
                let fc = &n.cells[f as usize];
                conn_d += (c.x - fc.x).abs() + (c.y - fc.y).abs();
                conn_c += 1;
            }
        }
        let avg_conn = conn_d / conn_c as f64;
        // Random pair distance baseline.
        let mut rng = StdRng::seed_from_u64(1);
        let mut rand_d = 0.0;
        for _ in 0..conn_c {
            let a = &n.cells[rng.gen_range(0..n.cells.len())];
            let b = &n.cells[rng.gen_range(0..n.cells.len())];
            rand_d += (a.x - b.x).abs() + (a.y - b.y).abs();
        }
        let avg_rand = rand_d / conn_c as f64;
        assert!(
            avg_conn < avg_rand,
            "connected avg {avg_conn:.2} should beat random {avg_rand:.2}"
        );
    }
}
