//! Elaboration: AST → flat word-level netlist.
//!
//! Hierarchy is flattened (instance nets get `inst.` prefixes), parameters
//! are resolved, `always` blocks are symbolically executed into next-state /
//! combinational expressions, and every net reference is resolved through a
//! placeholder-and-patch scheme that tolerates any declaration order and
//! detects combinational cycles / inferred latches.

use crate::ast::*;
use crate::error::VerilogError;
use crate::rtlir::{mask, Netlist, ScopeInfo, WBinaryOp, WId, WKind, WNode, WReg, WUnaryOp};
use std::collections::{HashMap, HashSet};

/// Elaborates module `top` of a parsed file into a word-level netlist.
///
/// # Errors
///
/// Reports missing modules/ports, width or constant-expression errors,
/// multiply-driven or undriven nets, inferred latches and combinational
/// cycles.
pub fn elaborate(file: &SourceFile, top: &str) -> Result<Netlist, VerilogError> {
    let top_mod = file
        .module(top)
        .ok_or_else(|| VerilogError::general(format!("top module '{top}' not found")))?;
    let mut b = Builder {
        nodes: Vec::new(),
        regs: Vec::new(),
        net_target: HashMap::new(),
        file,
        scopes: vec![ScopeInfo {
            module: top.to_owned(),
            parent: None,
        }],
        cur_scope: 0,
        node_scope: Vec::new(),
    };

    // Create Input nodes for the top module's input ports.
    let dirs = port_dirs(top_mod);
    let mut input_bindings = HashMap::new();
    let mut input_ids = Vec::new();
    for pname in &top_mod.port_order {
        match dirs.get(pname.as_str()) {
            Some(Dir::Input) => {
                // Width determined inside elab_module; create with the
                // declared width by pre-evaluating the decl range.
                let w = port_width(top_mod, pname)?;
                let id = b.new_node(
                    WKind::Input {
                        name: pname.clone(),
                    },
                    w,
                );
                input_bindings.insert(pname.clone(), id);
                input_ids.push(id);
            }
            Some(Dir::Output) => {}
            None => {
                return Err(VerilogError::at(
                    top_mod.line,
                    format!("port '{pname}' has no direction declaration"),
                ));
            }
        }
    }

    let out_map = elab_module(
        &mut b,
        top_mod,
        String::new(),
        &HashMap::new(),
        &input_bindings,
    )?;
    let mut outputs = Vec::new();
    for pname in &top_mod.port_order {
        if dirs.get(pname.as_str()) == Some(&Dir::Output) {
            let id = *out_map.get(pname).expect("output present in module map");
            outputs.push((pname.clone(), id));
        }
    }

    let mut netlist = Netlist {
        name: top.to_owned(),
        nodes: b.nodes,
        inputs: input_ids,
        outputs,
        regs: b.regs,
        scopes: b.scopes,
        node_scope: b.node_scope,
    };
    resolve(&mut netlist, &b.net_target)?;
    Ok(netlist)
}

fn port_dirs(m: &Module) -> HashMap<&str, Dir> {
    let mut dirs = HashMap::new();
    for item in &m.items {
        if let Item::PortDecl { dir, names, .. } = item {
            for n in names {
                dirs.insert(n.as_str(), *dir);
            }
        }
    }
    dirs
}

/// Width of a top-level port, resolved against default parameter values.
fn port_width(m: &Module, port: &str) -> Result<u32, VerilogError> {
    let mut params = HashMap::new();
    for item in &m.items {
        match item {
            Item::ParamDecl {
                name, value, line, ..
            } => {
                let v = const_eval(value, &params, *line)?;
                params.insert(name.clone(), v);
            }
            Item::PortDecl {
                range, names, line, ..
            } if names.iter().any(|n| n == port) => {
                return range_width(range.as_ref(), &params, *line);
            }
            _ => {}
        }
    }
    Ok(1)
}

fn range_width(
    range: Option<&(Expr, Expr)>,
    params: &HashMap<String, u64>,
    line: u32,
) -> Result<u32, VerilogError> {
    match range {
        None => Ok(1),
        Some((msb_e, lsb_e)) => {
            let msb = const_eval(msb_e, params, line)?;
            let lsb = const_eval(lsb_e, params, line)?;
            if lsb != 0 {
                return Err(VerilogError::at(line, "only [msb:0] ranges are supported"));
            }
            if msb >= 64 {
                return Err(VerilogError::at(
                    line,
                    format!("width {} exceeds 64-bit subset limit", msb + 1),
                ));
            }
            Ok(msb as u32 + 1)
        }
    }
}

// ---------------------------------------------------------------------------
// Builder: global netlist under construction.
// ---------------------------------------------------------------------------

struct Builder<'a> {
    nodes: Vec<WNode>,
    regs: Vec<WReg>,
    /// Net placeholder node → resolved driver.
    net_target: HashMap<WId, WId>,
    file: &'a SourceFile,
    /// Module-instance scopes created so far (0 = top).
    scopes: Vec<ScopeInfo>,
    /// Scope the builder is currently elaborating inside.
    cur_scope: u32,
    /// Creating scope per node.
    node_scope: Vec<u32>,
}

impl Builder<'_> {
    fn new_node(&mut self, kind: WKind, width: u32) -> WId {
        debug_assert!((1..=64).contains(&width));
        let id = self.nodes.len() as WId;
        self.nodes.push(WNode { kind, width });
        self.node_scope.push(self.cur_scope);
        id
    }

    fn new_scope(&mut self, module: String) -> u32 {
        let id = self.scopes.len() as u32;
        self.scopes.push(ScopeInfo {
            module,
            parent: Some(self.cur_scope),
        });
        id
    }

    fn width(&self, id: WId) -> u32 {
        self.nodes[id as usize].width
    }

    fn constant(&mut self, value: u64, width: u32) -> WId {
        self.new_node(
            WKind::Const {
                value: value & mask(width),
            },
            width,
        )
    }

    /// Zero-extends or truncates `id` to `width`.
    fn coerce(&mut self, id: WId, width: u32) -> WId {
        let w = self.width(id);
        if w == width {
            id
        } else if w > width {
            self.new_node(WKind::Slice { a: id, lsb: 0 }, width)
        } else {
            let pad = self.constant(0, width - w);
            self.new_node(
                WKind::Concat {
                    parts: vec![id, pad],
                },
                width,
            )
        }
    }

    /// Reduction-OR truthiness.
    #[allow(clippy::wrong_self_convention)] // builds a node; must be `&mut self`
    fn to_bool(&mut self, id: WId) -> WId {
        if self.width(id) == 1 {
            id
        } else {
            self.new_node(
                WKind::Unary {
                    op: WUnaryOp::RedOr,
                    a: id,
                },
                1,
            )
        }
    }

    /// `{old[w-1:lsb+fw], val, old[lsb-1:0]}` — field update.
    fn splice(
        &mut self,
        old: WId,
        lsb: u32,
        fw: u32,
        val: WId,
        line: u32,
    ) -> Result<WId, VerilogError> {
        let w = self.width(old);
        if lsb + fw > w {
            return Err(VerilogError::at(
                line,
                format!("part select [{}:{}] exceeds width {w}", lsb + fw - 1, lsb),
            ));
        }
        let val = self.coerce(val, fw);
        let mut parts = Vec::new();
        if lsb > 0 {
            let lo = self.new_node(WKind::Slice { a: old, lsb: 0 }, lsb);
            parts.push(lo);
        }
        parts.push(val);
        if lsb + fw < w {
            let hi = self.new_node(
                WKind::Slice {
                    a: old,
                    lsb: lsb + fw,
                },
                w - lsb - fw,
            );
            parts.push(hi);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(self.new_node(WKind::Concat { parts }, w))
        }
    }
}

// ---------------------------------------------------------------------------
// Constant expression evaluation.
// ---------------------------------------------------------------------------

fn const_eval(e: &Expr, params: &HashMap<String, u64>, line: u32) -> Result<u64, VerilogError> {
    let v = match e {
        Expr::Number { value, zmask, .. } => {
            if *zmask != 0 {
                return Err(VerilogError::at(
                    line,
                    "z/? digits only allowed in casez labels",
                ));
            }
            *value
        }
        Expr::Ident(n) => *params
            .get(n)
            .ok_or_else(|| VerilogError::at(line, format!("'{n}' is not a constant parameter")))?,
        Expr::Unary { op, operand } => {
            let a = const_eval(operand, params, line)?;
            match op {
                UnaryOp::Neg => a.wrapping_neg(),
                UnaryOp::BitNot => !a,
                UnaryOp::LogNot => (a == 0) as u64,
                _ => {
                    return Err(VerilogError::at(
                        line,
                        "reduction not allowed in constant expression",
                    ))
                }
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, params, line)?;
            let b = const_eval(rhs, params, line)?;
            match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::And => a & b,
                BinaryOp::Or => a | b,
                BinaryOp::Xor => a ^ b,
                BinaryOp::Xnor => !(a ^ b),
                BinaryOp::Shl => {
                    if b >= 64 {
                        0
                    } else {
                        a << b
                    }
                }
                BinaryOp::Shr => {
                    if b >= 64 {
                        0
                    } else {
                        a >> b
                    }
                }
                BinaryOp::Eq => (a == b) as u64,
                BinaryOp::Ne => (a != b) as u64,
                BinaryOp::Lt => (a < b) as u64,
                BinaryOp::Le => (a <= b) as u64,
                BinaryOp::Gt => (a > b) as u64,
                BinaryOp::Ge => (a >= b) as u64,
                BinaryOp::LogAnd => (a != 0 && b != 0) as u64,
                BinaryOp::LogOr => (a != 0 || b != 0) as u64,
            }
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            if const_eval(cond, params, line)? != 0 {
                const_eval(then_e, params, line)?
            } else {
                const_eval(else_e, params, line)?
            }
        }
        _ => return Err(VerilogError::at(line, "expression is not constant")),
    };
    Ok(v)
}

// ---------------------------------------------------------------------------
// Per-module elaboration.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Decl {
    width: u32,
    dir: Option<Dir>,
    line: u32,
    /// Net placeholder node.
    node: WId,
}

struct Scope {
    prefix: String,
    params: HashMap<String, u64>,
    decls: HashMap<String, Decl>,
}

impl Scope {
    fn full(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{}{}", self.prefix, name)
        }
    }

    fn decl(&self, name: &str, line: u32) -> Result<&Decl, VerilogError> {
        self.decls
            .get(name)
            .ok_or_else(|| VerilogError::at(line, format!("undeclared signal '{name}'")))
    }
}

/// Elaborates one module instance; returns output port name → node id.
fn elab_module(
    b: &mut Builder,
    module: &Module,
    prefix: String,
    param_overrides: &HashMap<String, u64>,
    input_bindings: &HashMap<String, WId>,
) -> Result<HashMap<String, WId>, VerilogError> {
    // Phase A: parameters.
    let mut params = HashMap::new();
    for item in &module.items {
        if let Item::ParamDecl {
            name,
            value,
            local,
            line,
        } = item
        {
            let v = if !*local && param_overrides.contains_key(name) {
                param_overrides[name]
            } else {
                const_eval(value, &params, *line)?
            };
            params.insert(name.clone(), v);
        }
    }
    for k in param_overrides.keys() {
        if !params.contains_key(k) {
            return Err(VerilogError::at(
                module.line,
                format!("module {} has no parameter '{k}'", module.name),
            ));
        }
    }

    // Phase B: declarations (merging port + net declarations of same name).
    #[derive(Default)]
    struct RawDecl {
        width: Option<u32>,
        is_reg: bool,
        dir: Option<Dir>,
        line: u32,
    }
    let mut raw: HashMap<String, RawDecl> = HashMap::new();
    for item in &module.items {
        let (names, range, is_reg, dir, line) = match item {
            Item::NetDecl {
                kind,
                range,
                names,
                line,
            } => (names, range.as_ref(), *kind == NetKind::Reg, None, *line),
            Item::PortDecl {
                dir,
                reg,
                range,
                names,
                line,
            } => (names, range.as_ref(), *reg, Some(*dir), *line),
            _ => continue,
        };
        let w = range
            .map(|r| range_width(Some(r), &params, line))
            .transpose()?;
        for n in names {
            let e = raw.entry(n.clone()).or_default();
            if let Some(w) = w {
                if let Some(prev) = e.width {
                    if prev != w {
                        return Err(VerilogError::at(
                            line,
                            format!("conflicting widths for '{n}'"),
                        ));
                    }
                }
                e.width = Some(w);
            }
            e.is_reg |= is_reg;
            if dir.is_some() {
                e.dir = dir;
            }
            if e.line == 0 {
                e.line = line;
            }
        }
    }

    // Phase C: classify always-block targets.
    let mut nb_targets: HashSet<String> = HashSet::new(); // sequential
    let mut blk_targets: HashSet<String> = HashSet::new(); // combinational
    for item in &module.items {
        if let Item::Always(a) = item {
            let seq = matches!(a.sens, Sensitivity::Edges(_));
            let mut blocking = HashSet::new();
            let mut nonblocking = HashSet::new();
            collect_targets(&a.body, &mut blocking, &mut nonblocking);
            if seq {
                nb_targets.extend(nonblocking);
                blk_targets.extend(blocking);
            } else {
                if !nonblocking.is_empty() {
                    return Err(VerilogError::at(
                        a.line,
                        "non-blocking assignment in combinational always block",
                    ));
                }
                blk_targets.extend(blocking);
            }
        }
    }
    if let Some(both) = nb_targets.intersection(&blk_targets).next() {
        return Err(VerilogError::at(
            module.line,
            format!("'{both}' assigned both blocking and non-blocking"),
        ));
    }

    // Phase D: create net placeholders, bind inputs, create registers.
    let mut scope = Scope {
        prefix,
        params,
        decls: HashMap::new(),
    };
    let raw_names: Vec<String> = {
        let mut v: Vec<_> = raw.keys().cloned().collect();
        v.sort();
        v
    };
    for name in &raw_names {
        let rd = &raw[name];
        let width = rd.width.unwrap_or(1);
        let full = scope.full(name);
        let node = b.new_node(WKind::Net { name: full }, width);
        scope.decls.insert(
            name.clone(),
            Decl {
                width,
                dir: rd.dir,
                line: rd.line,
                node,
            },
        );
    }
    for name in &raw_names {
        let rd = &raw[name];
        let d = scope.decls[name].clone();
        match rd.dir {
            Some(Dir::Input) => {
                let bound = *input_bindings.get(name).ok_or_else(|| {
                    VerilogError::at(d.line, format!("input port '{name}' unconnected"))
                })?;
                let bound = b.coerce(bound, d.width);
                b.net_target.insert(d.node, bound);
                if nb_targets.contains(name) || blk_targets.contains(name) {
                    return Err(VerilogError::at(
                        d.line,
                        format!("assignment to input port '{name}'"),
                    ));
                }
            }
            _ => {
                if nb_targets.contains(name) {
                    if !rd.is_reg {
                        return Err(VerilogError::at(
                            d.line,
                            format!("sequential target '{name}' must be declared reg"),
                        ));
                    }
                    let reg_idx = b.regs.len() as u32;
                    let q = b.new_node(WKind::RegQ { reg: reg_idx }, d.width);
                    b.regs.push(WReg {
                        name: scope.full(name),
                        width: d.width,
                        q,
                        next: WId::MAX,
                        init: 0,
                        decl_line: d.line,
                        top_level: scope.prefix.is_empty(),
                    });
                    b.net_target.insert(d.node, q);
                }
            }
        }
    }

    // Phase E: drivers.
    let mut drivers: HashMap<String, Vec<(u32, u32, WId, u32)>> = HashMap::new(); // name -> (lsb, width, id, line)

    let items = &module.items;
    for item in items {
        match item {
            Item::Assign { lhs, rhs, line } => {
                let rid = lower_expr(b, &scope, None, rhs, *line)?;
                assign_lvalue(b, &scope, lhs, rid, &mut drivers, *line)?;
            }
            Item::Always(a) => {
                let seq = matches!(a.sens, Sensitivity::Edges(_));
                let mut env = Env::default();
                exec_stmt(b, &scope, &a.body, &mut env, seq, a.line)?;
                if seq {
                    for (name, id) in env.nb {
                        let d = scope.decl(&name, a.line)?;
                        let q = b.net_target[&d.node];
                        let WKind::RegQ { reg } = b.nodes[q as usize].kind else {
                            return Err(VerilogError::at(
                                a.line,
                                format!("'{name}' is not a register"),
                            ));
                        };
                        let id = b.coerce(id, d.width);
                        b.regs[reg as usize].next = id;
                    }
                    for (name, id) in env.read {
                        // Blocking temps inside a sequential block drive
                        // combinational nets.
                        let d = scope.decl(&name, a.line)?.clone();
                        let id = b.coerce(id, d.width);
                        drivers
                            .entry(name)
                            .or_default()
                            .push((0, d.width, id, a.line));
                    }
                } else {
                    for (name, id) in env.read {
                        let d = scope.decl(&name, a.line)?.clone();
                        let id = b.coerce(id, d.width);
                        drivers
                            .entry(name)
                            .or_default()
                            .push((0, d.width, id, a.line));
                    }
                }
            }
            Item::Instance {
                module: child_name,
                name: inst,
                params: povr,
                conns,
                line,
            } => {
                let child = b.file.module(child_name).ok_or_else(|| {
                    VerilogError::at(*line, format!("unknown module '{child_name}'"))
                })?;
                let mut overrides = HashMap::new();
                for (pn, pe) in povr {
                    overrides.insert(pn.clone(), const_eval(pe, &scope.params, *line)?);
                }
                let cdirs = port_dirs(child);
                // Pair up connections: (port name, Option<Expr>).
                let pairs: Vec<(String, Option<Expr>)> = match conns {
                    Connections::Named(n) => n.clone(),
                    Connections::Ordered(exprs) => {
                        if exprs.len() > child.port_order.len() {
                            return Err(VerilogError::at(*line, "too many positional connections"));
                        }
                        child
                            .port_order
                            .iter()
                            .zip(exprs.iter())
                            .map(|(p, e)| (p.clone(), Some(e.clone())))
                            .collect()
                    }
                };
                let mut child_inputs = HashMap::new();
                let mut out_conns: Vec<(String, &Expr)> = Vec::new();
                for (pname, pexpr) in &pairs {
                    match cdirs.get(pname.as_str()) {
                        Some(Dir::Input) => {
                            if let Some(e) = pexpr {
                                let id = lower_expr(b, &scope, None, e, *line)?;
                                child_inputs.insert(pname.clone(), id);
                            }
                        }
                        Some(Dir::Output) => {
                            if let Some(e) = pexpr {
                                out_conns.push((pname.clone(), e));
                            }
                        }
                        None => {
                            return Err(VerilogError::at(
                                *line,
                                format!("module {child_name} has no port '{pname}'"),
                            ));
                        }
                    }
                }
                // Unconnected inputs default to 0.
                for (pname, dir) in &cdirs {
                    if *dir == Dir::Input && !child_inputs.contains_key(*pname) {
                        let z = b.constant(0, 1);
                        child_inputs.insert((*pname).to_owned(), z);
                    }
                }
                let child_prefix = format!("{}{}.", scope.prefix, inst);
                let saved_scope = b.cur_scope;
                b.cur_scope = b.new_scope(child_name.clone());
                let out_map = elab_module(b, child, child_prefix, &overrides, &child_inputs)?;
                b.cur_scope = saved_scope;
                for (pname, e) in out_conns {
                    let src = *out_map
                        .get(&pname)
                        .ok_or_else(|| VerilogError::at(*line, format!("no output '{pname}'")))?;
                    let lv = expr_as_lvalue(e, *line)?;
                    assign_lvalue(b, &scope, &lv, src, &mut drivers, *line)?;
                }
            }
            _ => {}
        }
    }

    // Phase E2: combine slice drivers per net.
    for (name, mut slices) in drivers {
        let d = scope.decl(&name, module.line)?.clone();
        if d.dir == Some(Dir::Input) {
            return Err(VerilogError::at(
                d.line,
                format!("assignment to input port '{name}'"),
            ));
        }
        slices.sort_by_key(|s| s.0);
        let combined = if slices.len() == 1 && slices[0].0 == 0 && slices[0].1 == d.width {
            slices[0].2
        } else {
            let mut parts = Vec::new();
            let mut at = 0u32;
            for (lsb, w, id, line) in &slices {
                if *lsb < at {
                    return Err(VerilogError::at(
                        *line,
                        format!("net '{name}' multiply driven at bit {lsb}"),
                    ));
                }
                if *lsb > at {
                    return Err(VerilogError::at(
                        *line,
                        format!("net '{name}' bits [{}:{}] undriven", lsb - 1, at),
                    ));
                }
                parts.push(*id);
                at += w;
            }
            if at != d.width {
                return Err(VerilogError::at(
                    d.line,
                    format!("net '{name}' bits [{}:{}] undriven", d.width - 1, at),
                ));
            }
            if parts.len() == 1 {
                parts[0]
            } else {
                b.new_node(WKind::Concat { parts }, d.width)
            }
        };
        if b.net_target.contains_key(&d.node) {
            return Err(VerilogError::at(
                d.line,
                format!("net '{name}' multiply driven"),
            ));
        }
        b.net_target.insert(d.node, combined);
    }

    // Output map.
    let mut out = HashMap::new();
    for (name, d) in &scope.decls {
        if d.dir == Some(Dir::Output) {
            out.insert(name.clone(), d.node);
        }
    }
    Ok(out)
}

fn expr_as_lvalue(e: &Expr, line: u32) -> Result<LValue, VerilogError> {
    match e {
        Expr::Ident(n) => Ok(LValue::Ident(n.clone())),
        Expr::Bit { base, index } => Ok(LValue::Bit {
            name: base.clone(),
            index: (**index).clone(),
        }),
        Expr::Part { base, msb, lsb } => Ok(LValue::Part {
            name: base.clone(),
            msb: (**msb).clone(),
            lsb: (**lsb).clone(),
        }),
        Expr::Concat(parts) => {
            let mut lvs = Vec::new();
            for p in parts {
                lvs.push(expr_as_lvalue(p, line)?);
            }
            Ok(LValue::Concat(lvs))
        }
        _ => Err(VerilogError::at(
            line,
            "instance output must connect to a net/bit/part/concat",
        )),
    }
}

fn lvalue_width(scope: &Scope, lv: &LValue, line: u32) -> Result<u32, VerilogError> {
    match lv {
        LValue::Ident(n) => Ok(scope.decl(n, line)?.width),
        LValue::Bit { .. } => Ok(1),
        LValue::Part { msb, lsb, .. } => {
            let m = const_eval(msb, &scope.params, line)?;
            let l = const_eval(lsb, &scope.params, line)?;
            if m < l {
                return Err(VerilogError::at(line, "reversed part select"));
            }
            Ok((m - l + 1) as u32)
        }
        LValue::Concat(parts) => {
            let mut w = 0;
            for p in parts {
                w += lvalue_width(scope, p, line)?;
            }
            Ok(w)
        }
    }
}

/// Records continuous-assignment style drivers for an lvalue.
fn assign_lvalue(
    b: &mut Builder,
    scope: &Scope,
    lv: &LValue,
    rhs: WId,
    drivers: &mut HashMap<String, Vec<(u32, u32, WId, u32)>>,
    line: u32,
) -> Result<(), VerilogError> {
    match lv {
        LValue::Ident(n) => {
            let w = scope.decl(n, line)?.width;
            let id = b.coerce(rhs, w);
            drivers.entry(n.clone()).or_default().push((0, w, id, line));
        }
        LValue::Bit { name, index } => {
            let idx = const_eval(index, &scope.params, line)? as u32;
            let id = b.coerce(rhs, 1);
            drivers
                .entry(name.clone())
                .or_default()
                .push((idx, 1, id, line));
        }
        LValue::Part { name, msb, lsb } => {
            let m = const_eval(msb, &scope.params, line)? as u32;
            let l = const_eval(lsb, &scope.params, line)? as u32;
            if m < l {
                return Err(VerilogError::at(line, "reversed part select"));
            }
            let w = m - l + 1;
            let id = b.coerce(rhs, w);
            drivers
                .entry(name.clone())
                .or_default()
                .push((l, w, id, line));
        }
        LValue::Concat(parts) => {
            // MSB-first parts; distribute rhs slices from the top down.
            let total = lvalue_width(scope, lv, line)?;
            let rhs = b.coerce(rhs, total);
            let mut hi = total;
            for p in parts {
                let w = lvalue_width(scope, p, line)?;
                let lsb = hi - w;
                let part_val = if lsb == 0 && w == total {
                    rhs
                } else {
                    b.new_node(WKind::Slice { a: rhs, lsb }, w)
                };
                assign_lvalue(b, scope, p, part_val, drivers, line)?;
                hi = lsb;
            }
        }
    }
    Ok(())
}

fn collect_targets(stmt: &Stmt, blocking: &mut HashSet<String>, nonblocking: &mut HashSet<String>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_targets(s, blocking, nonblocking);
            }
        }
        Stmt::If {
            then_br, else_br, ..
        } => {
            collect_targets(then_br, blocking, nonblocking);
            if let Some(e) = else_br {
                collect_targets(e, blocking, nonblocking);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for a in arms {
                collect_targets(&a.body, blocking, nonblocking);
            }
            if let Some(d) = default {
                collect_targets(d, blocking, nonblocking);
            }
        }
        Stmt::Assign {
            lhs,
            blocking: is_blocking,
            ..
        } => {
            let set = if *is_blocking { blocking } else { nonblocking };
            collect_lvalue_names(lhs, set);
        }
        Stmt::Empty => {}
    }
}

fn collect_lvalue_names(lv: &LValue, set: &mut HashSet<String>) {
    match lv {
        LValue::Ident(n) => {
            set.insert(n.clone());
        }
        LValue::Bit { name, .. } | LValue::Part { name, .. } => {
            set.insert(name.clone());
        }
        LValue::Concat(parts) => {
            for p in parts {
                collect_lvalue_names(p, set);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic execution of always blocks.
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct Env {
    /// Values visible to reads (blocking assignments update this).
    read: HashMap<String, WId>,
    /// Scheduled non-blocking updates.
    nb: HashMap<String, WId>,
}

#[allow(clippy::only_used_in_recursion)] // `seq` is threaded to nested blocks
fn exec_stmt(
    b: &mut Builder,
    scope: &Scope,
    stmt: &Stmt,
    env: &mut Env,
    seq: bool,
    line: u32,
) -> Result<(), VerilogError> {
    match stmt {
        Stmt::Empty => Ok(()),
        Stmt::Block(stmts) => {
            for s in stmts {
                exec_stmt(b, scope, s, env, seq, line)?;
            }
            Ok(())
        }
        Stmt::Assign {
            lhs,
            rhs,
            blocking,
            line,
        } => {
            let rid = lower_expr(b, scope, Some(&env.read), rhs, *line)?;
            let map_is_nb = !*blocking;
            exec_write(b, scope, lhs, rid, env, map_is_nb, *line)
        }
        Stmt::If {
            cond,
            then_br,
            else_br,
        } => {
            let cid = lower_expr(b, scope, Some(&env.read), cond, line)?;
            let cid = b.to_bool(cid);
            let mut then_env = env.clone();
            exec_stmt(b, scope, then_br, &mut then_env, seq, line)?;
            let mut else_env = env.clone();
            if let Some(e) = else_br {
                exec_stmt(b, scope, e, &mut else_env, seq, line)?;
            }
            *env = merge_env(b, scope, cid, &then_env, &else_env, line)?;
            Ok(())
        }
        Stmt::Case {
            wildcard,
            subject,
            arms,
            default,
        } => {
            let sid = lower_expr(b, scope, Some(&env.read), subject, line)?;
            let sw = b.width(sid);
            // Evaluate arm bodies on clones of the incoming env.
            let mut acc = env.clone();
            if let Some(d) = default {
                exec_stmt(b, scope, d, &mut acc, seq, line)?;
            }
            for arm in arms.iter().rev() {
                let mut cond: Option<WId> = None;
                for label in &arm.labels {
                    let c = case_label_match(b, scope, env, sid, sw, label, *wildcard, line)?;
                    cond = Some(match cond {
                        None => c,
                        Some(prev) => b.new_node(
                            WKind::Binary {
                                op: WBinaryOp::Or,
                                a: prev,
                                b: c,
                            },
                            1,
                        ),
                    });
                }
                let cond = cond.ok_or_else(|| VerilogError::at(line, "case arm without labels"))?;
                let mut arm_env = env.clone();
                exec_stmt(b, scope, &arm.body, &mut arm_env, seq, line)?;
                acc = merge_env(b, scope, cond, &arm_env, &acc, line)?;
            }
            *env = acc;
            Ok(())
        }
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the full case-arm lowering context
fn case_label_match(
    b: &mut Builder,
    scope: &Scope,
    env: &Env,
    sid: WId,
    sw: u32,
    label: &Expr,
    wildcard: bool,
    line: u32,
) -> Result<WId, VerilogError> {
    if wildcard {
        if let Expr::Number { value, zmask, .. } = label {
            let keep = mask(sw) & !zmask;
            let masked = if keep == mask(sw) {
                sid
            } else {
                let m = b.constant(keep, sw);
                b.new_node(
                    WKind::Binary {
                        op: WBinaryOp::And,
                        a: sid,
                        b: m,
                    },
                    sw,
                )
            };
            let want = b.constant(value & keep, sw);
            return Ok(b.new_node(
                WKind::Binary {
                    op: WBinaryOp::Eq,
                    a: masked,
                    b: want,
                },
                1,
            ));
        }
    }
    let lid = lower_expr(b, scope, Some(&env.read), label, line)?;
    let lid = b.coerce(lid, sw);
    Ok(b.new_node(
        WKind::Binary {
            op: WBinaryOp::Eq,
            a: sid,
            b: lid,
        },
        1,
    ))
}

/// Current value of `name` for splicing: pending write, else the net itself
/// (register hold / combinational self-reference, the latter caught later as
/// a latch-inference cycle).
fn pending_value(
    _b: &Builder,
    scope: &Scope,
    map: &HashMap<String, WId>,
    name: &str,
    line: u32,
) -> Result<WId, VerilogError> {
    if let Some(&v) = map.get(name) {
        return Ok(v);
    }
    Ok(scope.decl(name, line)?.node)
}

fn exec_write(
    b: &mut Builder,
    scope: &Scope,
    lv: &LValue,
    val: WId,
    env: &mut Env,
    nb: bool,
    line: u32,
) -> Result<(), VerilogError> {
    match lv {
        LValue::Ident(n) => {
            let w = scope.decl(n, line)?.width;
            let v = b.coerce(val, w);
            if nb {
                env.nb.insert(n.clone(), v);
            } else {
                env.read.insert(n.clone(), v);
            }
            Ok(())
        }
        LValue::Bit { name, index } => {
            let idx = const_eval(index, &scope.params, line);
            let map = if nb { &env.nb } else { &env.read };
            let old = pending_value(b, scope, map, name, line)?;
            let neww = match idx {
                Ok(i) => b.splice(old, i as u32, 1, val, line)?,
                Err(_) => {
                    // Dynamic bit write: old with bit replaced via shift/mask.
                    let w = b.width(old);
                    let iid = lower_expr(b, scope, Some(&env.read), index, line)?;
                    let one = b.constant(1, w);
                    let iid_w = b.coerce(iid, w.max(6));
                    let bitm = b.new_node(
                        WKind::Binary {
                            op: WBinaryOp::Shl,
                            a: one,
                            b: iid_w,
                        },
                        w,
                    );
                    let notm = b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::Not,
                            a: bitm,
                        },
                        w,
                    );
                    let cleared = b.new_node(
                        WKind::Binary {
                            op: WBinaryOp::And,
                            a: old,
                            b: notm,
                        },
                        w,
                    );
                    let v1 = b.coerce(val, w);
                    let shifted = b.new_node(
                        WKind::Binary {
                            op: WBinaryOp::Shl,
                            a: v1,
                            b: iid_w,
                        },
                        w,
                    );
                    b.new_node(
                        WKind::Binary {
                            op: WBinaryOp::Or,
                            a: cleared,
                            b: shifted,
                        },
                        w,
                    )
                }
            };
            if nb {
                env.nb.insert(name.clone(), neww);
            } else {
                env.read.insert(name.clone(), neww);
            }
            Ok(())
        }
        LValue::Part { name, msb, lsb } => {
            let m = const_eval(msb, &scope.params, line)? as u32;
            let l = const_eval(lsb, &scope.params, line)? as u32;
            if m < l {
                return Err(VerilogError::at(line, "reversed part select"));
            }
            let map = if nb { &env.nb } else { &env.read };
            let old = pending_value(b, scope, map, name, line)?;
            let neww = b.splice(old, l, m - l + 1, val, line)?;
            if nb {
                env.nb.insert(name.clone(), neww);
            } else {
                env.read.insert(name.clone(), neww);
            }
            Ok(())
        }
        LValue::Concat(parts) => {
            let total = lvalue_width(scope, lv, line)?;
            let val = b.coerce(val, total);
            let mut hi = total;
            for p in parts {
                let w = lvalue_width(scope, p, line)?;
                let lsb = hi - w;
                let pv = if lsb == 0 && w == total {
                    val
                } else {
                    b.new_node(WKind::Slice { a: val, lsb }, w)
                };
                exec_write(b, scope, p, pv, env, nb, line)?;
                hi = lsb;
            }
            Ok(())
        }
    }
}

fn merge_env(
    b: &mut Builder,
    scope: &Scope,
    cond: WId,
    then_env: &Env,
    else_env: &Env,
    line: u32,
) -> Result<Env, VerilogError> {
    let mut out = Env::default();
    out.read = merge_map(b, scope, cond, &then_env.read, &else_env.read, line)?;
    out.nb = merge_map(b, scope, cond, &then_env.nb, &else_env.nb, line)?;
    Ok(out)
}

fn merge_map(
    b: &mut Builder,
    scope: &Scope,
    cond: WId,
    t: &HashMap<String, WId>,
    f: &HashMap<String, WId>,
    line: u32,
) -> Result<HashMap<String, WId>, VerilogError> {
    let mut keys: Vec<&String> = t.keys().chain(f.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut out = HashMap::new();
    for k in keys {
        let tv = match t.get(k) {
            Some(&v) => v,
            None => scope.decl(k, line)?.node,
        };
        let fv = match f.get(k) {
            Some(&v) => v,
            None => scope.decl(k, line)?.node,
        };
        if tv == fv {
            out.insert(k.clone(), tv);
            continue;
        }
        let w = b.width(tv).max(b.width(fv));
        let tvc = b.coerce(tv, w);
        let fvc = b.coerce(fv, w);
        out.insert(
            k.clone(),
            b.new_node(
                WKind::Mux {
                    cond,
                    t: tvc,
                    f: fvc,
                },
                w,
            ),
        );
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Expression lowering.
// ---------------------------------------------------------------------------

fn lower_expr(
    b: &mut Builder,
    scope: &Scope,
    env: Option<&HashMap<String, WId>>,
    e: &Expr,
    line: u32,
) -> Result<WId, VerilogError> {
    let id = match e {
        Expr::Number {
            width,
            value,
            zmask,
        } => {
            if *zmask != 0 {
                return Err(VerilogError::at(
                    line,
                    "z/? digits only allowed in casez labels",
                ));
            }
            let w = width.unwrap_or_else(|| if *value > u32::MAX as u64 { 64 } else { 32 });
            b.constant(*value, w)
        }
        Expr::Ident(n) => {
            if let Some(&v) = scope.params.get(n) {
                let w = if v > u32::MAX as u64 { 64 } else { 32 };
                b.constant(v, w)
            } else if let Some(v) = env.and_then(|m| m.get(n)) {
                *v
            } else {
                scope.decl(n, line)?.node
            }
        }
        Expr::Unary { op, operand } => {
            let a = lower_expr(b, scope, env, operand, line)?;
            let aw = b.width(a);
            match op {
                UnaryOp::BitNot => b.new_node(
                    WKind::Unary {
                        op: WUnaryOp::Not,
                        a,
                    },
                    aw,
                ),
                UnaryOp::Neg => b.new_node(
                    WKind::Unary {
                        op: WUnaryOp::Neg,
                        a,
                    },
                    aw,
                ),
                UnaryOp::LogNot => {
                    let t = b.to_bool(a);
                    b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::Not,
                            a: t,
                        },
                        1,
                    )
                }
                UnaryOp::RedAnd => b.new_node(
                    WKind::Unary {
                        op: WUnaryOp::RedAnd,
                        a,
                    },
                    1,
                ),
                UnaryOp::RedOr => b.new_node(
                    WKind::Unary {
                        op: WUnaryOp::RedOr,
                        a,
                    },
                    1,
                ),
                UnaryOp::RedXor => b.new_node(
                    WKind::Unary {
                        op: WUnaryOp::RedXor,
                        a,
                    },
                    1,
                ),
                UnaryOp::RedNand => {
                    let r = b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::RedAnd,
                            a,
                        },
                        1,
                    );
                    b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::Not,
                            a: r,
                        },
                        1,
                    )
                }
                UnaryOp::RedNor => {
                    let r = b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::RedOr,
                            a,
                        },
                        1,
                    );
                    b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::Not,
                            a: r,
                        },
                        1,
                    )
                }
                UnaryOp::RedXnor => {
                    let r = b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::RedXor,
                            a,
                        },
                        1,
                    );
                    b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::Not,
                            a: r,
                        },
                        1,
                    )
                }
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a0 = lower_expr(b, scope, env, lhs, line)?;
            let b0 = lower_expr(b, scope, env, rhs, line)?;
            lower_binary(b, *op, a0, b0, line)?
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            let c = lower_expr(b, scope, env, cond, line)?;
            let c = b.to_bool(c);
            let t = lower_expr(b, scope, env, then_e, line)?;
            let f = lower_expr(b, scope, env, else_e, line)?;
            let w = b.width(t).max(b.width(f));
            let t = b.coerce(t, w);
            let f = b.coerce(f, w);
            b.new_node(WKind::Mux { cond: c, t, f }, w)
        }
        Expr::Concat(parts) => {
            // AST is MSB-first; node stores LSB-first.
            let mut ids = Vec::new();
            let mut width = 0;
            for p in parts.iter().rev() {
                let id = lower_expr(b, scope, env, p, line)?;
                width += b.width(id);
                ids.push(id);
            }
            if width > 64 {
                return Err(VerilogError::at(
                    line,
                    format!("concatenation width {width} exceeds 64"),
                ));
            }
            b.new_node(WKind::Concat { parts: ids }, width)
        }
        Expr::Repeat { count, inner } => {
            let c = const_eval(count, &scope.params, line)?;
            let id = lower_expr(b, scope, env, inner, line)?;
            let w = b.width(id);
            let total = c as u32 * w;
            if c == 0 || total > 64 {
                return Err(VerilogError::at(
                    line,
                    format!("replication width {total} out of range"),
                ));
            }
            let ids = vec![id; c as usize];
            b.new_node(WKind::Concat { parts: ids }, total)
        }
        Expr::Bit { base, index } => {
            let a = lower_base(b, scope, env, base, line)?;
            let aw = b.width(a);
            match const_eval(index, &scope.params, line) {
                Ok(i) => {
                    if i as u32 >= aw {
                        return Err(VerilogError::at(
                            line,
                            format!("bit index {i} out of range for '{base}'"),
                        ));
                    }
                    b.new_node(WKind::Slice { a, lsb: i as u32 }, 1)
                }
                Err(_) => {
                    let idx = lower_expr(b, scope, env, index, line)?;
                    let idx = b.coerce(idx, aw.clamp(7, 64));
                    let sh = b.new_node(
                        WKind::Binary {
                            op: WBinaryOp::Shr,
                            a,
                            b: idx,
                        },
                        aw,
                    );
                    b.new_node(WKind::Slice { a: sh, lsb: 0 }, 1)
                }
            }
        }
        Expr::Part { base, msb, lsb } => {
            let a = lower_base(b, scope, env, base, line)?;
            let aw = b.width(a);
            let m = const_eval(msb, &scope.params, line)? as u32;
            let l = const_eval(lsb, &scope.params, line)? as u32;
            if m < l || m >= aw {
                return Err(VerilogError::at(
                    line,
                    format!("part select [{m}:{l}] invalid for '{base}' (width {aw})"),
                ));
            }
            b.new_node(WKind::Slice { a, lsb: l }, m - l + 1)
        }
    };
    Ok(id)
}

fn lower_base(
    _b: &mut Builder,
    scope: &Scope,
    env: Option<&HashMap<String, WId>>,
    base: &str,
    line: u32,
) -> Result<WId, VerilogError> {
    if let Some(v) = env.and_then(|m| m.get(base)) {
        Ok(*v)
    } else {
        Ok(scope.decl(base, line)?.node)
    }
}

fn lower_binary(
    b: &mut Builder,
    op: BinaryOp,
    a0: WId,
    b0: WId,
    line: u32,
) -> Result<WId, VerilogError> {
    let wa = b.width(a0);
    let wb = b.width(b0);
    let id = match op {
        BinaryOp::And
        | BinaryOp::Or
        | BinaryOp::Xor
        | BinaryOp::Xnor
        | BinaryOp::Add
        | BinaryOp::Sub => {
            let w = wa.max(wb);
            let a = b.coerce(a0, w);
            let bb = b.coerce(b0, w);
            let wop = match op {
                BinaryOp::And => WBinaryOp::And,
                BinaryOp::Or => WBinaryOp::Or,
                BinaryOp::Xor | BinaryOp::Xnor => WBinaryOp::Xor,
                BinaryOp::Add => WBinaryOp::Add,
                BinaryOp::Sub => WBinaryOp::Sub,
                _ => unreachable!(),
            };
            let r = b.new_node(WKind::Binary { op: wop, a, b: bb }, w);
            if op == BinaryOp::Xnor {
                b.new_node(
                    WKind::Unary {
                        op: WUnaryOp::Not,
                        a: r,
                    },
                    w,
                )
            } else {
                r
            }
        }
        BinaryOp::Mul => {
            let w = (wa + wb).min(64);
            let a = b.coerce(a0, w);
            let bb = b.coerce(b0, w);
            b.new_node(
                WKind::Binary {
                    op: WBinaryOp::Mul,
                    a,
                    b: bb,
                },
                w,
            )
        }
        BinaryOp::LogAnd | BinaryOp::LogOr => {
            let a = b.to_bool(a0);
            let bb = b.to_bool(b0);
            let wop = if op == BinaryOp::LogAnd {
                WBinaryOp::And
            } else {
                WBinaryOp::Or
            };
            b.new_node(WKind::Binary { op: wop, a, b: bb }, 1)
        }
        BinaryOp::Eq | BinaryOp::Ne => {
            let w = wa.max(wb);
            let a = b.coerce(a0, w);
            let bb = b.coerce(b0, w);
            let r = b.new_node(
                WKind::Binary {
                    op: WBinaryOp::Eq,
                    a,
                    b: bb,
                },
                1,
            );
            if op == BinaryOp::Ne {
                b.new_node(
                    WKind::Unary {
                        op: WUnaryOp::Not,
                        a: r,
                    },
                    1,
                )
            } else {
                r
            }
        }
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            let w = wa.max(wb);
            let a = b.coerce(a0, w);
            let bb = b.coerce(b0, w);
            match op {
                BinaryOp::Lt => b.new_node(
                    WKind::Binary {
                        op: WBinaryOp::Lt,
                        a,
                        b: bb,
                    },
                    1,
                ),
                BinaryOp::Gt => b.new_node(
                    WKind::Binary {
                        op: WBinaryOp::Lt,
                        a: bb,
                        b: a,
                    },
                    1,
                ),
                BinaryOp::Le => {
                    let gt = b.new_node(
                        WKind::Binary {
                            op: WBinaryOp::Lt,
                            a: bb,
                            b: a,
                        },
                        1,
                    );
                    b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::Not,
                            a: gt,
                        },
                        1,
                    )
                }
                BinaryOp::Ge => {
                    let lt = b.new_node(
                        WKind::Binary {
                            op: WBinaryOp::Lt,
                            a,
                            b: bb,
                        },
                        1,
                    );
                    b.new_node(
                        WKind::Unary {
                            op: WUnaryOp::Not,
                            a: lt,
                        },
                        1,
                    )
                }
                _ => unreachable!(),
            }
        }
        BinaryOp::Shl | BinaryOp::Shr => {
            let wop = if op == BinaryOp::Shl {
                WBinaryOp::Shl
            } else {
                WBinaryOp::Shr
            };
            let _ = line;
            b.new_node(
                WKind::Binary {
                    op: wop,
                    a: a0,
                    b: b0,
                },
                wa,
            )
        }
    };
    Ok(id)
}

// ---------------------------------------------------------------------------
// Resolution: patch Net placeholders, detect cycles.
// ---------------------------------------------------------------------------

fn resolve(netlist: &mut Netlist, net_target: &HashMap<WId, WId>) -> Result<(), VerilogError> {
    let n = netlist.nodes.len();
    // canonical[id]: id with Net chains collapsed.
    let mut canonical: Vec<Option<WId>> = vec![None; n];

    fn canon(
        id: WId,
        nodes: &[WNode],
        net_target: &HashMap<WId, WId>,
        canonical: &mut [Option<WId>],
    ) -> Result<WId, VerilogError> {
        let mut chain = Vec::new();
        let mut cur = id;
        loop {
            if let Some(c) = canonical[cur as usize] {
                for &x in &chain {
                    canonical[x as usize] = Some(c);
                }
                return Ok(c);
            }
            match &nodes[cur as usize].kind {
                WKind::Net { name } => {
                    if chain.contains(&cur) {
                        return Err(VerilogError::general(format!(
                            "combinational cycle through net '{name}'"
                        )));
                    }
                    chain.push(cur);
                    match net_target.get(&cur) {
                        Some(&t) => cur = t,
                        None => {
                            return Err(VerilogError::general(format!(
                                "net '{name}' is never driven"
                            )));
                        }
                    }
                }
                _ => {
                    for &x in &chain {
                        canonical[x as usize] = Some(cur);
                    }
                    canonical[cur as usize] = Some(cur);
                    return Ok(cur);
                }
            }
        }
    }

    // Registers must have a next-state driver before roots are walked.
    for r in &netlist.regs {
        if r.next == WId::MAX {
            return Err(VerilogError::general(format!(
                "register '{}' has no next-state driver",
                r.name
            )));
        }
    }

    // Canonicalize all fanin references reachable from the roots, checking
    // width agreement between a net and its driver.
    let roots: Vec<WId> = netlist.roots();
    let mut state = vec![0u8; n];
    let mut stack: Vec<WId> = Vec::new();

    for &root in &roots {
        let rc = canon(root, &netlist.nodes, net_target, &mut canonical)?;
        if state[rc as usize] == 0 {
            stack.push(rc);
        }
        // DFS with explicit open/done states for cycle detection.
        while let Some(&top) = stack.last() {
            match state[top as usize] {
                0 => {
                    state[top as usize] = 1;
                    // Canonicalize fanins in place.
                    let kind = netlist.nodes[top as usize].kind.clone();
                    let new_kind = match kind {
                        WKind::Unary { op, a } => WKind::Unary {
                            op,
                            a: canon(a, &netlist.nodes, net_target, &mut canonical)?,
                        },
                        WKind::Binary { op, a, b: bb } => WKind::Binary {
                            op,
                            a: canon(a, &netlist.nodes, net_target, &mut canonical)?,
                            b: canon(bb, &netlist.nodes, net_target, &mut canonical)?,
                        },
                        WKind::Mux { cond, t, f } => WKind::Mux {
                            cond: canon(cond, &netlist.nodes, net_target, &mut canonical)?,
                            t: canon(t, &netlist.nodes, net_target, &mut canonical)?,
                            f: canon(f, &netlist.nodes, net_target, &mut canonical)?,
                        },
                        WKind::Concat { parts } => {
                            let mut np = Vec::with_capacity(parts.len());
                            for p in parts {
                                np.push(canon(p, &netlist.nodes, net_target, &mut canonical)?);
                            }
                            WKind::Concat { parts: np }
                        }
                        WKind::Slice { a, lsb } => WKind::Slice {
                            a: canon(a, &netlist.nodes, net_target, &mut canonical)?,
                            lsb,
                        },
                        other => other,
                    };
                    netlist.nodes[top as usize].kind = new_kind;
                    let fis = netlist.fanins(top);
                    let mut pushed = false;
                    for f in fis {
                        match state[f as usize] {
                            0 => {
                                stack.push(f);
                                pushed = true;
                            }
                            1 => {
                                return Err(VerilogError::general(
                                    "combinational cycle detected (latch inference or feedback loop)"
                                        .to_owned(),
                                ));
                            }
                            _ => {}
                        }
                    }
                    if !pushed && netlist.fanins(top).is_empty() {
                        // leaf: fall through to completion on next visit
                    }
                }
                1 => {
                    // All children processed?
                    let fis = netlist.fanins(top);
                    if fis.iter().all(|&f| state[f as usize] == 2) {
                        state[top as usize] = 2;
                        stack.pop();
                    } else {
                        // Some child still open → it was pushed; if it is ==1
                        // and not on top, that's a cycle, caught above.
                        let next = fis.iter().find(|&&f| state[f as usize] == 0);
                        match next {
                            Some(&f) => stack.push(f),
                            None => {
                                return Err(VerilogError::general(
                                    "combinational cycle detected (latch inference or feedback loop)"
                                        .to_owned(),
                                ));
                            }
                        }
                    }
                }
                _ => {
                    stack.pop();
                }
            }
        }
    }

    // Patch register next pointers and outputs.
    for i in 0..netlist.regs.len() {
        let nx = netlist.regs[i].next;
        let c = canon(nx, &netlist.nodes, net_target, &mut canonical)?;
        let w = netlist.regs[i].width;
        if netlist.nodes[c as usize].width != w {
            return Err(VerilogError::general(format!(
                "register '{}' next-state width mismatch",
                netlist.regs[i].name
            )));
        }
        netlist.regs[i].next = c;
    }
    for i in 0..netlist.outputs.len() {
        let c = canon(
            netlist.outputs[i].1,
            &netlist.nodes,
            net_target,
            &mut canonical,
        )?;
        netlist.outputs[i].1 = c;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use crate::parser::parse;

    #[test]
    fn hierarchy_flattens_with_parameters() {
        let n = compile(
            "module add1 #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
               assign y = a + 1;
             endmodule
             module top(input clk, input [7:0] x, output [7:0] z);
               wire [7:0] t;
               add1 #(.W(8)) u0 (.a(x), .y(t));
               reg [7:0] r;
               always @(posedge clk) r <= t;
               assign z = r;
             endmodule",
            "top",
        )
        .unwrap();
        assert_eq!(n.regs().len(), 1);
        let mut sim = n.simulator();
        sim.set_input("x", 41);
        sim.step();
        sim.settle();
        assert_eq!(sim.output("z"), 42);
    }

    #[test]
    fn blocking_semantics_in_comb_block() {
        let n = compile(
            "module m(input [3:0] a, output [3:0] y);
               reg [3:0] t;
               always @(*) begin
                 t = a + 4'd1;
                 t = t + 4'd1;
               end
               assign y = t;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("a", 3);
        sim.settle();
        assert_eq!(sim.output("y"), 5);
    }

    #[test]
    fn nonblocking_reads_old_value() {
        // Classic swap: works only with correct NB semantics.
        let n = compile(
            "module m(input clk, input ld, input [3:0] av, input [3:0] bv,
                      output [3:0] ao, output [3:0] bo);
               reg [3:0] a;
               reg [3:0] b;
               always @(posedge clk)
                 if (ld) begin a <= av; b <= bv; end
                 else begin a <= b; b <= a; end
               assign ao = a;
               assign bo = b;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("ld", 1);
        sim.set_input("av", 3);
        sim.set_input("bv", 9);
        sim.step();
        sim.set_input("ld", 0);
        sim.step();
        sim.settle();
        assert_eq!(sim.output("ao"), 9);
        assert_eq!(sim.output("bo"), 3);
    }

    #[test]
    fn register_holds_when_not_assigned() {
        let n = compile(
            "module m(input clk, input en, input [3:0] d, output [3:0] q);
               reg [3:0] r;
               always @(posedge clk) if (en) r <= d;
               assign q = r;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("en", 1);
        sim.set_input("d", 7);
        sim.step();
        sim.set_input("en", 0);
        sim.set_input("d", 1);
        sim.step();
        sim.settle();
        assert_eq!(sim.output("q"), 7);
    }

    #[test]
    fn case_priority_first_match_wins() {
        let n = compile(
            "module m(input [1:0] s, output [3:0] y);
               reg [3:0] t;
               always @(*)
                 case (s)
                   2'd1: t = 4'd10;
                   2'd1: t = 4'd11;
                   default: t = 4'd0;
                 endcase
               assign y = t;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("s", 1);
        sim.settle();
        assert_eq!(sim.output("y"), 10);
    }

    #[test]
    fn casez_wildcard_matches() {
        let n = compile(
            "module m(input [3:0] s, output [1:0] y);
               reg [1:0] t;
               always @(*)
                 casez (s)
                   4'b1???: t = 2'd3;
                   4'b01??: t = 2'd2;
                   default: t = 2'd0;
                 endcase
               assign y = t;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("s", 0b1010);
        sim.settle();
        assert_eq!(sim.output("y"), 3);
        sim.set_input("s", 0b0110);
        sim.settle();
        assert_eq!(sim.output("y"), 2);
        sim.set_input("s", 0b0010);
        sim.settle();
        assert_eq!(sim.output("y"), 0);
    }

    #[test]
    fn part_select_assignment_merges() {
        let n = compile(
            "module m(input [3:0] a, input [3:0] b, output [7:0] y);
               wire [7:0] t;
               assign t[3:0] = a;
               assign t[7:4] = b;
               assign y = t;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("a", 0x5);
        sim.set_input("b", 0xA);
        sim.settle();
        assert_eq!(sim.output("y"), 0xA5);
    }

    #[test]
    fn combinational_cycle_detected() {
        let err = compile(
            "module m(output y);
               wire a;
               wire b;
               assign a = b;
               assign b = a;
               assign y = a;
             endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
    }

    #[test]
    fn latch_inference_rejected() {
        let err = compile(
            "module m(input c, input d, output y);
               reg t;
               always @(*) if (c) t = d;
               assign y = t;
             endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
    }

    #[test]
    fn undriven_net_rejected() {
        let err = compile(
            "module m(output y);
               wire a;
               assign y = a;
             endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.message.contains("never driven"), "{err}");
    }

    #[test]
    fn dynamic_bit_select_simulates() {
        let n = compile(
            "module m(input [7:0] v, input [2:0] i, output y);
               assign y = v[i];
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("v", 0b0100_0000);
        sim.set_input("i", 6);
        sim.settle();
        assert_eq!(sim.output("y"), 1);
        sim.set_input("i", 5);
        sim.settle();
        assert_eq!(sim.output("y"), 0);
    }

    #[test]
    fn concat_lvalue_in_always() {
        let n = compile(
            "module m(input clk, input [7:0] d, output [3:0] hi, output [3:0] lo);
               reg [3:0] a;
               reg [3:0] b;
               always @(posedge clk) {a, b} <= d;
               assign hi = a;
               assign lo = b;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("d", 0x9C);
        sim.step();
        sim.settle();
        assert_eq!(sim.output("hi"), 0x9);
        assert_eq!(sim.output("lo"), 0xC);
    }

    #[test]
    fn shifts_and_mul() {
        let n = compile(
            "module m(input [7:0] a, input [2:0] s, output [7:0] l, output [7:0] r, output [15:0] p);
               assign l = a << s;
               assign r = a >> s;
               assign p = a * a;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("a", 13);
        sim.set_input("s", 2);
        sim.settle();
        assert_eq!(sim.output("l"), (13 << 2) & 0xFF);
        assert_eq!(sim.output("r"), 13 >> 2);
        assert_eq!(sim.output("p"), 169);
    }

    #[test]
    fn hierarchical_reg_names_are_prefixed() {
        let n = compile(
            "module sub(input clk, input d, output q);
               reg r;
               always @(posedge clk) r <= d;
               assign q = r;
             endmodule
             module top(input clk, input d, output q);
               sub s0 (.clk(clk), .d(d), .q(q));
             endmodule",
            "top",
        )
        .unwrap();
        assert_eq!(n.regs()[0].name, "s0.r");
        assert!(!n.regs()[0].top_level);
    }

    #[test]
    fn unknown_module_reported() {
        let err = compile("module m; ghost u0 (); endmodule", "m").unwrap_err();
        assert!(err.message.contains("unknown module"), "{err}");
    }

    #[test]
    fn parse_then_elaborate_error_on_width_conflict() {
        let f = parse(
            "module m(input clk);
               wire [3:0] x;
               wire [7:0] x;
             endmodule",
        )
        .unwrap();
        assert!(crate::elaborate(&f, "m").is_err());
    }
}
