//! AST-level feature extraction.
//!
//! The ICCAD'22-style baseline ("How Good Is Your Verilog RTL Code?",
//! reimplemented in spirit — see DESIGN.md §2) predicts whole-design timing
//! from features of the *abstract syntax tree*, without any bit-level graph.
//! This module computes those features.

use crate::ast::{AlwaysBlock, BinaryOp, Expr, Item, Module, SourceFile, Stmt, UnaryOp};

/// Per-design AST feature vector.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AstFeatures {
    /// Number of module declarations.
    pub modules: usize,
    /// Number of `always` blocks.
    pub always_blocks: usize,
    /// Number of continuous assignments.
    pub assigns: usize,
    /// Number of module instantiations.
    pub instances: usize,
    /// Arithmetic operator count (`+ - *`).
    pub arith_ops: usize,
    /// Bitwise/logical operator count.
    pub logic_ops: usize,
    /// Comparison operator count.
    pub cmp_ops: usize,
    /// Shift operator count.
    pub shift_ops: usize,
    /// Multiplexing constructs (ternaries + case arms).
    pub mux_ops: usize,
    /// Reduction operator count.
    pub red_ops: usize,
    /// Concatenation / replication count.
    pub concat_ops: usize,
    /// Maximum expression depth anywhere in the design.
    pub max_expr_depth: usize,
    /// Total expression node count.
    pub expr_nodes: usize,
    /// Number of `if` statements.
    pub ifs: usize,
    /// Number of `case` statements.
    pub cases: usize,
    /// Declared signal bits (sum of declared widths where constant).
    pub decl_bits: usize,
}

impl AstFeatures {
    /// Flattens into an ML-ready vector (fixed order, documented by
    /// [`AstFeatures::FEATURE_NAMES`]).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.modules as f64,
            self.always_blocks as f64,
            self.assigns as f64,
            self.instances as f64,
            self.arith_ops as f64,
            self.logic_ops as f64,
            self.cmp_ops as f64,
            self.shift_ops as f64,
            self.mux_ops as f64,
            self.red_ops as f64,
            self.concat_ops as f64,
            self.max_expr_depth as f64,
            self.expr_nodes as f64,
            self.ifs as f64,
            self.cases as f64,
            self.decl_bits as f64,
        ]
    }

    /// Names corresponding to [`AstFeatures::to_vec`] entries.
    pub const FEATURE_NAMES: [&'static str; 16] = [
        "modules",
        "always_blocks",
        "assigns",
        "instances",
        "arith_ops",
        "logic_ops",
        "cmp_ops",
        "shift_ops",
        "mux_ops",
        "red_ops",
        "concat_ops",
        "max_expr_depth",
        "expr_nodes",
        "ifs",
        "cases",
        "decl_bits",
    ];
}

/// Extracts AST features from a whole source file.
pub fn extract(file: &SourceFile) -> AstFeatures {
    let mut f = AstFeatures {
        modules: file.modules.len(),
        ..Default::default()
    };
    for m in &file.modules {
        module_features(m, &mut f);
    }
    f
}

fn module_features(m: &Module, f: &mut AstFeatures) {
    for item in &m.items {
        match item {
            Item::Assign { rhs, .. } => {
                f.assigns += 1;
                expr_features(rhs, 1, f);
            }
            Item::Always(a) => {
                f.always_blocks += 1;
                always_features(a, f);
            }
            Item::Instance { .. } => f.instances += 1,
            Item::NetDecl { range, names, .. } | Item::PortDecl { range, names, .. } => {
                let w = match range {
                    Some((Expr::Number { value, .. }, _)) => *value as usize + 1,
                    None => 1,
                    _ => 8, // parameterized width: coarse default
                };
                f.decl_bits += w * names.len();
            }
            Item::ParamDecl { .. } => {}
        }
    }
}

fn always_features(a: &AlwaysBlock, f: &mut AstFeatures) {
    stmt_features(&a.body, f);
}

fn stmt_features(s: &Stmt, f: &mut AstFeatures) {
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                stmt_features(st, f);
            }
        }
        Stmt::If {
            cond,
            then_br,
            else_br,
        } => {
            f.ifs += 1;
            f.mux_ops += 1;
            expr_features(cond, 1, f);
            stmt_features(then_br, f);
            if let Some(e) = else_br {
                stmt_features(e, f);
            }
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            f.cases += 1;
            f.mux_ops += arms.len();
            expr_features(subject, 1, f);
            for arm in arms {
                stmt_features(&arm.body, f);
            }
            if let Some(d) = default {
                stmt_features(d, f);
            }
        }
        Stmt::Assign { rhs, .. } => expr_features(rhs, 1, f),
        Stmt::Empty => {}
    }
}

fn expr_features(e: &Expr, depth: usize, f: &mut AstFeatures) {
    f.expr_nodes += 1;
    f.max_expr_depth = f.max_expr_depth.max(depth);
    match e {
        Expr::Ident(_) | Expr::Number { .. } => {}
        Expr::Unary { op, operand } => {
            match op {
                UnaryOp::RedAnd
                | UnaryOp::RedOr
                | UnaryOp::RedXor
                | UnaryOp::RedNand
                | UnaryOp::RedNor
                | UnaryOp::RedXnor => f.red_ops += 1,
                _ => f.logic_ops += 1,
            }
            expr_features(operand, depth + 1, f);
        }
        Expr::Binary { op, lhs, rhs } => {
            match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => f.arith_ops += 1,
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => f.cmp_ops += 1,
                BinaryOp::Shl | BinaryOp::Shr => f.shift_ops += 1,
                _ => f.logic_ops += 1,
            }
            expr_features(lhs, depth + 1, f);
            expr_features(rhs, depth + 1, f);
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            f.mux_ops += 1;
            expr_features(cond, depth + 1, f);
            expr_features(then_e, depth + 1, f);
            expr_features(else_e, depth + 1, f);
        }
        Expr::Concat(parts) => {
            f.concat_ops += 1;
            for p in parts {
                expr_features(p, depth + 1, f);
            }
        }
        Expr::Repeat { inner, .. } => {
            f.concat_ops += 1;
            expr_features(inner, depth + 1, f);
        }
        Expr::Bit { index, .. } => expr_features(index, depth + 1, f),
        Expr::Part { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn counts_operators_and_structure() {
        let f = parse(
            "module m(input [7:0] a, input [7:0] b, output [7:0] y);
               reg [7:0] t;
               always @(*)
                 if (a < b) t = a + b; else t = a ^ b;
               assign y = t;
             endmodule",
        )
        .unwrap();
        let feats = extract(&f);
        assert_eq!(feats.modules, 1);
        assert_eq!(feats.always_blocks, 1);
        assert_eq!(feats.assigns, 1);
        assert_eq!(feats.ifs, 1);
        assert_eq!(feats.arith_ops, 1);
        assert_eq!(feats.cmp_ops, 1);
        assert!(feats.decl_bits >= 8 * 4);
        assert_eq!(feats.to_vec().len(), AstFeatures::FEATURE_NAMES.len());
    }

    #[test]
    fn depth_tracks_nesting() {
        let f = parse("module m(input a, output y); assign y = ((a & a) | (a ^ a)) & a; endmodule")
            .unwrap();
        let feats = extract(&f);
        assert!(feats.max_expr_depth >= 3);
    }
}
