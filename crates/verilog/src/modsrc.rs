//! Per-module source extraction and content hashing.
//!
//! The incremental re-annotation loop (paper §3.5.1) needs the prepare
//! pipeline keyed at *module* granularity: editing one module must not
//! invalidate artifacts derived only from unchanged modules. This module
//! provides the stable text-level foundation:
//!
//! * [`split_modules`] — lexer-driven extraction of each `module …
//!   endmodule` span as its own text slice (comment/string safe, unlike a
//!   regex scan),
//! * [`module_keys`] — per-module content keys
//!   `H(name, text, dep_module_keys)`, dependency-closed over the
//!   instantiation graph so a module's key transitively covers everything
//!   its elaboration can read below it,
//! * [`design_key`] — the dep-closed key of a top module: the compile-stage
//!   cache key. Editing a module *outside* the top's dependency cone leaves
//!   it unchanged,
//! * [`dependency_cone`] — the module set reachable from a top (what the
//!   compile stage is actually a function of), and
//! * [`shift_lines`] — line-number rebasing so per-module parses (cached
//!   under `H(module text)`) reassemble into a [`SourceFile`] identical to
//!   a whole-file parse.
//!
//! Parameter flow is downward (parent instantiates child with overrides),
//! so dep-closure plus the ancestor chain covers every source a node's
//! elaboration depends on; [`dependency_cone`] of the top is the union of
//! both for a whole design.

use crate::ast::{AlwaysBlock, Item, Module, SourceFile, Stmt};
use crate::error::VerilogError;
use crate::lexer::{lex, Tok};
use rtlt_store::{ContentHash, KeyBuilder};
use std::collections::{BTreeMap, BTreeSet};

/// One module's extracted source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSource {
    /// Module name.
    pub name: String,
    /// The module's text, exactly the source lines
    /// `start_line..=end_line` (newline-joined, no trailing newline).
    pub text: String,
    /// 1-based line of the `module` keyword in the original source.
    pub start_line: u32,
    /// 1-based line of the matching `endmodule`.
    pub end_line: u32,
}

/// All modules of a source file, in declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleSources {
    /// Extracted modules.
    pub modules: Vec<ModuleSource>,
}

impl ModuleSources {
    /// Finds a module by name.
    pub fn get(&self, name: &str) -> Option<&ModuleSource> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// Splits a source file into per-module text slices.
///
/// Spans are line-granular: each module must start on its own line (no two
/// modules sharing a line), which every formatter and all generated sources
/// satisfy. Violations are reported as errors so callers can fall back to
/// whole-file handling.
///
/// # Errors
///
/// Lexer errors, `module` without a name, unterminated/nested module
/// spans, duplicate module names, or two modules sharing a source line.
pub fn split_modules(source: &str) -> Result<ModuleSources, VerilogError> {
    let toks = lex(source)?;
    let mut spans: Vec<(String, u32, u32)> = Vec::new();
    let mut open: Option<(String, u32)> = None;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Module => {
                if let Some((name, _)) = &open {
                    return Err(VerilogError::at(
                        toks[i].line,
                        format!("nested module inside '{name}'"),
                    ));
                }
                let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
                    return Err(VerilogError::at(toks[i].line, "module without a name"));
                };
                open = Some((name.clone(), toks[i].line));
            }
            Tok::Endmodule => {
                let Some((name, start)) = open.take() else {
                    return Err(VerilogError::at(toks[i].line, "endmodule without module"));
                };
                spans.push((name, start, toks[i].line));
            }
            _ => {}
        }
        i += 1;
    }
    if let Some((name, line)) = open {
        return Err(VerilogError::at(
            line,
            format!("module '{name}' not closed"),
        ));
    }

    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::with_capacity(spans.len());
    let mut seen = BTreeSet::new();
    let mut prev_end = 0u32;
    for (name, start, end) in spans {
        if !seen.insert(name.clone()) {
            return Err(VerilogError::at(
                start,
                format!("duplicate module '{name}'"),
            ));
        }
        if start <= prev_end {
            return Err(VerilogError::at(
                start,
                format!("module '{name}' shares a line with the previous module"),
            ));
        }
        prev_end = end;
        let text = lines[start as usize - 1..end as usize]
            .join("\n")
            .to_owned();
        out.push(ModuleSource {
            name,
            text,
            start_line: start,
            end_line: end,
        });
    }
    Ok(ModuleSources { modules: out })
}

/// Content key of one module's text alone (`H(name, text)`, no dependency
/// closure). This is the per-module identity the cone-shard keys and the
/// incremental dirty-module diff use: a cone's provenance set already
/// contains every contributing module explicitly (descendants via their own
/// nodes, ancestors via the scope chain), so closing each key over the
/// instantiation graph would be redundant there — and would wrongly couple
/// sibling modules through their common parent.
pub fn text_key(name: &str, text: &str) -> ContentHash {
    KeyBuilder::new("rtlt.module.text")
        .str(name)
        .str(text)
        .finish()
}

/// Direct dependencies (instantiated module names) of a parsed module,
/// sorted and deduplicated.
pub fn direct_deps(module: &Module) -> Vec<String> {
    let mut deps: Vec<String> = module
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Instance { module, .. } => Some(module.clone()),
            _ => None,
        })
        .collect();
    deps.sort();
    deps.dedup();
    deps
}

/// Module names in the dependency cone of `top` (top first, then BFS
/// order), restricted to modules present in `file`.
pub fn dependency_cone(file: &SourceFile, top: &str) -> Vec<String> {
    let mut seen = BTreeSet::new();
    let mut order = Vec::new();
    let mut queue = vec![top.to_owned()];
    while let Some(name) = queue.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        let Some(m) = file.module(&name) else {
            continue;
        };
        order.push(name);
        for d in direct_deps(m) {
            if !seen.contains(&d) {
                queue.push(d);
            }
        }
    }
    order
}

fn key_of(
    name: &str,
    texts: &BTreeMap<&str, &str>,
    deps: &BTreeMap<&str, Vec<String>>,
    memo: &mut BTreeMap<String, ContentHash>,
    visiting: &mut BTreeSet<String>,
) -> ContentHash {
    if let Some(k) = memo.get(name) {
        return *k;
    }
    // A missing module (frontend will error later) or a recursive
    // instantiation (always an elaboration error) keys by name alone; the
    // compile stage never caches failed elaborations, so this only has to
    // be stable, not meaningful.
    let key = match texts.get(name) {
        Some(text) if visiting.insert(name.to_owned()) => {
            let mut b = KeyBuilder::new("rtlt.module").str(name).str(text);
            for d in &deps[name] {
                let dk = key_of(d, texts, deps, memo, visiting);
                b = b.key(&dk);
            }
            visiting.remove(name);
            b.finish()
        }
        _ => KeyBuilder::new("rtlt.module.unresolved").str(name).finish(),
    };
    memo.insert(name.to_owned(), key);
    key
}

/// Dependency-closed content keys of every module:
/// `H(name, text, dep_module_keys)` over the instantiation graph.
pub fn module_keys(sources: &ModuleSources, file: &SourceFile) -> BTreeMap<String, ContentHash> {
    let texts: BTreeMap<&str, &str> = sources
        .modules
        .iter()
        .map(|m| (m.name.as_str(), m.text.as_str()))
        .collect();
    let deps: BTreeMap<&str, Vec<String>> = file
        .modules
        .iter()
        .map(|m| (m.name.as_str(), direct_deps(m)))
        .collect();
    let mut memo = BTreeMap::new();
    let mut visiting = BTreeSet::new();
    for m in &sources.modules {
        key_of(&m.name, &texts, &deps, &mut memo, &mut visiting);
    }
    memo
}

/// The module-granular identity of a compile: the dep-closed content key
/// of `top`, folded with the *file position* of every module in `top`'s
/// dependency cone. Positions matter because declaration line numbers in
/// the elaborated netlist are absolute file coordinates — moving a cone
/// module within the file changes the compile artifact even though no
/// module text changed. Modules outside the cone affect neither text nor
/// cone positions, so appending or editing them leaves the key unchanged.
/// `None` when the source cannot be split/parsed (callers fall back to
/// whole-source hashing).
pub fn design_key(source: &str, top: &str) -> Option<ContentHash> {
    let sources = split_modules(source).ok()?;
    sources.get(top)?;
    let file = crate::parse(source).ok()?;
    let top_key = module_keys(&sources, &file).get(top).copied()?;
    let mut b = KeyBuilder::new("rtlt.design").key(&top_key);
    for name in dependency_cone(&file, top) {
        if let Some(m) = sources.get(&name) {
            b = b.str(&m.name).u64(m.start_line as u64);
        }
    }
    Some(b.finish())
}

/// Rebases every line number in a module AST by `delta` — used to reassemble
/// per-module parses (whose lines are relative to the module text) into
/// whole-file coordinates.
pub fn shift_lines(module: &mut Module, delta: u32) {
    module.line += delta;
    for item in &mut module.items {
        match item {
            Item::NetDecl { line, .. }
            | Item::PortDecl { line, .. }
            | Item::ParamDecl { line, .. }
            | Item::Assign { line, .. }
            | Item::Instance { line, .. } => *line += delta,
            Item::Always(a) => shift_always(a, delta),
        }
    }
}

fn shift_always(a: &mut AlwaysBlock, delta: u32) {
    a.line += delta;
    shift_stmt(&mut a.body, delta);
}

fn shift_stmt(s: &mut Stmt, delta: u32) {
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                shift_stmt(st, delta);
            }
        }
        Stmt::If {
            then_br, else_br, ..
        } => {
            shift_stmt(then_br, delta);
            if let Some(e) = else_br {
                shift_stmt(e, delta);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                shift_stmt(&mut arm.body, delta);
            }
            if let Some(d) = default {
                shift_stmt(d, delta);
            }
        }
        Stmt::Assign { line, .. } => *line += delta,
        Stmt::Empty => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_MODULES: &str = "// header comment\n\
module leaf(input [3:0] a, output [3:0] y);\n\
  assign y = a + 4'd1;\n\
endmodule\n\
\n\
module top(input clk, input [3:0] x, output [3:0] z);\n\
  wire [3:0] t;\n\
  leaf u0 (.a(x), .y(t));\n\
  reg [3:0] r;\n\
  always @(posedge clk) r <= t;\n\
  assign z = r;\n\
endmodule\n";

    #[test]
    fn split_extracts_each_module_span() {
        let mods = split_modules(TWO_MODULES).unwrap();
        assert_eq!(mods.modules.len(), 2);
        let leaf = mods.get("leaf").unwrap();
        assert_eq!(leaf.start_line, 2);
        assert!(leaf.text.starts_with("module leaf"));
        assert!(leaf.text.ends_with("endmodule"));
        let top = mods.get("top").unwrap();
        assert_eq!(top.start_line, 6);
        assert!(top.text.contains("leaf u0"));
    }

    #[test]
    fn split_rejects_malformed_nesting() {
        assert!(split_modules("module a(); module b(); endmodule").is_err());
        assert!(split_modules("endmodule").is_err());
        assert!(split_modules("module a(); endmodule endmodule").is_err());
        assert!(split_modules("module a(); ").is_err());
    }

    #[test]
    fn split_is_comment_safe() {
        let src = "// module fake\nmodule real_one(input a, output y);\n/* module ghost */\nassign y = a;\nendmodule";
        let mods = split_modules(src).unwrap();
        assert_eq!(mods.modules.len(), 1);
        assert_eq!(mods.modules[0].name, "real_one");
    }

    #[test]
    fn keys_are_stable_and_dep_closed() {
        let mods = split_modules(TWO_MODULES).unwrap();
        let file = crate::parse(TWO_MODULES).unwrap();
        let k1 = module_keys(&mods, &file);
        let k2 = module_keys(&mods, &file);
        assert_eq!(k1, k2);

        // Editing the leaf changes both the leaf key and the top key.
        let edited = TWO_MODULES.replace("a + 4'd1", "a + 4'd2");
        let emods = split_modules(&edited).unwrap();
        let efile = crate::parse(&edited).unwrap();
        let k3 = module_keys(&emods, &efile);
        assert_ne!(k1["leaf"], k3["leaf"]);
        assert_ne!(k1["top"], k3["top"]);

        // Editing only the top leaves the leaf key unchanged.
        let edited = TWO_MODULES.replace("r <= t", "r <= t + 4'd1");
        let emods = split_modules(&edited).unwrap();
        let efile = crate::parse(&edited).unwrap();
        let k4 = module_keys(&emods, &efile);
        assert_eq!(k1["leaf"], k4["leaf"]);
        assert_ne!(k1["top"], k4["top"]);
    }

    #[test]
    fn design_key_ignores_modules_outside_the_cone() {
        let with_extra = format!(
            "{TWO_MODULES}\nmodule unused(input a, output y);\n  assign y = ~a;\nendmodule\n"
        );
        assert_eq!(
            design_key(TWO_MODULES, "top").unwrap(),
            design_key(&with_extra, "top").unwrap()
        );
        // But the unused module's own key exists and differs from top's.
        assert_ne!(
            design_key(&with_extra, "unused").unwrap(),
            design_key(&with_extra, "top").unwrap()
        );
    }

    #[test]
    fn design_key_tracks_cone_module_positions() {
        // Moving a cone module within the file shifts its declaration line
        // numbers (absolute coordinates in the elaborated netlist), so the
        // key must change even though no module text changed.
        let shifted = format!("// extra leading comment line\n{TWO_MODULES}");
        assert_ne!(
            design_key(TWO_MODULES, "top").unwrap(),
            design_key(&shifted, "top").unwrap()
        );
        // An unused module *below* every cone module shifts nothing.
        let below = format!(
            "{TWO_MODULES}\nmodule unused(input a, output y);\n  assign y = a;\nendmodule\n"
        );
        assert_eq!(
            design_key(TWO_MODULES, "top").unwrap(),
            design_key(&below, "top").unwrap()
        );
    }

    #[test]
    fn dependency_cone_reaches_instantiated_modules() {
        let file = crate::parse(TWO_MODULES).unwrap();
        let cone = dependency_cone(&file, "top");
        assert_eq!(cone, vec!["top".to_owned(), "leaf".to_owned()]);
        assert_eq!(dependency_cone(&file, "leaf"), vec!["leaf".to_owned()]);
    }

    #[test]
    fn per_module_parse_plus_shift_matches_whole_file_parse() {
        let whole = crate::parse(TWO_MODULES).unwrap();
        let mods = split_modules(TWO_MODULES).unwrap();
        for (m, src) in whole.modules.iter().zip(&mods.modules) {
            let standalone = crate::parse(&src.text).unwrap();
            assert_eq!(standalone.modules.len(), 1);
            let mut shifted = standalone.modules.into_iter().next().unwrap();
            shift_lines(&mut shifted, src.start_line - 1);
            assert_eq!(&shifted, m);
        }
    }

    #[test]
    fn recursive_instantiation_keys_without_hanging() {
        let src = "module a(input x, output y);\n  a u0 (.x(x), .y(y));\nendmodule";
        let mods = split_modules(src).unwrap();
        let file = crate::parse(src).unwrap();
        let keys = module_keys(&mods, &file);
        assert!(keys.contains_key("a"));
    }
}
