//! AST pretty-printer: emits parseable Verilog from a [`SourceFile`].
//!
//! Round-tripping (`parse → print → parse`) is used by the property tests
//! to pin down parser/printer agreement, and by tooling that wants to
//! re-emit (e.g. annotated) designs.

use crate::ast::*;
use std::fmt::Write;

/// Prints a whole source file.
pub fn print_source(file: &SourceFile) -> String {
    let mut s = String::new();
    for m in &file.modules {
        print_module(m, &mut s);
        s.push('\n');
    }
    s
}

fn print_module(m: &Module, s: &mut String) {
    write!(s, "module {}", m.name).unwrap();
    // Parameters go in a header block.
    let params: Vec<&Item> = m
        .items
        .iter()
        .filter(|i| matches!(i, Item::ParamDecl { local: false, .. }))
        .collect();
    if !params.is_empty() {
        s.push_str(" #(");
        for (i, p) in params.iter().enumerate() {
            if let Item::ParamDecl { name, value, .. } = p {
                if i > 0 {
                    s.push_str(", ");
                }
                write!(s, "parameter {name} = {}", expr_str(value)).unwrap();
            }
        }
        s.push(')');
    }
    if !m.port_order.is_empty() {
        write!(s, "({})", m.port_order.join(", ")).unwrap();
    }
    s.push_str(";\n");
    for item in &m.items {
        match item {
            Item::ParamDecl { local: false, .. } => {} // emitted in header
            other => print_item(other, s),
        }
    }
    s.push_str("endmodule\n");
}

fn range_str(range: &Option<(Expr, Expr)>) -> String {
    match range {
        None => String::new(),
        Some((m, l)) => format!("[{}:{}] ", expr_str(m), expr_str(l)),
    }
}

fn print_item(item: &Item, s: &mut String) {
    match item {
        Item::NetDecl {
            kind, range, names, ..
        } => {
            let kw = match kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg",
            };
            writeln!(s, "  {kw} {}{};", range_str(range), names.join(", ")).unwrap();
        }
        Item::PortDecl {
            dir,
            reg,
            range,
            names,
            ..
        } => {
            let d = match dir {
                Dir::Input => "input",
                Dir::Output => "output",
            };
            let r = if *reg { "reg " } else { "" };
            writeln!(s, "  {d} {r}{}{};", range_str(range), names.join(", ")).unwrap();
        }
        Item::ParamDecl {
            name, value, local, ..
        } => {
            let kw = if *local { "localparam" } else { "parameter" };
            writeln!(s, "  {kw} {name} = {};", expr_str(value)).unwrap();
        }
        Item::Assign { lhs, rhs, .. } => {
            writeln!(s, "  assign {} = {};", lvalue_str(lhs), expr_str(rhs)).unwrap();
        }
        Item::Always(a) => {
            let sens = match &a.sens {
                Sensitivity::Comb => "@(*)".to_owned(),
                Sensitivity::Edges(edges) => {
                    let parts: Vec<String> = edges
                        .iter()
                        .map(|(k, n)| {
                            let e = match k {
                                EdgeKind::Pos => "posedge",
                                EdgeKind::Neg => "negedge",
                            };
                            format!("{e} {n}")
                        })
                        .collect();
                    format!("@({})", parts.join(" or "))
                }
            };
            writeln!(s, "  always {sens}").unwrap();
            print_stmt(&a.body, s, 2);
        }
        Item::Instance {
            module,
            name,
            params,
            conns,
            ..
        } => {
            write!(s, "  {module} ").unwrap();
            if !params.is_empty() {
                let p: Vec<String> = params
                    .iter()
                    .map(|(n, e)| format!(".{n}({})", expr_str(e)))
                    .collect();
                write!(s, "#({}) ", p.join(", ")).unwrap();
            }
            write!(s, "{name} (").unwrap();
            match conns {
                Connections::Named(list) => {
                    let c: Vec<String> = list
                        .iter()
                        .map(|(n, e)| match e {
                            Some(e) => format!(".{n}({})", expr_str(e)),
                            None => format!(".{n}()"),
                        })
                        .collect();
                    write!(s, "{}", c.join(", ")).unwrap();
                }
                Connections::Ordered(list) => {
                    let c: Vec<String> = list.iter().map(expr_str).collect();
                    write!(s, "{}", c.join(", ")).unwrap();
                }
            }
            s.push_str(");\n");
        }
    }
}

fn indent(s: &mut String, n: usize) {
    for _ in 0..n {
        s.push_str("  ");
    }
}

fn print_stmt(stmt: &Stmt, s: &mut String, depth: usize) {
    match stmt {
        Stmt::Block(stmts) => {
            indent(s, depth);
            s.push_str("begin\n");
            for st in stmts {
                print_stmt(st, s, depth + 1);
            }
            indent(s, depth);
            s.push_str("end\n");
        }
        Stmt::If {
            cond,
            then_br,
            else_br,
        } => {
            indent(s, depth);
            writeln!(s, "if ({})", expr_str(cond)).unwrap();
            print_stmt(then_br, s, depth + 1);
            if let Some(e) = else_br {
                indent(s, depth);
                s.push_str("else\n");
                print_stmt(e, s, depth + 1);
            }
        }
        Stmt::Case {
            wildcard,
            subject,
            arms,
            default,
        } => {
            indent(s, depth);
            let kw = if *wildcard { "casez" } else { "case" };
            writeln!(s, "{kw} ({})", expr_str(subject)).unwrap();
            for arm in arms {
                indent(s, depth + 1);
                let labels: Vec<String> = arm.labels.iter().map(expr_str).collect();
                writeln!(s, "{}:", labels.join(", ")).unwrap();
                print_stmt(&arm.body, s, depth + 2);
            }
            if let Some(d) = default {
                indent(s, depth + 1);
                s.push_str("default:\n");
                print_stmt(d, s, depth + 2);
            }
            indent(s, depth);
            s.push_str("endcase\n");
        }
        Stmt::Assign {
            lhs, rhs, blocking, ..
        } => {
            indent(s, depth);
            let op = if *blocking { "=" } else { "<=" };
            writeln!(s, "{} {op} {};", lvalue_str(lhs), expr_str(rhs)).unwrap();
        }
        Stmt::Empty => {
            indent(s, depth);
            s.push_str(";\n");
        }
    }
}

fn lvalue_str(lv: &LValue) -> String {
    match lv {
        LValue::Ident(n) => n.clone(),
        LValue::Bit { name, index } => format!("{name}[{}]", expr_str(index)),
        LValue::Part { name, msb, lsb } => {
            format!("{name}[{}:{}]", expr_str(msb), expr_str(lsb))
        }
        LValue::Concat(parts) => {
            let p: Vec<String> = parts.iter().map(lvalue_str).collect();
            format!("{{{}}}", p.join(", "))
        }
    }
}

fn unary_str(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::LogNot => "!",
        UnaryOp::BitNot => "~",
        UnaryOp::Neg => "-",
        UnaryOp::RedAnd => "&",
        UnaryOp::RedOr => "|",
        UnaryOp::RedXor => "^",
        UnaryOp::RedNand => "~&",
        UnaryOp::RedNor => "~|",
        UnaryOp::RedXnor => "~^",
    }
}

fn binary_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::And => "&",
        BinaryOp::Or => "|",
        BinaryOp::Xor => "^",
        BinaryOp::Xnor => "~^",
        BinaryOp::LogAnd => "&&",
        BinaryOp::LogOr => "||",
        BinaryOp::Eq => "==",
        BinaryOp::Ne => "!=",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::Shl => "<<",
        BinaryOp::Shr => ">>",
    }
}

/// Renders an expression (fully parenthesized, so precedence survives the
/// round trip regardless of the original formatting).
pub fn expr_str(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        Expr::Number {
            width,
            value,
            zmask,
        } => {
            if *zmask != 0 {
                // casez label: emit binary with ? for don't-care bits.
                let w = width.unwrap_or(64);
                let mut s = format!("{w}'b");
                for i in (0..w).rev() {
                    if (zmask >> i) & 1 == 1 {
                        s.push('?');
                    } else {
                        s.push(if (value >> i) & 1 == 1 { '1' } else { '0' });
                    }
                }
                s
            } else {
                match width {
                    Some(w) => format!("{w}'d{value}"),
                    None => format!("{value}"),
                }
            }
        }
        Expr::Unary { op, operand } => format!("({}{})", unary_str(*op), expr_str(operand)),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr_str(lhs), binary_str(*op), expr_str(rhs))
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            format!(
                "({} ? {} : {})",
                expr_str(cond),
                expr_str(then_e),
                expr_str(else_e)
            )
        }
        Expr::Concat(parts) => {
            let p: Vec<String> = parts.iter().map(expr_str).collect();
            format!("{{{}}}", p.join(", "))
        }
        Expr::Repeat { count, inner } => {
            format!("{{{}{{{}}}}}", expr_str(count), expr_str(inner))
        }
        Expr::Bit { base, index } => format!("{base}[{}]", expr_str(index)),
        Expr::Part { base, msb, lsb } => format!("{base}[{}:{}]", expr_str(msb), expr_str(lsb)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let ast1 = parse(src).expect("first parse");
        let printed = print_source(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let printed2 = print_source(&ast2);
        assert_eq!(printed, printed2, "print must be a fixpoint");
    }

    #[test]
    fn roundtrip_counter() {
        roundtrip(
            "module c(input clk, input rst, output [7:0] q);
               reg [7:0] cnt;
               always @(posedge clk)
                 if (rst) cnt <= 8'd0; else cnt <= cnt + 8'd1;
               assign q = cnt;
             endmodule",
        );
    }

    #[test]
    fn roundtrip_case_and_concat() {
        roundtrip(
            "module m(input [3:0] s, input [7:0] a, output [7:0] y);
               reg [7:0] t;
               always @(*)
                 casez (s)
                   4'b1???: t = {a[3:0], 4'b0000};
                   4'b01??: t = {2{a[3:0]}};
                   default: t = ~a;
                 endcase
               assign y = t;
             endmodule",
        );
    }

    #[test]
    fn roundtrip_hierarchy_with_params() {
        roundtrip(
            "module sub #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);
               assign y = a + 1;
             endmodule
             module top(input [7:0] x, output [7:0] z);
               sub #(.W(8)) u0 (.a(x), .y(z));
             endmodule",
        );
    }

    #[test]
    fn printed_benchmark_designs_compile_identically() {
        // Print → reparse → elaborate must give the same netlist size for
        // real generated designs.
        for name in ["b20", "conmax"] {
            let src = rtlt_designgen_stub(name);
            let ast = parse(&src).expect("parses");
            let printed = print_source(&ast);
            let n1 = crate::elaborate(&ast, name).expect("elab original");
            let ast2 = parse(&printed).expect("reparse");
            let n2 = crate::elaborate(&ast2, name).expect("elab printed");
            assert_eq!(n1.regs().len(), n2.regs().len());
            assert_eq!(n1.stats().ops, n2.stats().ops);
        }
    }

    // designgen depends on this crate, so generate a couple of fixed
    // sources inline rather than depending on it (cycle).
    fn rtlt_designgen_stub(name: &str) -> String {
        match name {
            "b20" => "module b20(input clk, input [15:0] a, input [15:0] b, output [15:0] d);
                        wire [15:0] p;
                        assign p = a[7:0] * b[7:0];
                        reg [15:0] s0;
                        reg [15:0] s1;
                        always @(posedge clk) s0 <= p ^ {b[7:0], a[15:8]};
                        always @(posedge clk) s1 <= s0 + a;
                        assign d = s1;
                      endmodule"
                .to_owned(),
            _ => "module conmax(input clk, input [3:0] req, input [15:0] m0, input [15:0] m1, output [15:0] s);
                    reg [1:0] ptr;
                    reg [15:0] dat;
                    always @(posedge clk) if (req != 4'd0) ptr <= ptr + 2'd1;
                    always @(posedge clk)
                      case (ptr[0])
                        1'b0: dat <= m0;
                        default: dat <= m1;
                      endcase
                    assign s = dat;
                  endmodule"
                .to_owned(),
        }
    }
}
