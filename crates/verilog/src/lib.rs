//! Synthesizable Verilog-2001 subset frontend.
//!
//! The RTL-Timer flow starts from HDL source code — "design RTL is originally
//! in HDL code format, which cannot be directly processed by either ML or
//! traditional STA tools" (paper §1, challenge 1). This crate provides the
//! missing frontend:
//!
//! * [`lex`](lexer::lex) / [`parse`] — tokenizer and recursive-descent parser
//!   for a synthesizable subset (modules, parameters, `assign`,
//!   `always @(posedge …)` / `always @(*)`, `if`/`case`/`casez`,
//!   vectors, part selects, concatenation, instantiation),
//! * [`elaborate`] — hierarchy flattening and lowering to a word-level RTL
//!   netlist ([`rtlir::Netlist`]) with registers, named signals and source
//!   line provenance (needed later for slack annotation),
//! * [`rtlir::Netlist::simulate`] — a word-level functional simulator used to
//!   cross-check bit-blasting, and
//! * [`astfeat`] — AST-level feature extraction for the ICCAD'22-style
//!   baseline model.
//!
//! Subset restrictions (documented substitutions, see DESIGN.md): signal
//! widths ≤ 64 bits, synchronous resets only, no memories/tri-state/latches,
//! no `generate`/`for` (the benchmark generator emits unrolled code).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), rtlt_verilog::VerilogError> {
//! let src = "
//!     module counter(input clk, input rst, output [7:0] q);
//!       reg [7:0] cnt;
//!       always @(posedge clk)
//!         if (rst) cnt <= 8'd0; else cnt <= cnt + 8'd1;
//!       assign q = cnt;
//!     endmodule";
//! let ast = rtlt_verilog::parse(src)?;
//! let netlist = rtlt_verilog::elaborate(&ast, "counter")?;
//! assert_eq!(netlist.regs().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod astfeat;
mod codec;
mod elab;
mod error;
mod lexer;
pub mod modsrc;
mod parser;
pub mod printer;
pub mod rtlir;

pub use elab::elaborate;
pub use error::VerilogError;
pub use lexer::{lex, Tok, Token};
pub use parser::parse;

/// Convenience: parse then elaborate `top` in one call.
///
/// # Errors
///
/// Returns the first lexical, syntax or elaboration error encountered.
pub fn compile(source: &str, top: &str) -> Result<rtlir::Netlist, VerilogError> {
    let file = parse(source)?;
    elaborate(&file, top)
}
