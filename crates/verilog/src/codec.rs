//! [`Codec`] implementations for the word-level RTL IR and the module AST,
//! enabling `rtlt-store` persistence of compiled designs and of per-module
//! parse results (the module-granular compile cache). Lives here because
//! [`Netlist`]'s node/reg tables are crate-private; decoding is the one
//! sanctioned way to rebuild a netlist from bytes.

use crate::ast::{
    AlwaysBlock, BinaryOp, CaseArm, Connections, Dir, EdgeKind, Expr, Item, LValue, Module,
    NetKind, Sensitivity, Stmt, UnaryOp,
};
use crate::rtlir::{Netlist, ScopeInfo, WBinaryOp, WKind, WNode, WReg, WUnaryOp};
use rtlt_store::{Codec, CodecError, Dec, Enc};

impl Codec for WUnaryOp {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            WUnaryOp::Not => 0u8,
            WUnaryOp::Neg => 1,
            WUnaryOp::RedAnd => 2,
            WUnaryOp::RedOr => 3,
            WUnaryOp::RedXor => 4,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => WUnaryOp::Not,
            1 => WUnaryOp::Neg,
            2 => WUnaryOp::RedAnd,
            3 => WUnaryOp::RedOr,
            4 => WUnaryOp::RedXor,
            _ => return Err(CodecError::new("WUnaryOp tag")),
        })
    }
}

impl Codec for WBinaryOp {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            WBinaryOp::And => 0u8,
            WBinaryOp::Or => 1,
            WBinaryOp::Xor => 2,
            WBinaryOp::Add => 3,
            WBinaryOp::Sub => 4,
            WBinaryOp::Mul => 5,
            WBinaryOp::Shl => 6,
            WBinaryOp::Shr => 7,
            WBinaryOp::Eq => 8,
            WBinaryOp::Lt => 9,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => WBinaryOp::And,
            1 => WBinaryOp::Or,
            2 => WBinaryOp::Xor,
            3 => WBinaryOp::Add,
            4 => WBinaryOp::Sub,
            5 => WBinaryOp::Mul,
            6 => WBinaryOp::Shl,
            7 => WBinaryOp::Shr,
            8 => WBinaryOp::Eq,
            9 => WBinaryOp::Lt,
            _ => return Err(CodecError::new("WBinaryOp tag")),
        })
    }
}

impl Codec for WKind {
    fn encode(&self, e: &mut Enc) {
        match self {
            WKind::Input { name } => {
                e.u8(0);
                e.str(name);
            }
            WKind::Const { value } => {
                e.u8(1);
                e.u64(*value);
            }
            WKind::Net { name } => {
                e.u8(2);
                e.str(name);
            }
            WKind::Unary { op, a } => {
                e.u8(3);
                op.encode(e);
                e.u32(*a);
            }
            WKind::Binary { op, a, b } => {
                e.u8(4);
                op.encode(e);
                e.u32(*a);
                e.u32(*b);
            }
            WKind::Mux { cond, t, f } => {
                e.u8(5);
                e.u32(*cond);
                e.u32(*t);
                e.u32(*f);
            }
            WKind::Concat { parts } => {
                e.u8(6);
                parts.encode(e);
            }
            WKind::Slice { a, lsb } => {
                e.u8(7);
                e.u32(*a);
                e.u32(*lsb);
            }
            WKind::RegQ { reg } => {
                e.u8(8);
                e.u32(*reg);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => WKind::Input { name: d.str()? },
            1 => WKind::Const { value: d.u64()? },
            2 => WKind::Net { name: d.str()? },
            3 => WKind::Unary {
                op: WUnaryOp::decode(d)?,
                a: d.u32()?,
            },
            4 => WKind::Binary {
                op: WBinaryOp::decode(d)?,
                a: d.u32()?,
                b: d.u32()?,
            },
            5 => WKind::Mux {
                cond: d.u32()?,
                t: d.u32()?,
                f: d.u32()?,
            },
            6 => WKind::Concat {
                parts: Vec::decode(d)?,
            },
            7 => WKind::Slice {
                a: d.u32()?,
                lsb: d.u32()?,
            },
            8 => WKind::RegQ { reg: d.u32()? },
            _ => return Err(CodecError::new("WKind tag")),
        })
    }
}

impl Codec for WNode {
    fn encode(&self, e: &mut Enc) {
        self.kind.encode(e);
        e.u32(self.width);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(WNode {
            kind: WKind::decode(d)?,
            width: d.u32()?,
        })
    }
}

impl Codec for WReg {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.u32(self.width);
        e.u32(self.q);
        e.u32(self.next);
        e.u64(self.init);
        e.u32(self.decl_line);
        e.bool(self.top_level);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(WReg {
            name: d.str()?,
            width: d.u32()?,
            q: d.u32()?,
            next: d.u32()?,
            init: d.u64()?,
            decl_line: d.u32()?,
            top_level: d.bool()?,
        })
    }
}

impl Codec for ScopeInfo {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.module);
        self.parent.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(ScopeInfo {
            module: d.str()?,
            parent: Option::decode(d)?,
        })
    }
}

impl Codec for Netlist {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        self.nodes.encode(e);
        self.inputs.encode(e);
        self.outputs.encode(e);
        self.regs.encode(e);
        self.scopes.encode(e);
        self.node_scope.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let netlist = Netlist {
            name: d.str()?,
            nodes: Vec::decode(d)?,
            inputs: Vec::decode(d)?,
            outputs: Vec::decode(d)?,
            regs: Vec::decode(d)?,
            scopes: Vec::decode(d)?,
            node_scope: Vec::decode(d)?,
        };
        if netlist.node_scope.len() != netlist.nodes.len() || netlist.scopes.is_empty() {
            return Err(CodecError::new("Netlist scope tables"));
        }
        Ok(netlist)
    }
}

// ---------------------------------------------------------------------------
// Module AST codec — per-module parse results are cached under
// `H(module text)` so recompiling an edited file reparses only the changed
// modules.
// ---------------------------------------------------------------------------

impl Codec for NetKind {
    fn encode(&self, e: &mut Enc) {
        e.u8(matches!(self, NetKind::Reg) as u8);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            0 => Ok(NetKind::Wire),
            1 => Ok(NetKind::Reg),
            _ => Err(CodecError::new("NetKind tag")),
        }
    }
}

impl Codec for Dir {
    fn encode(&self, e: &mut Enc) {
        e.u8(matches!(self, Dir::Output) as u8);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            0 => Ok(Dir::Input),
            1 => Ok(Dir::Output),
            _ => Err(CodecError::new("Dir tag")),
        }
    }
}

impl Codec for EdgeKind {
    fn encode(&self, e: &mut Enc) {
        e.u8(matches!(self, EdgeKind::Neg) as u8);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            0 => Ok(EdgeKind::Pos),
            1 => Ok(EdgeKind::Neg),
            _ => Err(CodecError::new("EdgeKind tag")),
        }
    }
}

impl Codec for UnaryOp {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            UnaryOp::LogNot => 0u8,
            UnaryOp::BitNot => 1,
            UnaryOp::Neg => 2,
            UnaryOp::RedAnd => 3,
            UnaryOp::RedOr => 4,
            UnaryOp::RedXor => 5,
            UnaryOp::RedNand => 6,
            UnaryOp::RedNor => 7,
            UnaryOp::RedXnor => 8,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => UnaryOp::LogNot,
            1 => UnaryOp::BitNot,
            2 => UnaryOp::Neg,
            3 => UnaryOp::RedAnd,
            4 => UnaryOp::RedOr,
            5 => UnaryOp::RedXor,
            6 => UnaryOp::RedNand,
            7 => UnaryOp::RedNor,
            8 => UnaryOp::RedXnor,
            _ => return Err(CodecError::new("UnaryOp tag")),
        })
    }
}

impl Codec for BinaryOp {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            BinaryOp::Add => 0u8,
            BinaryOp::Sub => 1,
            BinaryOp::Mul => 2,
            BinaryOp::And => 3,
            BinaryOp::Or => 4,
            BinaryOp::Xor => 5,
            BinaryOp::Xnor => 6,
            BinaryOp::LogAnd => 7,
            BinaryOp::LogOr => 8,
            BinaryOp::Eq => 9,
            BinaryOp::Ne => 10,
            BinaryOp::Lt => 11,
            BinaryOp::Le => 12,
            BinaryOp::Gt => 13,
            BinaryOp::Ge => 14,
            BinaryOp::Shl => 15,
            BinaryOp::Shr => 16,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => BinaryOp::Add,
            1 => BinaryOp::Sub,
            2 => BinaryOp::Mul,
            3 => BinaryOp::And,
            4 => BinaryOp::Or,
            5 => BinaryOp::Xor,
            6 => BinaryOp::Xnor,
            7 => BinaryOp::LogAnd,
            8 => BinaryOp::LogOr,
            9 => BinaryOp::Eq,
            10 => BinaryOp::Ne,
            11 => BinaryOp::Lt,
            12 => BinaryOp::Le,
            13 => BinaryOp::Gt,
            14 => BinaryOp::Ge,
            15 => BinaryOp::Shl,
            16 => BinaryOp::Shr,
            _ => return Err(CodecError::new("BinaryOp tag")),
        })
    }
}

impl Codec for Expr {
    fn encode(&self, e: &mut Enc) {
        match self {
            Expr::Ident(n) => {
                e.u8(0);
                e.str(n);
            }
            Expr::Number {
                width,
                value,
                zmask,
            } => {
                e.u8(1);
                width.encode(e);
                e.u64(*value);
                e.u64(*zmask);
            }
            Expr::Unary { op, operand } => {
                e.u8(2);
                op.encode(e);
                operand.encode(e);
            }
            Expr::Binary { op, lhs, rhs } => {
                e.u8(3);
                op.encode(e);
                lhs.encode(e);
                rhs.encode(e);
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                e.u8(4);
                cond.encode(e);
                then_e.encode(e);
                else_e.encode(e);
            }
            Expr::Concat(parts) => {
                e.u8(5);
                parts.encode(e);
            }
            Expr::Repeat { count, inner } => {
                e.u8(6);
                count.encode(e);
                inner.encode(e);
            }
            Expr::Bit { base, index } => {
                e.u8(7);
                e.str(base);
                index.encode(e);
            }
            Expr::Part { base, msb, lsb } => {
                e.u8(8);
                e.str(base);
                msb.encode(e);
                lsb.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => Expr::Ident(d.str()?),
            1 => Expr::Number {
                width: Option::decode(d)?,
                value: d.u64()?,
                zmask: d.u64()?,
            },
            2 => Expr::Unary {
                op: UnaryOp::decode(d)?,
                operand: Box::new(Expr::decode(d)?),
            },
            3 => Expr::Binary {
                op: BinaryOp::decode(d)?,
                lhs: Box::new(Expr::decode(d)?),
                rhs: Box::new(Expr::decode(d)?),
            },
            4 => Expr::Ternary {
                cond: Box::new(Expr::decode(d)?),
                then_e: Box::new(Expr::decode(d)?),
                else_e: Box::new(Expr::decode(d)?),
            },
            5 => Expr::Concat(Vec::decode(d)?),
            6 => Expr::Repeat {
                count: Box::new(Expr::decode(d)?),
                inner: Box::new(Expr::decode(d)?),
            },
            7 => Expr::Bit {
                base: d.str()?,
                index: Box::new(Expr::decode(d)?),
            },
            8 => Expr::Part {
                base: d.str()?,
                msb: Box::new(Expr::decode(d)?),
                lsb: Box::new(Expr::decode(d)?),
            },
            _ => return Err(CodecError::new("Expr tag")),
        })
    }
}

impl Codec for LValue {
    fn encode(&self, e: &mut Enc) {
        match self {
            LValue::Ident(n) => {
                e.u8(0);
                e.str(n);
            }
            LValue::Bit { name, index } => {
                e.u8(1);
                e.str(name);
                index.encode(e);
            }
            LValue::Part { name, msb, lsb } => {
                e.u8(2);
                e.str(name);
                msb.encode(e);
                lsb.encode(e);
            }
            LValue::Concat(parts) => {
                e.u8(3);
                parts.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => LValue::Ident(d.str()?),
            1 => LValue::Bit {
                name: d.str()?,
                index: Expr::decode(d)?,
            },
            2 => LValue::Part {
                name: d.str()?,
                msb: Expr::decode(d)?,
                lsb: Expr::decode(d)?,
            },
            3 => LValue::Concat(Vec::decode(d)?),
            _ => return Err(CodecError::new("LValue tag")),
        })
    }
}

impl Codec for CaseArm {
    fn encode(&self, e: &mut Enc) {
        self.labels.encode(e);
        self.body.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(CaseArm {
            labels: Vec::decode(d)?,
            body: Stmt::decode(d)?,
        })
    }
}

impl Codec for Stmt {
    fn encode(&self, e: &mut Enc) {
        match self {
            Stmt::Block(stmts) => {
                e.u8(0);
                stmts.encode(e);
            }
            Stmt::If {
                cond,
                then_br,
                else_br,
            } => {
                e.u8(1);
                cond.encode(e);
                then_br.encode(e);
                match else_br {
                    None => e.u8(0),
                    Some(b) => {
                        e.u8(1);
                        b.encode(e);
                    }
                }
            }
            Stmt::Case {
                wildcard,
                subject,
                arms,
                default,
            } => {
                e.u8(2);
                e.bool(*wildcard);
                subject.encode(e);
                arms.encode(e);
                match default {
                    None => e.u8(0),
                    Some(b) => {
                        e.u8(1);
                        b.encode(e);
                    }
                }
            }
            Stmt::Assign {
                lhs,
                rhs,
                blocking,
                line,
            } => {
                e.u8(3);
                lhs.encode(e);
                rhs.encode(e);
                e.bool(*blocking);
                e.u32(*line);
            }
            Stmt::Empty => e.u8(4),
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => Stmt::Block(Vec::decode(d)?),
            1 => Stmt::If {
                cond: Expr::decode(d)?,
                then_br: Box::new(Stmt::decode(d)?),
                else_br: match d.u8()? {
                    0 => None,
                    1 => Some(Box::new(Stmt::decode(d)?)),
                    _ => return Err(CodecError::new("If else tag")),
                },
            },
            2 => Stmt::Case {
                wildcard: d.bool()?,
                subject: Expr::decode(d)?,
                arms: Vec::decode(d)?,
                default: match d.u8()? {
                    0 => None,
                    1 => Some(Box::new(Stmt::decode(d)?)),
                    _ => return Err(CodecError::new("Case default tag")),
                },
            },
            3 => Stmt::Assign {
                lhs: LValue::decode(d)?,
                rhs: Expr::decode(d)?,
                blocking: d.bool()?,
                line: d.u32()?,
            },
            4 => Stmt::Empty,
            _ => return Err(CodecError::new("Stmt tag")),
        })
    }
}

impl Codec for Sensitivity {
    fn encode(&self, e: &mut Enc) {
        match self {
            Sensitivity::Comb => e.u8(0),
            Sensitivity::Edges(edges) => {
                e.u8(1);
                edges.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => Sensitivity::Comb,
            1 => Sensitivity::Edges(Vec::decode(d)?),
            _ => return Err(CodecError::new("Sensitivity tag")),
        })
    }
}

impl Codec for AlwaysBlock {
    fn encode(&self, e: &mut Enc) {
        self.sens.encode(e);
        self.body.encode(e);
        e.u32(self.line);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(AlwaysBlock {
            sens: Sensitivity::decode(d)?,
            body: Stmt::decode(d)?,
            line: d.u32()?,
        })
    }
}

impl Codec for Connections {
    fn encode(&self, e: &mut Enc) {
        match self {
            Connections::Named(conns) => {
                e.u8(0);
                conns.encode(e);
            }
            Connections::Ordered(exprs) => {
                e.u8(1);
                exprs.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => Connections::Named(Vec::decode(d)?),
            1 => Connections::Ordered(Vec::decode(d)?),
            _ => return Err(CodecError::new("Connections tag")),
        })
    }
}

impl Codec for Item {
    fn encode(&self, e: &mut Enc) {
        match self {
            Item::NetDecl {
                kind,
                range,
                names,
                line,
            } => {
                e.u8(0);
                kind.encode(e);
                range.encode(e);
                names.encode(e);
                e.u32(*line);
            }
            Item::PortDecl {
                dir,
                reg,
                range,
                names,
                line,
            } => {
                e.u8(1);
                dir.encode(e);
                e.bool(*reg);
                range.encode(e);
                names.encode(e);
                e.u32(*line);
            }
            Item::ParamDecl {
                name,
                value,
                local,
                line,
            } => {
                e.u8(2);
                e.str(name);
                value.encode(e);
                e.bool(*local);
                e.u32(*line);
            }
            Item::Assign { lhs, rhs, line } => {
                e.u8(3);
                lhs.encode(e);
                rhs.encode(e);
                e.u32(*line);
            }
            Item::Always(a) => {
                e.u8(4);
                a.encode(e);
            }
            Item::Instance {
                module,
                name,
                params,
                conns,
                line,
            } => {
                e.u8(5);
                e.str(module);
                e.str(name);
                params.encode(e);
                conns.encode(e);
                e.u32(*line);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => Item::NetDecl {
                kind: NetKind::decode(d)?,
                range: Option::decode(d)?,
                names: Vec::decode(d)?,
                line: d.u32()?,
            },
            1 => Item::PortDecl {
                dir: Dir::decode(d)?,
                reg: d.bool()?,
                range: Option::decode(d)?,
                names: Vec::decode(d)?,
                line: d.u32()?,
            },
            2 => Item::ParamDecl {
                name: d.str()?,
                value: Expr::decode(d)?,
                local: d.bool()?,
                line: d.u32()?,
            },
            3 => Item::Assign {
                lhs: LValue::decode(d)?,
                rhs: Expr::decode(d)?,
                line: d.u32()?,
            },
            4 => Item::Always(AlwaysBlock::decode(d)?),
            5 => Item::Instance {
                module: d.str()?,
                name: d.str()?,
                params: Vec::decode(d)?,
                conns: Connections::decode(d)?,
                line: d.u32()?,
            },
            _ => return Err(CodecError::new("Item tag")),
        })
    }
}

impl Codec for Module {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        self.port_order.encode(e);
        self.items.encode(e);
        e.u32(self.line);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Module {
            name: d.str()?,
            port_order: Vec::decode(d)?,
            items: Vec::decode(d)?,
            line: d.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_round_trips() {
        let netlist = crate::compile(
            "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q, output p);
               reg [7:0] acc;
               always @(posedge clk) acc <= (a > b ? a - b : a + b) ^ {acc[6:0], acc[7]};
               assign q = acc;
               assign p = ^acc;
             endmodule",
            "m",
        )
        .expect("compiles");
        let back = Netlist::from_bytes(&netlist.to_bytes()).expect("round trip");
        assert_eq!(back.name, netlist.name);
        assert_eq!(back.nodes(), netlist.nodes());
        assert_eq!(back.inputs(), netlist.inputs());
        assert_eq!(back.outputs(), netlist.outputs());
        assert_eq!(back.regs(), netlist.regs());
        // A decoded netlist still blasts/elaborates identically downstream.
        assert_eq!(back.stats(), netlist.stats());
    }

    #[test]
    fn module_ast_round_trips() {
        let file = crate::parse(
            "module sub #(parameter W = 4) (input clk, input [W-1:0] a, output [W-1:0] y);
               reg [W-1:0] r;
               always @(posedge clk)
                 casez (a)
                   4'b1??0: r <= a + {2{a[1]}};
                   default: r <= (a > 2) ? ~a : a << 1;
                 endcase
               assign y = r;
             endmodule
             module m(input clk, input [3:0] x, output [3:0] z);
               sub #(.W(4)) u0 (.clk(clk), .a(x), .y(z));
             endmodule",
        )
        .expect("parses");
        for m in &file.modules {
            let back = Module::from_bytes(&m.to_bytes()).expect("round trip");
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn netlist_scopes_round_trip() {
        let netlist = crate::compile(
            "module sub(input clk, input d, output q);
               reg r;
               always @(posedge clk) r <= d;
               assign q = r;
             endmodule
             module m(input clk, input d, output q);
               sub u0 (.clk(clk), .d(d), .q(q));
             endmodule",
            "m",
        )
        .expect("compiles");
        assert_eq!(netlist.scopes().len(), 2);
        assert_eq!(netlist.scopes()[0].module, "m");
        assert_eq!(netlist.scopes()[1].module, "sub");
        assert_eq!(netlist.scope_module_chain(1), vec!["sub", "m"]);
        let back = Netlist::from_bytes(&netlist.to_bytes()).expect("round trip");
        assert_eq!(back.scopes(), netlist.scopes());
        for id in 0..netlist.nodes().len() as u32 {
            assert_eq!(back.node_scope(id), netlist.node_scope(id));
        }
    }

    #[test]
    fn corrupt_tag_fails_cleanly() {
        let kind = WKind::Mux {
            cond: 1,
            t: 2,
            f: 3,
        };
        let mut bytes = kind.to_bytes();
        bytes[0] = 99;
        assert!(WKind::from_bytes(&bytes).is_err());
    }
}
