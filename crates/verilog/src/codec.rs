//! [`Codec`] implementations for the word-level RTL IR, enabling
//! `rtlt-store` persistence of compiled designs. Lives here because
//! [`Netlist`]'s node/reg tables are crate-private; decoding is the one
//! sanctioned way to rebuild a netlist from bytes.

use crate::rtlir::{Netlist, WBinaryOp, WKind, WNode, WReg, WUnaryOp};
use rtlt_store::{Codec, CodecError, Dec, Enc};

impl Codec for WUnaryOp {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            WUnaryOp::Not => 0u8,
            WUnaryOp::Neg => 1,
            WUnaryOp::RedAnd => 2,
            WUnaryOp::RedOr => 3,
            WUnaryOp::RedXor => 4,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => WUnaryOp::Not,
            1 => WUnaryOp::Neg,
            2 => WUnaryOp::RedAnd,
            3 => WUnaryOp::RedOr,
            4 => WUnaryOp::RedXor,
            _ => return Err(CodecError::new("WUnaryOp tag")),
        })
    }
}

impl Codec for WBinaryOp {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            WBinaryOp::And => 0u8,
            WBinaryOp::Or => 1,
            WBinaryOp::Xor => 2,
            WBinaryOp::Add => 3,
            WBinaryOp::Sub => 4,
            WBinaryOp::Mul => 5,
            WBinaryOp::Shl => 6,
            WBinaryOp::Shr => 7,
            WBinaryOp::Eq => 8,
            WBinaryOp::Lt => 9,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => WBinaryOp::And,
            1 => WBinaryOp::Or,
            2 => WBinaryOp::Xor,
            3 => WBinaryOp::Add,
            4 => WBinaryOp::Sub,
            5 => WBinaryOp::Mul,
            6 => WBinaryOp::Shl,
            7 => WBinaryOp::Shr,
            8 => WBinaryOp::Eq,
            9 => WBinaryOp::Lt,
            _ => return Err(CodecError::new("WBinaryOp tag")),
        })
    }
}

impl Codec for WKind {
    fn encode(&self, e: &mut Enc) {
        match self {
            WKind::Input { name } => {
                e.u8(0);
                e.str(name);
            }
            WKind::Const { value } => {
                e.u8(1);
                e.u64(*value);
            }
            WKind::Net { name } => {
                e.u8(2);
                e.str(name);
            }
            WKind::Unary { op, a } => {
                e.u8(3);
                op.encode(e);
                e.u32(*a);
            }
            WKind::Binary { op, a, b } => {
                e.u8(4);
                op.encode(e);
                e.u32(*a);
                e.u32(*b);
            }
            WKind::Mux { cond, t, f } => {
                e.u8(5);
                e.u32(*cond);
                e.u32(*t);
                e.u32(*f);
            }
            WKind::Concat { parts } => {
                e.u8(6);
                parts.encode(e);
            }
            WKind::Slice { a, lsb } => {
                e.u8(7);
                e.u32(*a);
                e.u32(*lsb);
            }
            WKind::RegQ { reg } => {
                e.u8(8);
                e.u32(*reg);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => WKind::Input { name: d.str()? },
            1 => WKind::Const { value: d.u64()? },
            2 => WKind::Net { name: d.str()? },
            3 => WKind::Unary {
                op: WUnaryOp::decode(d)?,
                a: d.u32()?,
            },
            4 => WKind::Binary {
                op: WBinaryOp::decode(d)?,
                a: d.u32()?,
                b: d.u32()?,
            },
            5 => WKind::Mux {
                cond: d.u32()?,
                t: d.u32()?,
                f: d.u32()?,
            },
            6 => WKind::Concat {
                parts: Vec::decode(d)?,
            },
            7 => WKind::Slice {
                a: d.u32()?,
                lsb: d.u32()?,
            },
            8 => WKind::RegQ { reg: d.u32()? },
            _ => return Err(CodecError::new("WKind tag")),
        })
    }
}

impl Codec for WNode {
    fn encode(&self, e: &mut Enc) {
        self.kind.encode(e);
        e.u32(self.width);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(WNode {
            kind: WKind::decode(d)?,
            width: d.u32()?,
        })
    }
}

impl Codec for WReg {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.u32(self.width);
        e.u32(self.q);
        e.u32(self.next);
        e.u64(self.init);
        e.u32(self.decl_line);
        e.bool(self.top_level);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(WReg {
            name: d.str()?,
            width: d.u32()?,
            q: d.u32()?,
            next: d.u32()?,
            init: d.u64()?,
            decl_line: d.u32()?,
            top_level: d.bool()?,
        })
    }
}

impl Codec for Netlist {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        self.nodes.encode(e);
        self.inputs.encode(e);
        self.outputs.encode(e);
        self.regs.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Netlist {
            name: d.str()?,
            nodes: Vec::decode(d)?,
            inputs: Vec::decode(d)?,
            outputs: Vec::decode(d)?,
            regs: Vec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_round_trips() {
        let netlist = crate::compile(
            "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q, output p);
               reg [7:0] acc;
               always @(posedge clk) acc <= (a > b ? a - b : a + b) ^ {acc[6:0], acc[7]};
               assign q = acc;
               assign p = ^acc;
             endmodule",
            "m",
        )
        .expect("compiles");
        let back = Netlist::from_bytes(&netlist.to_bytes()).expect("round trip");
        assert_eq!(back.name, netlist.name);
        assert_eq!(back.nodes(), netlist.nodes());
        assert_eq!(back.inputs(), netlist.inputs());
        assert_eq!(back.outputs(), netlist.outputs());
        assert_eq!(back.regs(), netlist.regs());
        // A decoded netlist still blasts/elaborates identically downstream.
        assert_eq!(back.stats(), netlist.stats());
    }

    #[test]
    fn corrupt_tag_fails_cleanly() {
        let kind = WKind::Mux {
            cond: 1,
            t: 2,
            f: 3,
        };
        let mut bytes = kind.to_bytes();
        bytes[0] = 99;
        assert!(WKind::from_bytes(&bytes).is_err());
    }
}
