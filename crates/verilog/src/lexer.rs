//! Tokenizer for the Verilog subset.

use crate::error::VerilogError;

/// Token kind plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or escaped identifier.
    Ident(String),
    /// Numeric literal. `zmask` marks don't-care bits (`z`/`?` in `casez`
    /// labels); `x` digits lex as 0 value bits.
    Number {
        /// Explicit size prefix (e.g. `8` in `8'hFF`).
        width: Option<u32>,
        /// Literal value (z/x digits contribute 0).
        value: u64,
        /// Bits that were written `z` or `?`.
        zmask: u64,
    },
    // Keywords.
    Module,
    Endmodule,
    Input,
    Output,
    Wire,
    Reg,
    Assign,
    Always,
    Posedge,
    Negedge,
    If,
    Else,
    Begin,
    End,
    Case,
    Casez,
    Endcase,
    Default,
    Parameter,
    Localparam,
    /// `or` (sensitivity-list separator / reserved word).
    OrKw,
    // Punctuation / operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Colon,
    Comma,
    Dot,
    Hash,
    At,
    Question,
    Star,
    Slash,
    Percent,
    Plus,
    Minus,
    Bang,
    Tilde,
    Amp,
    Pipe,
    Caret,
    TildeAmp,
    TildePipe,
    TildeCaret,
    Lt,
    Gt,
    /// `<=` — relational or non-blocking assign depending on context.
    Le,
    Ge,
    EqEq,
    NotEq,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    /// `=`
    Eq,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "module" => Tok::Module,
        "endmodule" => Tok::Endmodule,
        "input" => Tok::Input,
        "output" => Tok::Output,
        "wire" => Tok::Wire,
        "reg" => Tok::Reg,
        "assign" => Tok::Assign,
        "always" => Tok::Always,
        "posedge" => Tok::Posedge,
        "negedge" => Tok::Negedge,
        "if" => Tok::If,
        "else" => Tok::Else,
        "begin" => Tok::Begin,
        "end" => Tok::End,
        "case" => Tok::Case,
        "casez" => Tok::Casez,
        "endcase" => Tok::Endcase,
        "default" => Tok::Default,
        "parameter" => Tok::Parameter,
        "localparam" => Tok::Localparam,
        "or" => Tok::OrKw,
        _ => return None,
    })
}

/// Tokenizes Verilog source.
///
/// # Errors
///
/// Returns an error for unterminated block comments, malformed numeric
/// literals, literals wider than 64 bits, or characters outside the subset.
pub fn lex(src: &str) -> Result<Vec<Token>, VerilogError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    macro_rules! push {
        ($t:expr) => {
            toks.push(Token { tok: $t, line })
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(VerilogError::at(start_line, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'\\' => {
                let escaped = c == b'\\';
                if escaped {
                    i += 1;
                }
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$'
                        || (escaped && !bytes[i].is_ascii_whitespace()))
                {
                    i += 1;
                }
                let word = &src[start..i];
                if word.is_empty() {
                    return Err(VerilogError::at(line, "empty escaped identifier"));
                }
                match keyword(word) {
                    Some(k) if !escaped => push!(k),
                    _ => push!(Tok::Ident(word.to_owned())),
                }
            }
            b'0'..=b'9' | b'\'' => {
                let (tok, ni) = lex_number(src, i, line)?;
                i = ni;
                push!(tok);
            }
            _ => {
                let (tok, adv) = match c {
                    b'(' => (Tok::LParen, 1),
                    b')' => (Tok::RParen, 1),
                    b'[' => (Tok::LBracket, 1),
                    b']' => (Tok::RBracket, 1),
                    b'{' => (Tok::LBrace, 1),
                    b'}' => (Tok::RBrace, 1),
                    b';' => (Tok::Semi, 1),
                    b':' => (Tok::Colon, 1),
                    b',' => (Tok::Comma, 1),
                    b'.' => (Tok::Dot, 1),
                    b'#' => (Tok::Hash, 1),
                    b'@' => (Tok::At, 1),
                    b'?' => (Tok::Question, 1),
                    b'*' => (Tok::Star, 1),
                    b'/' => (Tok::Slash, 1),
                    b'%' => (Tok::Percent, 1),
                    b'+' => (Tok::Plus, 1),
                    b'-' => (Tok::Minus, 1),
                    b'!' if bytes.get(i + 1) == Some(&b'=') => (Tok::NotEq, 2),
                    b'!' => (Tok::Bang, 1),
                    b'~' => match bytes.get(i + 1) {
                        Some(&b'&') => (Tok::TildeAmp, 2),
                        Some(&b'|') => (Tok::TildePipe, 2),
                        Some(&b'^') => (Tok::TildeCaret, 2),
                        _ => (Tok::Tilde, 1),
                    },
                    b'&' if bytes.get(i + 1) == Some(&b'&') => (Tok::AmpAmp, 2),
                    b'&' => (Tok::Amp, 1),
                    b'|' if bytes.get(i + 1) == Some(&b'|') => (Tok::PipePipe, 2),
                    b'|' => (Tok::Pipe, 1),
                    b'^' if bytes.get(i + 1) == Some(&b'~') => (Tok::TildeCaret, 2),
                    b'^' => (Tok::Caret, 1),
                    b'<' => match bytes.get(i + 1) {
                        Some(&b'<') => (Tok::Shl, 2),
                        Some(&b'=') => (Tok::Le, 2),
                        _ => (Tok::Lt, 1),
                    },
                    b'>' => match bytes.get(i + 1) {
                        Some(&b'>') => (Tok::Shr, 2),
                        Some(&b'=') => (Tok::Ge, 2),
                        _ => (Tok::Gt, 1),
                    },
                    b'=' if bytes.get(i + 1) == Some(&b'=') => (Tok::EqEq, 2),
                    b'=' => (Tok::Eq, 1),
                    b'`' => {
                        // Compiler directives are not part of the subset; the
                        // generator never emits them.
                        return Err(VerilogError::at(
                            line,
                            "compiler directives (`) unsupported",
                        ));
                    }
                    other => {
                        return Err(VerilogError::at(
                            line,
                            format!("unexpected character '{}'", other as char),
                        ));
                    }
                };
                i += adv;
                push!(tok);
            }
        }
    }
    Ok(toks)
}

/// Lexes a numeric literal starting at `i`; returns the token and the index
/// after it.
fn lex_number(src: &str, mut i: usize, line: u32) -> Result<(Tok, usize), VerilogError> {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut width: Option<u32> = None;

    // Optional decimal size prefix.
    if bytes[i].is_ascii_digit() {
        let start = i;
        while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
        let digits: String = src[start..i].chars().filter(|&c| c != '_').collect();
        let val: u64 = digits
            .parse()
            .map_err(|_| VerilogError::at(line, "invalid decimal literal"))?;
        if i < n && bytes[i] == b'\'' {
            if val == 0 || val > 64 {
                return Err(VerilogError::at(
                    line,
                    format!("literal width {val} out of range 1..=64"),
                ));
            }
            width = Some(val as u32);
        } else {
            // Plain decimal number: unsized (32-bit by convention).
            return Ok((
                Tok::Number {
                    width: None,
                    value: val,
                    zmask: 0,
                },
                i,
            ));
        }
    }

    // Based literal: 'b / 'o / 'd / 'h.
    debug_assert_eq!(bytes[i], b'\'');
    i += 1;
    if i >= n {
        return Err(VerilogError::at(line, "truncated based literal"));
    }
    let base_char = bytes[i].to_ascii_lowercase();
    let bits_per_digit = match base_char {
        b'b' => 1,
        b'o' => 3,
        b'd' => 0,
        b'h' => 4,
        _ => {
            return Err(VerilogError::at(
                line,
                format!("unknown base '{}'", base_char as char),
            ))
        }
    };
    i += 1;
    let start = i;
    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'?') {
        i += 1;
    }
    let body: Vec<u8> = src[start..i].bytes().filter(|&c| c != b'_').collect();
    if body.is_empty() {
        return Err(VerilogError::at(line, "based literal has no digits"));
    }

    if bits_per_digit == 0 {
        let digits = std::str::from_utf8(&body).unwrap();
        let value: u64 = digits
            .parse()
            .map_err(|_| VerilogError::at(line, "invalid decimal digits in based literal"))?;
        if let Some(w) = width {
            if w < 64 && value >= (1u64 << w) {
                return Err(VerilogError::at(
                    line,
                    format!("value {value} does not fit in {w} bits"),
                ));
            }
        }
        return Ok((
            Tok::Number {
                width,
                value,
                zmask: 0,
            },
            i,
        ));
    }

    let mut value: u64 = 0;
    let mut zmask: u64 = 0;
    let mut nbits: u32 = 0;
    for &d in &body {
        let (dv, dz) = match d.to_ascii_lowercase() {
            b'0'..=b'9' if (d - b'0') < (1 << bits_per_digit).min(10) => ((d - b'0') as u64, 0u64),
            b'a'..=b'f' if bits_per_digit == 4 => ((d.to_ascii_lowercase() - b'a' + 10) as u64, 0),
            b'x' => (0, 0), // unknown bits lex as 0 (two-valued subset)
            b'z' | b'?' => (0, (1 << bits_per_digit) - 1),
            _ => {
                return Err(VerilogError::at(
                    line,
                    format!("invalid digit '{}' for base", d as char),
                ));
            }
        };
        nbits += bits_per_digit as u32;
        if nbits > 64 {
            return Err(VerilogError::at(line, "literal wider than 64 bits"));
        }
        value = (value << bits_per_digit) | dv;
        zmask = (zmask << bits_per_digit) | dz;
    }
    if let Some(w) = width {
        if w < 64 {
            let mask = (1u64 << w) - 1;
            value &= mask;
            zmask &= mask;
        }
    }
    Ok((
        Tok::Number {
            width,
            value,
            zmask,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("module foo endmodule"),
            vec![Tok::Module, Tok::Ident("foo".into()), Tok::Endmodule]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let tokens = lex("// c1\n/* c2\nc3 */ x").unwrap();
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].tok, Tok::Ident("x".into()));
        assert_eq!(tokens[0].line, 3);
    }

    #[test]
    fn sized_hex_literal() {
        assert_eq!(
            toks("8'hFF"),
            vec![Tok::Number {
                width: Some(8),
                value: 0xFF,
                zmask: 0
            }]
        );
    }

    #[test]
    fn binary_with_underscores_and_z() {
        assert_eq!(
            toks("6'b1_0z?10"),
            vec![Tok::Number {
                width: Some(6),
                value: 0b100010,
                zmask: 0b001100
            }]
        );
    }

    #[test]
    fn plain_decimal_is_unsized() {
        assert_eq!(
            toks("42"),
            vec![Tok::Number {
                width: None,
                value: 42,
                zmask: 0
            }]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            toks("a <= b == c != d >> e << f && g || h ~^ i"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::EqEq,
                Tok::Ident("c".into()),
                Tok::NotEq,
                Tok::Ident("d".into()),
                Tok::Shr,
                Tok::Ident("e".into()),
                Tok::Shl,
                Tok::Ident("f".into()),
                Tok::AmpAmp,
                Tok::Ident("g".into()),
                Tok::PipePipe,
                Tok::Ident("h".into()),
                Tok::TildeCaret,
                Tok::Ident("i".into()),
            ]
        );
    }

    #[test]
    fn reduction_operator_tokens() {
        assert_eq!(
            toks("~& ~| ~^ ^~"),
            vec![
                Tok::TildeAmp,
                Tok::TildePipe,
                Tok::TildeCaret,
                Tok::TildeCaret
            ]
        );
    }

    #[test]
    fn width_overflow_rejected() {
        assert!(lex("80'h0").is_err());
        assert!(lex("8'd300").is_err());
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn dollar_in_identifier() {
        assert_eq!(toks("a$b"), vec![Tok::Ident("a$b".into())]);
    }
}
