//! Word-level RTL intermediate representation.
//!
//! Elaboration lowers the AST into a flat word-level netlist: a DAG of
//! word-sized operations ([`WKind`]) plus a register file ([`WReg`]). This is
//! the representation the BOG bit-blaster consumes, and it doubles as an
//! executable model via [`Netlist::simulator`] (used to cross-check
//! bit-blasting correctness).

use std::collections::HashMap;

/// Node identifier inside a [`Netlist`].
pub type WId = u32;

/// Word-level unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WUnaryOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Reduction AND (1-bit result).
    RedAnd,
    /// Reduction OR (1-bit result).
    RedOr,
    /// Reduction XOR (1-bit result).
    RedXor,
}

/// Word-level binary operators. Comparisons produce 1-bit results; all
/// arithmetic is unsigned and wraps at the node width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WBinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Logical shift left (`a << b`).
    Shl,
    /// Logical shift right (`a >> b`).
    Shr,
    /// Equality (1-bit).
    Eq,
    /// Unsigned less-than (1-bit).
    Lt,
}

/// Word-level node kind.
#[derive(Debug, Clone, PartialEq)]
pub enum WKind {
    /// Primary input.
    Input {
        /// Port name.
        name: String,
    },
    /// Constant.
    Const {
        /// Value (masked to node width).
        value: u64,
    },
    /// Unresolved net placeholder. None remain after successful elaboration.
    Net {
        /// Hierarchical net name (for diagnostics).
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: WUnaryOp,
        /// Operand.
        a: WId,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: WBinaryOp,
        /// Left operand.
        a: WId,
        /// Right operand.
        b: WId,
    },
    /// 2:1 multiplexer; `cond` is 1 bit wide.
    Mux {
        /// Select (1 bit).
        cond: WId,
        /// Value when select is 1.
        t: WId,
        /// Value when select is 0.
        f: WId,
    },
    /// Concatenation, parts stored LSB-first.
    Concat {
        /// Parts, LSB-first.
        parts: Vec<WId>,
    },
    /// Contiguous bit-field extraction starting at `lsb`; the node width is
    /// the field width.
    Slice {
        /// Source.
        a: WId,
        /// Low bit index in the source.
        lsb: u32,
    },
    /// Q output of register `reg`.
    RegQ {
        /// Index into [`Netlist::regs`].
        reg: u32,
    },
}

/// A word-level node.
#[derive(Debug, Clone, PartialEq)]
pub struct WNode {
    /// Operation.
    pub kind: WKind,
    /// Bit width (1..=64).
    pub width: u32,
}

/// A word-level register — this *is* an RTL "sequential signal" in the
/// paper's sense (e.g. `reg [7:0] R1`). Its bits become the bit-wise
/// endpoints of the timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct WReg {
    /// Hierarchical name (e.g. `u0.state`).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// The `RegQ` node reading this register.
    pub q: WId,
    /// Next-state value (D input), valid after elaboration.
    pub next: WId,
    /// Reset/initial value.
    pub init: u64,
    /// 1-based declaration line in the module that declared it.
    pub decl_line: u32,
    /// Whether the register was declared in the top module (directly
    /// annotatable on the top source file).
    pub top_level: bool,
}

/// Mask with the low `w` bits set.
pub fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// One elaboration scope: a module instance in the flattened hierarchy.
/// Scope 0 is the top module; every other scope points at the scope whose
/// instantiation created it, so the ancestor chain recovers the module
/// names a node's elaboration depended on (texts below via the dependency
/// graph, parameters above via the instantiating parents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeInfo {
    /// Name of the module elaborated in this scope.
    pub module: String,
    /// Scope that instantiated this one (`None` for the top).
    pub parent: Option<u32>,
}

/// A flat word-level netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Top module name.
    pub name: String,
    pub(crate) nodes: Vec<WNode>,
    /// Primary input nodes in port order.
    pub(crate) inputs: Vec<WId>,
    /// Primary outputs: (port name, driver).
    pub(crate) outputs: Vec<(String, WId)>,
    pub(crate) regs: Vec<WReg>,
    /// Module-instance scopes; index 0 is the top module.
    pub(crate) scopes: Vec<ScopeInfo>,
    /// Creating scope of each node (aligned with `nodes`).
    pub(crate) node_scope: Vec<u32>,
}

impl Netlist {
    /// Node accessor.
    pub fn node(&self, id: WId) -> &WNode {
        &self.nodes[id as usize]
    }

    /// All nodes (including any unreachable leftovers from elaboration).
    pub fn nodes(&self) -> &[WNode] {
        &self.nodes
    }

    /// Registers — the design's RTL sequential signals.
    pub fn regs(&self) -> &[WReg] {
        &self.regs
    }

    /// Module-instance scopes of the flattened hierarchy (index 0 = top).
    pub fn scopes(&self) -> &[ScopeInfo] {
        &self.scopes
    }

    /// The scope that created node `id`.
    pub fn node_scope(&self, id: WId) -> u32 {
        self.node_scope[id as usize]
    }

    /// Module names along a scope's ancestor chain (scope's own module
    /// first, top last). A node's elaboration is a function of these
    /// modules' sources plus their dependency closures.
    pub fn scope_module_chain(&self, mut scope: u32) -> Vec<&str> {
        let mut chain = Vec::new();
        loop {
            let s = &self.scopes[scope as usize];
            chain.push(s.module.as_str());
            match s.parent {
                Some(p) => scope = p,
                None => return chain,
            }
        }
    }

    /// Primary inputs in port order.
    pub fn inputs(&self) -> &[WId] {
        &self.inputs
    }

    /// Primary outputs `(name, driver)` in port order.
    pub fn outputs(&self) -> &[(String, WId)] {
        &self.outputs
    }

    /// Input port name of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an `Input` node.
    pub fn input_name(&self, id: WId) -> &str {
        match &self.node(id).kind {
            WKind::Input { name } => name,
            other => panic!("node {id} is not an input: {other:?}"),
        }
    }

    /// Fanin node ids of `id` (registers' Q nodes have no combinational
    /// fanin; their `next` pointer is reached via [`Self::roots`]).
    pub fn fanins(&self, id: WId) -> Vec<WId> {
        match &self.node(id).kind {
            WKind::Input { .. } | WKind::Const { .. } | WKind::Net { .. } | WKind::RegQ { .. } => {
                Vec::new()
            }
            WKind::Unary { a, .. } | WKind::Slice { a, .. } => vec![*a],
            WKind::Binary { a, b, .. } => vec![*a, *b],
            WKind::Mux { cond, t, f } => vec![*cond, *t, *f],
            WKind::Concat { parts } => parts.clone(),
        }
    }

    /// Evaluation roots: primary outputs plus every register's next-state.
    pub fn roots(&self) -> Vec<WId> {
        self.outputs
            .iter()
            .map(|(_, id)| *id)
            .chain(self.regs.iter().map(|r| r.next))
            .collect()
    }

    /// Topological order over all nodes reachable from the roots
    /// (fanins first). Register Q nodes and inputs appear as leaves.
    ///
    /// # Panics
    ///
    /// Panics on a combinational cycle (elaboration guarantees none).
    pub fn topo_order(&self) -> Vec<WId> {
        let mut state = vec![0u8; self.nodes.len()]; // 0 unseen, 1 open, 2 done
        let mut order = Vec::new();
        let mut stack: Vec<(WId, usize)> = Vec::new();
        for root in self.roots() {
            if state[root as usize] == 2 {
                continue;
            }
            stack.push((root, 0));
            state[root as usize] = 1;
            while let Some(top) = stack.last_mut() {
                let id = top.0;
                let fis = self.fanins(id);
                if top.1 < fis.len() {
                    let f = fis[top.1];
                    top.1 += 1;
                    match state[f as usize] {
                        0 => {
                            state[f as usize] = 1;
                            stack.push((f, 0));
                        }
                        1 => panic!("combinational cycle at node {f}"),
                        _ => {}
                    }
                } else {
                    state[id as usize] = 2;
                    order.push(id);
                    stack.pop();
                }
            }
        }
        order
    }

    /// Counts of reachable nodes by coarse category:
    /// `(word ops, constants, inputs, registers)`.
    pub fn stats(&self) -> NetlistStats {
        let order = self.topo_order();
        let mut s = NetlistStats::default();
        for &id in &order {
            match &self.node(id).kind {
                WKind::Input { .. } => s.inputs += 1,
                WKind::Const { .. } => s.consts += 1,
                WKind::RegQ { .. } => {}
                WKind::Net { .. } => {}
                _ => s.ops += 1,
            }
        }
        s.regs = self.regs.len();
        s.reg_bits = self.regs.iter().map(|r| r.width as usize).sum();
        s
    }

    /// Builds a reusable functional simulator.
    pub fn simulator(&self) -> WordSim<'_> {
        WordSim::new(self)
    }
}

/// Coarse size statistics of a netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Reachable word-level operation nodes.
    pub ops: usize,
    /// Reachable constants.
    pub consts: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Word registers (RTL sequential signals).
    pub regs: usize,
    /// Total register bits (bit-wise endpoints).
    pub reg_bits: usize,
}

/// Cycle-accurate word-level functional simulator.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), rtlt_verilog::VerilogError> {
/// let n = rtlt_verilog::compile(
///     "module inc(input clk, input [3:0] d, output [3:0] q);
///        reg [3:0] r;
///        always @(posedge clk) r <= d + 4'd1;
///        assign q = r;
///      endmodule",
///     "inc",
/// )?;
/// let mut sim = n.simulator();
/// sim.set_input("d", 6);
/// sim.step();
/// assert_eq!(sim.output("q"), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WordSim<'a> {
    netlist: &'a Netlist,
    order: Vec<WId>,
    values: Vec<u64>,
    reg_state: Vec<u64>,
    input_values: HashMap<String, u64>,
}

impl<'a> WordSim<'a> {
    fn new(netlist: &'a Netlist) -> Self {
        let order = netlist.topo_order();
        let reg_state = netlist
            .regs
            .iter()
            .map(|r| r.init & mask(r.width))
            .collect();
        WordSim {
            netlist,
            order,
            values: vec![0; netlist.nodes.len()],
            reg_state,
            input_values: HashMap::new(),
        }
    }

    /// Sets a primary input for subsequent cycles.
    pub fn set_input(&mut self, name: &str, value: u64) {
        self.input_values.insert(name.to_owned(), value);
    }

    /// Resets registers to their init values.
    pub fn reset(&mut self) {
        for (s, r) in self.reg_state.iter_mut().zip(&self.netlist.regs) {
            *s = r.init & mask(r.width);
        }
    }

    /// Evaluates combinational logic, advances registers by one clock, and
    /// re-settles so outputs reflect the post-edge state.
    pub fn step(&mut self) {
        self.settle();
        let next: Vec<u64> = self
            .netlist
            .regs
            .iter()
            .map(|r| self.values[r.next as usize] & mask(r.width))
            .collect();
        self.reg_state = next;
        self.settle();
    }

    /// Evaluates combinational logic without clocking registers.
    pub fn settle(&mut self) {
        for &id in &self.order {
            let node = &self.netlist.nodes[id as usize];
            let w = node.width;
            let v = match &node.kind {
                WKind::Input { name } => self.input_values.get(name).copied().unwrap_or(0),
                WKind::Const { value } => *value,
                WKind::Net { name } => panic!("unresolved net {name} in simulation"),
                WKind::RegQ { reg } => self.reg_state[*reg as usize],
                WKind::Unary { op, a } => {
                    let av = self.values[*a as usize];
                    let aw = self.netlist.nodes[*a as usize].width;
                    match op {
                        WUnaryOp::Not => !av,
                        WUnaryOp::Neg => av.wrapping_neg(),
                        WUnaryOp::RedAnd => (av == mask(aw)) as u64,
                        WUnaryOp::RedOr => (av != 0) as u64,
                        WUnaryOp::RedXor => (av.count_ones() & 1) as u64,
                    }
                }
                WKind::Binary { op, a, b } => {
                    let av = self.values[*a as usize];
                    let bv = self.values[*b as usize];
                    match op {
                        WBinaryOp::And => av & bv,
                        WBinaryOp::Or => av | bv,
                        WBinaryOp::Xor => av ^ bv,
                        WBinaryOp::Add => av.wrapping_add(bv),
                        WBinaryOp::Sub => av.wrapping_sub(bv),
                        WBinaryOp::Mul => av.wrapping_mul(bv),
                        WBinaryOp::Shl => {
                            if bv >= 64 {
                                0
                            } else {
                                av << bv
                            }
                        }
                        WBinaryOp::Shr => {
                            if bv >= 64 {
                                0
                            } else {
                                av >> bv
                            }
                        }
                        WBinaryOp::Eq => (av == bv) as u64,
                        WBinaryOp::Lt => (av < bv) as u64,
                    }
                }
                WKind::Mux { cond, t, f } => {
                    if self.values[*cond as usize] & 1 == 1 {
                        self.values[*t as usize]
                    } else {
                        self.values[*f as usize]
                    }
                }
                WKind::Concat { parts } => {
                    let mut acc = 0u64;
                    let mut shift = 0u32;
                    for &p in parts {
                        let pw = self.netlist.nodes[p as usize].width;
                        acc |= (self.values[p as usize] & mask(pw)) << shift;
                        shift += pw;
                    }
                    acc
                }
                WKind::Slice { a, lsb } => self.values[*a as usize] >> lsb,
            };
            self.values[id as usize] = v & mask(w);
        }
    }

    /// Reads a primary output after [`Self::settle`]/[`Self::step`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an output port.
    pub fn output(&self, name: &str) -> u64 {
        let (_, id) = self
            .netlist
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output port {name}"));
        self.values[*id as usize]
    }

    /// Current register state by register index.
    pub fn reg_value(&self, reg: usize) -> u64 {
        self.reg_state[reg]
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn simulator_counter_counts() {
        let n = compile(
            "module c(input clk, input rst, output [3:0] q);
               reg [3:0] cnt;
               always @(posedge clk)
                 if (rst) cnt <= 4'd0; else cnt <= cnt + 4'd1;
               assign q = cnt;
             endmodule",
            "c",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("rst", 1);
        sim.step();
        sim.set_input("rst", 0);
        for _ in 0..5 {
            sim.step();
        }
        sim.settle();
        assert_eq!(sim.output("q"), 5);
    }

    #[test]
    fn wrapping_arithmetic_masks_to_width() {
        let n = compile(
            "module a(input [3:0] x, input [3:0] y, output [3:0] s);
               assign s = x + y;
             endmodule",
            "a",
        )
        .unwrap();
        let mut sim = n.simulator();
        sim.set_input("x", 12);
        sim.set_input("y", 9);
        sim.settle();
        assert_eq!(sim.output("s"), (12 + 9) & 0xF);
    }

    #[test]
    fn stats_count_endpoints() {
        let n = compile(
            "module s(input clk, input [7:0] d, output [7:0] q);
               reg [7:0] a;
               reg [7:0] b;
               always @(posedge clk) begin a <= d; b <= a; end
               assign q = b;
             endmodule",
            "s",
        )
        .unwrap();
        let st = n.stats();
        assert_eq!(st.regs, 2);
        assert_eq!(st.reg_bits, 16);
    }
}
