//! Frontend error type.

use std::error::Error;
use std::fmt;

/// Error raised by the Verilog frontend (lexing, parsing or elaboration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogError {
    /// 1-based source line, when known.
    pub line: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl VerilogError {
    /// Creates an error tied to a source line.
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        VerilogError {
            line: Some(line),
            message: message.into(),
        }
    }

    /// Creates an error with no specific source location.
    pub fn general(message: impl Into<String>) -> Self {
        VerilogError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl Error for VerilogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = VerilogError::at(7, "unexpected token");
        assert_eq!(e.to_string(), "line 7: unexpected token");
        let g = VerilogError::general("no top module");
        assert_eq!(g.to_string(), "no top module");
    }
}
