//! Recursive-descent parser for the Verilog subset.

use crate::ast::*;
use crate::error::VerilogError;
use crate::lexer::{lex, Tok, Token};

/// Parses Verilog source into a [`SourceFile`].
///
/// # Errors
///
/// Returns the first lexical or syntax error with its source line.
pub fn parse(source: &str) -> Result<SourceFile, VerilogError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let mut modules = Vec::new();
    while p.peek().is_some() {
        modules.push(p.module()?);
    }
    Ok(SourceFile { modules })
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), VerilogError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> VerilogError {
        VerilogError::at(self.line(), msg)
    }

    fn ident(&mut self) -> Result<String, VerilogError> {
        match self.bump() {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found {:?}",
                other.map(|t| t.tok)
            ))),
        }
    }

    // ---- modules --------------------------------------------------------

    fn module(&mut self) -> Result<Module, VerilogError> {
        let line = self.line();
        self.expect(Tok::Module)?;
        let name = self.ident()?;
        let mut items: Vec<Item> = Vec::new();
        let mut port_order: Vec<String> = Vec::new();

        // Optional parameter header `#( parameter P = e, ... )`.
        if self.eat(&Tok::Hash) {
            self.expect(Tok::LParen)?;
            loop {
                let pline = self.line();
                let local = match self.peek() {
                    Some(Tok::Parameter) => {
                        self.bump();
                        false
                    }
                    Some(Tok::Localparam) => {
                        self.bump();
                        true
                    }
                    _ => false,
                };
                let pname = self.ident()?;
                self.expect(Tok::Eq)?;
                let value = self.expr()?;
                items.push(Item::ParamDecl {
                    name: pname,
                    value,
                    local,
                    line: pline,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }

        // Optional port header: ANSI or plain name list.
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                match self.peek() {
                    Some(Tok::Input) | Some(Tok::Output) => {
                        let (decl, names) = self.ansi_port_decl()?;
                        port_order.extend(names);
                        items.push(decl);
                    }
                    Some(Tok::Ident(_)) => {
                        port_order.push(self.ident()?);
                    }
                    _ => return Err(self.err("expected port declaration")),
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::Semi)?;

        while self.peek() != Some(&Tok::Endmodule) {
            if self.peek().is_none() {
                return Err(self.err(format!("missing endmodule for module {name}")));
            }
            items.push(self.item()?);
        }
        self.expect(Tok::Endmodule)?;
        Ok(Module {
            name,
            port_order,
            items,
            line,
        })
    }

    /// One ANSI header port entry: `input [7:0] a` (single name; additional
    /// comma-separated names are handled by the caller loop re-entering on
    /// direction keywords or bare identifiers continuing the previous decl —
    /// for simplicity each entry here carries exactly one name).
    fn ansi_port_decl(&mut self) -> Result<(Item, Vec<String>), VerilogError> {
        let line = self.line();
        let dir = match self.bump().map(|t| t.tok) {
            Some(Tok::Input) => Dir::Input,
            Some(Tok::Output) => Dir::Output,
            _ => return Err(self.err("expected input/output")),
        };
        let reg = self.eat(&Tok::Reg);
        if self.eat(&Tok::Wire) {
            // `input wire x` — wire is the default; accept and ignore.
        }
        let range = self.opt_range()?;
        let name = self.ident()?;
        Ok((
            Item::PortDecl {
                dir,
                reg,
                range,
                names: vec![name.clone()],
                line,
            },
            vec![name],
        ))
    }

    fn opt_range(&mut self) -> Result<Option<(Expr, Expr)>, VerilogError> {
        if self.eat(&Tok::LBracket) {
            let msb = self.expr()?;
            self.expect(Tok::Colon)?;
            let lsb = self.expr()?;
            self.expect(Tok::RBracket)?;
            Ok(Some((msb, lsb)))
        } else {
            Ok(None)
        }
    }

    // ---- items ----------------------------------------------------------

    fn item(&mut self) -> Result<Item, VerilogError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Input) | Some(Tok::Output) => {
                let dir = if matches!(self.bump().unwrap().tok, Tok::Input) {
                    Dir::Input
                } else {
                    Dir::Output
                };
                let reg = self.eat(&Tok::Reg);
                let range = self.opt_range()?;
                let names = self.name_list()?;
                self.expect(Tok::Semi)?;
                Ok(Item::PortDecl {
                    dir,
                    reg,
                    range,
                    names,
                    line,
                })
            }
            Some(Tok::Wire) | Some(Tok::Reg) => {
                let kind = if matches!(self.bump().unwrap().tok, Tok::Wire) {
                    NetKind::Wire
                } else {
                    NetKind::Reg
                };
                let range = self.opt_range()?;
                let names = self.name_list()?;
                self.expect(Tok::Semi)?;
                Ok(Item::NetDecl {
                    kind,
                    range,
                    names,
                    line,
                })
            }
            Some(Tok::Parameter) | Some(Tok::Localparam) => {
                let local = matches!(self.bump().unwrap().tok, Tok::Localparam);
                let name = self.ident()?;
                self.expect(Tok::Eq)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Item::ParamDecl {
                    name,
                    value,
                    local,
                    line,
                })
            }
            Some(Tok::Assign) => {
                self.bump();
                let lhs = self.lvalue()?;
                self.expect(Tok::Eq)?;
                let rhs = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Item::Assign { lhs, rhs, line })
            }
            Some(Tok::Always) => {
                self.bump();
                let sens = self.sensitivity()?;
                let body = self.stmt()?;
                Ok(Item::Always(AlwaysBlock { sens, body, line }))
            }
            Some(Tok::Ident(_)) => self.instance(line),
            other => Err(self.err(format!("unexpected item start: {other:?}"))),
        }
    }

    fn name_list(&mut self) -> Result<Vec<String>, VerilogError> {
        let mut names = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            names.push(self.ident()?);
        }
        Ok(names)
    }

    fn sensitivity(&mut self) -> Result<Sensitivity, VerilogError> {
        self.expect(Tok::At)?;
        self.expect(Tok::LParen)?;
        if self.eat(&Tok::Star) {
            self.expect(Tok::RParen)?;
            return Ok(Sensitivity::Comb);
        }
        // Either an edge list or a plain signal list (combinational).
        match self.peek() {
            Some(Tok::Posedge) | Some(Tok::Negedge) => {
                let mut edges = Vec::new();
                loop {
                    let kind = match self.bump().map(|t| t.tok) {
                        Some(Tok::Posedge) => EdgeKind::Pos,
                        Some(Tok::Negedge) => EdgeKind::Neg,
                        _ => return Err(self.err("expected posedge/negedge")),
                    };
                    edges.push((kind, self.ident()?));
                    if !(self.eat(&Tok::OrKw) || self.eat(&Tok::Comma)) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Sensitivity::Edges(edges))
            }
            _ => {
                // `@(a or b or c)` — level-sensitive list; treated as comb.
                loop {
                    self.ident()?;
                    if !(self.eat(&Tok::OrKw) || self.eat(&Tok::Comma)) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Sensitivity::Comb)
            }
        }
    }

    fn instance(&mut self, line: u32) -> Result<Item, VerilogError> {
        let module = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&Tok::Hash) {
            self.expect(Tok::LParen)?;
            loop {
                self.expect(Tok::Dot)?;
                let pname = self.ident()?;
                self.expect(Tok::LParen)?;
                let value = self.expr()?;
                self.expect(Tok::RParen)?;
                params.push((pname, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let conns = if self.peek() == Some(&Tok::Dot) {
            let mut named = Vec::new();
            loop {
                self.expect(Tok::Dot)?;
                let pname = self.ident()?;
                self.expect(Tok::LParen)?;
                let e = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::RParen)?;
                named.push((pname, e));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            Connections::Named(named)
        } else if self.peek() == Some(&Tok::RParen) {
            Connections::Ordered(Vec::new())
        } else {
            let mut exprs = vec![self.expr()?];
            while self.eat(&Tok::Comma) {
                exprs.push(self.expr()?);
            }
            Connections::Ordered(exprs)
        };
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        Ok(Item::Instance {
            module,
            name,
            params,
            conns,
            line,
        })
    }

    // ---- statements -----------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, VerilogError> {
        match self.peek() {
            Some(Tok::Begin) => {
                self.bump();
                // Optional block label `begin : name`.
                if self.eat(&Tok::Colon) {
                    self.ident()?;
                }
                let mut stmts = Vec::new();
                while self.peek() != Some(&Tok::End) {
                    if self.peek().is_none() {
                        return Err(self.err("missing end"));
                    }
                    stmts.push(self.stmt()?);
                }
                self.bump();
                Ok(Stmt::Block(stmts))
            }
            Some(Tok::If) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_br = Box::new(self.stmt()?);
                let else_br = if self.eat(&Tok::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_br,
                    else_br,
                })
            }
            Some(Tok::Case) | Some(Tok::Casez) => {
                let wildcard = matches!(self.bump().unwrap().tok, Tok::Casez);
                self.expect(Tok::LParen)?;
                let subject = self.expr()?;
                self.expect(Tok::RParen)?;
                let mut arms = Vec::new();
                let mut default = None;
                while self.peek() != Some(&Tok::Endcase) {
                    if self.peek().is_none() {
                        return Err(self.err("missing endcase"));
                    }
                    if self.eat(&Tok::Default) {
                        self.eat(&Tok::Colon);
                        default = Some(Box::new(self.stmt()?));
                    } else {
                        let mut labels = vec![self.expr()?];
                        while self.eat(&Tok::Comma) {
                            labels.push(self.expr()?);
                        }
                        self.expect(Tok::Colon)?;
                        let body = self.stmt()?;
                        arms.push(CaseArm { labels, body });
                    }
                }
                self.bump();
                Ok(Stmt::Case {
                    wildcard,
                    subject,
                    arms,
                    default,
                })
            }
            Some(Tok::Semi) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                let line = self.line();
                let lhs = self.lvalue()?;
                let blocking = match self.bump().map(|t| t.tok) {
                    Some(Tok::Eq) => true,
                    Some(Tok::Le) => false,
                    other => return Err(self.err(format!("expected = or <=, found {other:?}"))),
                };
                let rhs = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assign {
                    lhs,
                    rhs,
                    blocking,
                    line,
                })
            }
        }
    }

    fn lvalue(&mut self) -> Result<LValue, VerilogError> {
        if self.eat(&Tok::LBrace) {
            let mut parts = vec![self.lvalue()?];
            while self.eat(&Tok::Comma) {
                parts.push(self.lvalue()?);
            }
            self.expect(Tok::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.ident()?;
        if self.eat(&Tok::LBracket) {
            let first = self.expr()?;
            if self.eat(&Tok::Colon) {
                let lsb = self.expr()?;
                self.expect(Tok::RBracket)?;
                Ok(LValue::Part {
                    name,
                    msb: first,
                    lsb,
                })
            } else {
                self.expect(Tok::RBracket)?;
                Ok(LValue::Bit { name, index: first })
            }
        } else {
            Ok(LValue::Ident(name))
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, VerilogError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, VerilogError> {
        let cond = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let then_e = self.expr()?;
            self.expect(Tok::Colon)?;
            let else_e = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser. Levels (low → high):
    /// `||`, `&&`, `|`, `^ ~^`, `&`, `== !=`, `< <= > >=`, `<< >>`, `+ -`, `*`.
    fn binary(&mut self, min_level: u8) -> Result<Expr, VerilogError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek() {
                Some(Tok::PipePipe) => (BinaryOp::LogOr, 0),
                Some(Tok::AmpAmp) => (BinaryOp::LogAnd, 1),
                Some(Tok::Pipe) => (BinaryOp::Or, 2),
                Some(Tok::Caret) => (BinaryOp::Xor, 3),
                Some(Tok::TildeCaret) => (BinaryOp::Xnor, 3),
                Some(Tok::Amp) => (BinaryOp::And, 4),
                Some(Tok::EqEq) => (BinaryOp::Eq, 5),
                Some(Tok::NotEq) => (BinaryOp::Ne, 5),
                Some(Tok::Lt) => (BinaryOp::Lt, 6),
                Some(Tok::Le) => (BinaryOp::Le, 6),
                Some(Tok::Gt) => (BinaryOp::Gt, 6),
                Some(Tok::Ge) => (BinaryOp::Ge, 6),
                Some(Tok::Shl) => (BinaryOp::Shl, 7),
                Some(Tok::Shr) => (BinaryOp::Shr, 7),
                Some(Tok::Plus) => (BinaryOp::Add, 8),
                Some(Tok::Minus) => (BinaryOp::Sub, 8),
                Some(Tok::Star) => (BinaryOp::Mul, 9),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, VerilogError> {
        let op = match self.peek() {
            Some(Tok::Bang) => Some(UnaryOp::LogNot),
            Some(Tok::Tilde) => Some(UnaryOp::BitNot),
            Some(Tok::Minus) => Some(UnaryOp::Neg),
            Some(Tok::Plus) => {
                self.bump();
                return self.unary();
            }
            Some(Tok::Amp) => Some(UnaryOp::RedAnd),
            Some(Tok::Pipe) => Some(UnaryOp::RedOr),
            Some(Tok::Caret) => Some(UnaryOp::RedXor),
            Some(Tok::TildeAmp) => Some(UnaryOp::RedNand),
            Some(Tok::TildePipe) => Some(UnaryOp::RedNor),
            Some(Tok::TildeCaret) => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, VerilogError> {
        match self.peek().cloned() {
            Some(Tok::Number {
                width,
                value,
                zmask,
            }) => {
                self.bump();
                Ok(Expr::Number {
                    width,
                    value,
                    zmask,
                })
            }
            Some(Tok::Ident(_)) => {
                let name = self.ident()?;
                if self.eat(&Tok::LBracket) {
                    let first = self.expr()?;
                    if self.eat(&Tok::Colon) {
                        let lsb = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        Ok(Expr::Part {
                            base: name,
                            msb: Box::new(first),
                            lsb: Box::new(lsb),
                        })
                    } else {
                        self.expect(Tok::RBracket)?;
                        Ok(Expr::Bit {
                            base: name,
                            index: Box::new(first),
                        })
                    }
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LBrace) => {
                self.bump();
                let first = self.expr()?;
                if self.peek() == Some(&Tok::LBrace) {
                    // `{n{e}}` replication.
                    self.bump();
                    let inner = self.expr()?;
                    self.expect(Tok::RBrace)?;
                    self.expect(Tok::RBrace)?;
                    return Ok(Expr::Repeat {
                        count: Box::new(first),
                        inner: Box::new(inner),
                    });
                }
                let mut parts = vec![first];
                while self.eat(&Tok::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect(Tok::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> SourceFile {
        parse(src).expect("parse failure")
    }

    #[test]
    fn minimal_module() {
        let f = parse_ok("module m; endmodule");
        assert_eq!(f.modules.len(), 1);
        assert_eq!(f.modules[0].name, "m");
    }

    #[test]
    fn ansi_ports() {
        let f = parse_ok("module m(input clk, input [7:0] a, output reg [3:0] q); endmodule");
        let m = &f.modules[0];
        assert_eq!(m.port_order, vec!["clk", "a", "q"]);
        assert_eq!(m.items.len(), 3);
        match &m.items[2] {
            Item::PortDecl {
                dir: Dir::Output,
                reg: true,
                range: Some(_),
                names,
                ..
            } => {
                assert_eq!(names, &vec!["q".to_string()]);
            }
            other => panic!("bad item {other:?}"),
        }
    }

    #[test]
    fn non_ansi_ports() {
        let f = parse_ok(
            "module m(clk, q);
               input clk;
               output [3:0] q;
             endmodule",
        );
        assert_eq!(f.modules[0].port_order, vec!["clk", "q"]);
    }

    #[test]
    fn parameter_header_and_body() {
        let f = parse_ok(
            "module m #(parameter W = 8) ();
               localparam D = W * 2;
             endmodule",
        );
        let m = &f.modules[0];
        assert!(matches!(&m.items[0], Item::ParamDecl { name, local: false, .. } if name == "W"));
        assert!(matches!(&m.items[1], Item::ParamDecl { name, local: true, .. } if name == "D"));
    }

    #[test]
    fn precedence_mul_over_add() {
        let f = parse_ok("module m; wire [7:0] x; assign x = a + b * c; endmodule");
        let Item::Assign { rhs, .. } = &f.modules[0].items[1] else {
            panic!()
        };
        match rhs {
            Expr::Binary {
                op: BinaryOp::Add,
                rhs: r,
                ..
            } => {
                assert!(matches!(
                    **r,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("bad expr {other:?}"),
        }
    }

    #[test]
    fn ternary_and_comparison() {
        let f = parse_ok("module m; wire x; assign x = a < b ? c : d; endmodule");
        let Item::Assign { rhs, .. } = &f.modules[0].items[1] else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Ternary { .. }));
    }

    #[test]
    fn concat_and_repeat() {
        let f = parse_ok("module m; wire [15:0] x; assign x = {a, 3'b101, {4{b}}}; endmodule");
        let Item::Assign { rhs, .. } = &f.modules[0].items[1] else {
            panic!()
        };
        let Expr::Concat(parts) = rhs else {
            panic!("not concat")
        };
        assert_eq!(parts.len(), 3);
        assert!(matches!(parts[2], Expr::Repeat { .. }));
    }

    #[test]
    fn always_posedge_with_reset_edge() {
        let f = parse_ok(
            "module m;
               reg q;
               always @(posedge clk or posedge rst)
                 if (rst) q <= 1'b0; else q <= d;
             endmodule",
        );
        let Item::Always(a) = &f.modules[0].items[1] else {
            panic!()
        };
        match &a.sens {
            Sensitivity::Edges(e) => assert_eq!(e.len(), 2),
            _ => panic!("expected edges"),
        }
    }

    #[test]
    fn always_comb_star() {
        let f = parse_ok("module m; reg x; always @(*) x = y & z; endmodule");
        let Item::Always(a) = &f.modules[0].items[1] else {
            panic!()
        };
        assert_eq!(a.sens, Sensitivity::Comb);
    }

    #[test]
    fn case_statement() {
        let f = parse_ok(
            "module m;
               reg [1:0] y;
               always @(*)
                 case (s)
                   2'd0: y = a;
                   2'd1, 2'd2: y = b;
                   default: y = c;
                 endcase
             endmodule",
        );
        let Item::Always(a) = &f.modules[0].items[1] else {
            panic!()
        };
        let Stmt::Case {
            arms,
            default,
            wildcard,
            ..
        } = &a.body
        else {
            panic!()
        };
        assert!(!wildcard);
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].labels.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn casez_wildcard_labels() {
        let f = parse_ok(
            "module m;
               reg [1:0] y;
               always @(*)
                 casez (s)
                   4'b1???: y = 2'd3;
                   default: y = 2'd0;
                 endcase
             endmodule",
        );
        let Item::Always(a) = &f.modules[0].items[1] else {
            panic!()
        };
        let Stmt::Case { wildcard, arms, .. } = &a.body else {
            panic!()
        };
        assert!(*wildcard);
        match &arms[0].labels[0] {
            Expr::Number { zmask, .. } => assert_eq!(*zmask, 0b0111),
            other => panic!("bad label {other:?}"),
        }
    }

    #[test]
    fn named_instance_with_params() {
        let f = parse_ok(
            "module m;
               sub #(.W(8), .D(2)) u0 (.clk(clk), .a(x), .q(y));
             endmodule",
        );
        let Item::Instance {
            module,
            name,
            params,
            conns,
            ..
        } = &f.modules[0].items[0]
        else {
            panic!()
        };
        assert_eq!(module, "sub");
        assert_eq!(name, "u0");
        assert_eq!(params.len(), 2);
        match conns {
            Connections::Named(c) => assert_eq!(c.len(), 3),
            _ => panic!("expected named"),
        }
    }

    #[test]
    fn ordered_instance() {
        let f = parse_ok("module m; sub u0 (a, b, c); endmodule");
        let Item::Instance { conns, .. } = &f.modules[0].items[0] else {
            panic!()
        };
        match conns {
            Connections::Ordered(c) => assert_eq!(c.len(), 3),
            _ => panic!("expected ordered"),
        }
    }

    #[test]
    fn lvalue_forms() {
        let f = parse_ok(
            "module m;
               assign x = 1'b0;
               assign y[3] = a;
               assign z[7:4] = b;
               assign {c, d} = e;
             endmodule",
        );
        let kinds: Vec<_> = f.modules[0]
            .items
            .iter()
            .map(|i| match i {
                Item::Assign { lhs, .. } => match lhs {
                    LValue::Ident(_) => "id",
                    LValue::Bit { .. } => "bit",
                    LValue::Part { .. } => "part",
                    LValue::Concat(_) => "cat",
                },
                _ => "?",
            })
            .collect();
        assert_eq!(kinds, vec!["id", "bit", "part", "cat"]);
    }

    #[test]
    fn reduction_vs_binary_ampersand() {
        let f = parse_ok("module m; assign x = &a; assign y = a & b; endmodule");
        let Item::Assign { rhs: r0, .. } = &f.modules[0].items[0] else {
            panic!()
        };
        assert!(matches!(
            r0,
            Expr::Unary {
                op: UnaryOp::RedAnd,
                ..
            }
        ));
        let Item::Assign { rhs: r1, .. } = &f.modules[0].items[1] else {
            panic!()
        };
        assert!(matches!(
            r1,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn dynamic_bit_select() {
        let f = parse_ok("module m; assign x = v[i]; endmodule");
        let Item::Assign { rhs, .. } = &f.modules[0].items[0] else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Bit { .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("module m;\n  assign = 1;\nendmodule").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn missing_endmodule() {
        assert!(parse("module m; wire x;").is_err());
    }
}
