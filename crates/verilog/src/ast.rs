//! Abstract syntax tree for the Verilog subset.

/// A parsed source file: an ordered list of module declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// A module declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header port order (names only; directions/widths from declarations).
    pub port_order: Vec<String>,
    /// Body items in source order.
    pub items: Vec<Item>,
    /// 1-based line of the `module` keyword.
    pub line: u32,
}

/// Signal storage class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `wire`/`reg` declaration (possibly with a range and several names).
    NetDecl {
        /// Storage class.
        kind: NetKind,
        /// `[msb:lsb]` bounds, constant expressions.
        range: Option<(Expr, Expr)>,
        /// Declared names.
        names: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// `input`/`output` declaration (header-style or body-style).
    PortDecl {
        /// Direction.
        dir: Dir,
        /// Declared also as `reg` (only valid for outputs).
        reg: bool,
        /// `[msb:lsb]` bounds.
        range: Option<(Expr, Expr)>,
        /// Declared names.
        names: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// `parameter` / `localparam`.
    ParamDecl {
        /// Parameter name.
        name: String,
        /// Default value (constant expression).
        value: Expr,
        /// `localparam` (not overridable).
        local: bool,
        /// Source line.
        line: u32,
    },
    /// `assign lhs = rhs;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Driven expression.
        rhs: Expr,
        /// Source line.
        line: u32,
    },
    /// `always` block.
    Always(AlwaysBlock),
    /// Module instantiation.
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name.
        name: String,
        /// `#(.P(expr), …)` overrides.
        params: Vec<(String, Expr)>,
        /// Port connections.
        conns: Connections,
        /// Source line.
        line: u32,
    },
}

/// Instance port connections.
#[derive(Debug, Clone, PartialEq)]
pub enum Connections {
    /// `.port(expr)` style; `None` expression means unconnected.
    Named(Vec<(String, Option<Expr>)>),
    /// Positional style.
    Ordered(Vec<Expr>),
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysBlock {
    /// Sensitivity list.
    pub sens: Sensitivity,
    /// Body statement.
    pub body: Stmt,
    /// Source line.
    pub line: u32,
}

/// Clock edge polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

/// Sensitivity list of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@(*)` or `@(a or b or …)` — combinational.
    Comb,
    /// `@(posedge clk)` possibly with additional (reset) edges.
    Edges(Vec<(EdgeKind, String)>),
}

/// Procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin … end`
    Block(Vec<Stmt>),
    /// `if (cond) … [else …]`
    If {
        /// Condition (truthiness = reduction OR).
        cond: Expr,
        /// Taken branch.
        then_br: Box<Stmt>,
        /// Optional else branch.
        else_br: Option<Box<Stmt>>,
    },
    /// `case`/`casez`.
    Case {
        /// `true` for `casez` (labels may contain `z`/`?` don't-cares).
        wildcard: bool,
        /// Scrutinee.
        subject: Expr,
        /// Arms in source order (first match wins).
        arms: Vec<CaseArm>,
        /// `default:` body.
        default: Option<Box<Stmt>>,
    },
    /// Procedural assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
        /// `=` (blocking) vs `<=` (non-blocking).
        blocking: bool,
        /// Source line.
        line: u32,
    },
    /// `;`
    Empty,
}

/// One `case` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Comma-separated labels.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Whole signal.
    Ident(String),
    /// Single bit `name[idx]` (constant index).
    Bit {
        /// Signal name.
        name: String,
        /// Bit index (constant expression).
        index: Expr,
    },
    /// Part select `name[msb:lsb]` (constant bounds).
    Part {
        /// Signal name.
        name: String,
        /// MSB bound.
        msb: Expr,
        /// LSB bound.
        lsb: Expr,
    },
    /// `{a, b, …}` concatenation of targets (MSB first).
    Concat(Vec<LValue>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `!` logical negation.
    LogNot,
    /// `~` bitwise complement.
    BitNot,
    /// `-` two's complement negate.
    Neg,
    /// `&` reduction AND.
    RedAnd,
    /// `|` reduction OR.
    RedOr,
    /// `^` reduction XOR.
    RedXor,
    /// `~&` reduction NAND.
    RedNand,
    /// `~|` reduction NOR.
    RedNor,
    /// `~^` / `^~` reduction XNOR.
    RedXnor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^` / `^~`
    Xnor,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Signal or parameter reference.
    Ident(String),
    /// Numeric literal.
    Number {
        /// Explicit width, if sized.
        width: Option<u32>,
        /// Value.
        value: u64,
        /// Don't-care bits (`casez` labels only).
        zmask: u64,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? t : f`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_e: Box<Expr>,
        /// Value when false.
        else_e: Box<Expr>,
    },
    /// `{a, b, …}` (MSB first, as written).
    Concat(Vec<Expr>),
    /// `{n{e}}` replication.
    Repeat {
        /// Replication count (constant).
        count: Box<Expr>,
        /// Replicated expression.
        inner: Box<Expr>,
    },
    /// `name[idx]` bit select (index may be a signal → dynamic select).
    Bit {
        /// Signal name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `name[msb:lsb]` constant part select.
    Part {
        /// Signal name.
        base: String,
        /// MSB bound (constant).
        msb: Box<Expr>,
        /// LSB bound (constant).
        lsb: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an unsized literal.
    pub fn num(value: u64) -> Expr {
        Expr::Number {
            width: None,
            value,
            zmask: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_file_module_lookup() {
        let m = Module {
            name: "m".into(),
            port_order: vec![],
            items: vec![],
            line: 1,
        };
        let f = SourceFile { modules: vec![m] };
        assert!(f.module("m").is_some());
        assert!(f.module("n").is_none());
    }

    #[test]
    fn expr_num_helper() {
        assert_eq!(
            Expr::num(5),
            Expr::Number {
                width: None,
                value: 5,
                zmask: 0
            }
        );
    }
}
