//! Shared parallel-execution layer for the RTL-Timer workspace.
//!
//! Every CPU-parallel site in the workspace (suite preparation,
//! cross-validation folds, per-design optimization flows) goes through the
//! indexed work-queue executor here instead of hand-rolling
//! `std::thread::scope` + `AtomicUsize` + result slots. Centralizing the
//! pattern gives one place to later add sharding, batching, or an async
//! backend without touching call sites.
//!
//! * [`par_map`] — order-preserving parallel map,
//! * [`try_par_map`] — fallible variant that surfaces the error of the
//!   **lowest-indexed** failing item (deterministic regardless of thread
//!   interleaving),
//! * [`par_map_indexed`] / [`try_par_map_indexed`] — the same with the item
//!   index passed to the closure (for per-index seeds and progress labels),
//! * [`par_map_with`] / [`try_par_map_with`] — the same with a per-worker
//!   state value threaded through every call a worker makes (for scratch
//!   buffers reused across items without cross-thread sharing).
//!
//! Work distribution is a single shared atomic cursor: threads pull the
//! next unclaimed index until the queue drains, so heterogeneous item costs
//! (one huge design among twenty small ones) cannot idle a whole static
//! chunk. Worker panics are propagated to the caller after all threads have
//! been joined.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the returned vector.
///
/// `threads` is clamped to `[1, items.len()]`; with one item or one thread
/// the work runs on the calling thread without spawning.
///
/// # Panics
///
/// Re-raises the first worker panic (after joining all workers).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(threads, items, |_, item| f(item))
}

/// [`par_map`] with the item index passed to the closure.
///
/// # Panics
///
/// Re-raises the first worker panic (after joining all workers).
pub fn par_map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let results = try_par_map_indexed(threads, items, |i, item| Ok::<R, Never>(f(i, item)));
    match results {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Error type with no values: a `Result<_, Never>` is statically `Ok`.
enum Never {}

/// [`par_map`] with a per-worker state value: `mk_state` runs once on each
/// worker thread, and the resulting `&mut S` is passed to every `f` call
/// that worker makes. Use it for scratch buffers that are expensive to
/// allocate per item but must not be shared across threads.
///
/// # Panics
///
/// Re-raises the first worker panic (after joining all workers).
pub fn par_map_with<T, R, S, M, F>(threads: usize, items: &[T], mk_state: M, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let results = try_par_map_with(threads, items, mk_state, |s, i, item| {
        Ok::<R, Never>(f(s, i, item))
    });
    match results {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// [`try_par_map_indexed`] with a per-worker state value (see
/// [`par_map_with`]). Error selection is identical: the lowest-indexed
/// failure wins deterministically.
///
/// # Errors
///
/// Returns the lowest-indexed `Err` produced by `f`.
///
/// # Panics
///
/// Re-raises the first worker panic (after joining all workers).
pub fn try_par_map_with<T, R, E, S, M, F>(
    threads: usize,
    items: &[T],
    mk_state: M,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = threads.clamp(1, n);

    // Fast path: one worker, one state, no coordination.
    if workers == 1 {
        let mut state = mk_state();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    // `failed` is the hot-path flag; the Mutex is only touched when an error
    // is actually recorded, so the infallible par_map path never contends.
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<(usize, E)>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = mk_state();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Cheap early-out once any item has failed; results
                        // of already-claimed items are simply discarded.
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        match f(&mut state, i, &items[i]) {
                            Ok(r) => *slots[i].lock().expect("slot lock") = Some(r),
                            Err(e) => {
                                let mut guard = error.lock().expect("error lock");
                                if guard.as_ref().is_none_or(|(j, _)| i < *j) {
                                    *guard = Some((i, e));
                                }
                                failed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    if let Some((_, e)) = error.into_inner().expect("error lock") {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("all items completed")
        })
        .collect())
}

/// Fallible parallel map: returns the mapped vector, or the error produced
/// by the **lowest-indexed** failing item.
///
/// The choice of surfaced error is deterministic: even if a higher-indexed
/// item fails first in wall-clock time, the error reported is the one with
/// the smallest index. After any failure, workers stop claiming new items
/// (items already in flight still run to completion).
///
/// # Errors
///
/// Returns the lowest-indexed `Err` produced by `f`.
///
/// # Panics
///
/// Re-raises the first worker panic (after joining all workers).
pub fn try_par_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    try_par_map_indexed(threads, items, |_, item| f(item))
}

/// [`try_par_map`] with the item index passed to the closure.
///
/// # Errors
///
/// Returns the lowest-indexed `Err` produced by `f`.
///
/// # Panics
///
/// Re-raises the first worker panic (after joining all workers).
pub fn try_par_map_indexed<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_with(threads, items, || (), |(), i, item| f(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Barrier;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(8, &items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(4, &none, |&x| x).is_empty());
        assert_eq!(par_map(4, &[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn uses_at_least_two_threads_when_asked() {
        // With as many items as workers and a barrier inside the closure,
        // the map can only finish if at least `k` distinct threads run
        // concurrently.
        let k = 2;
        let barrier = Barrier::new(k);
        let items: Vec<usize> = (0..k).collect();
        let ids = par_map(k, &items, |_| {
            barrier.wait();
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), k);
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = par_map_indexed(3, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        // Each worker's scratch starts empty and grows monotonically; the
        // total number of mk_state calls is bounded by the worker count.
        let states = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_with(
            4,
            &items,
            || {
                states.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, _, &x| {
                scratch.push(x);
                (x * 2, scratch.len())
            },
        );
        assert_eq!(out.iter().map(|(v, _)| *v).collect::<Vec<_>>(), {
            items.iter().map(|x| x * 2).collect::<Vec<_>>()
        });
        // Some worker must have processed more than one item with the same
        // scratch (64 items, ≤ 4 states).
        assert!(out.iter().any(|(_, len)| *len > 1));
        assert!(states.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn try_par_map_with_single_worker_uses_one_state() {
        let states = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10).collect();
        let out: Result<Vec<usize>, Never> = try_par_map_with(
            1,
            &items,
            || {
                states.fetch_add(1, Ordering::Relaxed);
            },
            |(), i, &x| Ok(i + x),
        );
        assert_eq!(out.unwrap_or_default().len(), 10);
        assert_eq!(states.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn try_par_map_ok_round_trip() {
        let items: Vec<i64> = (0..100).collect();
        let out: Result<Vec<i64>, String> = try_par_map(4, &items, |&x| Ok(x * x));
        assert_eq!(out.unwrap()[99], 99 * 99);
    }

    #[test]
    fn try_par_map_surfaces_first_error_deterministically() {
        // Items 30 and 70 fail; 30 must win regardless of scheduling. Slow
        // down item 30 to make late-arriving low-index errors the common
        // interleaving.
        let items: Vec<usize> = (0..100).collect();
        for _ in 0..20 {
            let err = try_par_map(8, &items, |&x| {
                if x == 30 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    Err(format!("fail {x}"))
                } else if x == 70 {
                    Err(format!("fail {x}"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err, "fail 30");
        }
    }

    #[test]
    fn try_par_map_single_thread_short_circuits() {
        let items: Vec<usize> = (0..1000).collect();
        let visited = AtomicUsize::new(0);
        let err = try_par_map(1, &items, |&x| {
            visited.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err("boom")
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(visited.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(4, &items, |&x| {
                assert!(x != 7, "panicking on 7");
                x
            })
        });
        assert!(result.is_err());
    }
}
