//! LambdaMART: pairwise learning-to-rank with gradient-boosted trees.
//!
//! The paper reframes signal criticality ranking as LTR (§3.4.2): each
//! design is a query, its signal endpoints are documents, and the critical
//! ranking level (group 1–4) is the relevance label. We implement the
//! classic LambdaMART lambdas: for each mis-ordered pair, a sigmoid
//! gradient scaled by |ΔNDCG|, accumulated per document and fed to the same
//! histogram-tree booster used for regression.

use crate::gbdt::{Gbdt, GbdtParams, Objective};
use crate::matrix::FeatureMatrix;

/// LambdaMART hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtrParams {
    /// Underlying boosting parameters.
    pub gbdt: GbdtParams,
    /// Sigmoid steepness.
    pub sigma: f64,
}

impl Default for LtrParams {
    fn default() -> Self {
        let mut gbdt = GbdtParams::default();
        // Lambda hessians are tiny (σ²·ρ(1−ρ)·|ΔNDCG| per pair); the
        // regression default min_child_weight would veto every split.
        gbdt.tree.min_child_weight = 1e-4;
        gbdt.tree.lambda = 0.1;
        LtrParams { gbdt, sigma: 1.0 }
    }
}

/// A fitted ranking model. Higher scores = more critical.
#[derive(Debug, Clone)]
pub struct LambdaMart {
    model: Gbdt,
}

struct LambdaObjective {
    queries: Vec<Vec<usize>>,
    relevance: Vec<f64>,
    sigma: f64,
}

impl LambdaObjective {
    /// Ideal DCG of a query's labels.
    fn ideal_dcg(rels: &[f64]) -> f64 {
        let mut sorted: Vec<f64> = rels.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        sorted
            .iter()
            .enumerate()
            .map(|(i, r)| ((2f64).powf(*r) - 1.0) / ((i + 2) as f64).log2())
            .sum()
    }
}

impl Objective for LambdaObjective {
    fn grad_hess(&self, preds: &[f64], grad: &mut [f64], hess: &mut [f64]) {
        grad.iter_mut().for_each(|g| *g = 0.0);
        hess.iter_mut().for_each(|h| *h = 1e-6);
        for q in &self.queries {
            if q.len() < 2 {
                continue;
            }
            // Rank positions under current predictions.
            let mut order: Vec<usize> = q.clone();
            order.sort_by(|&a, &b| preds[b].partial_cmp(&preds[a]).expect("finite"));
            let mut rank_of = vec![0usize; q.len()];
            let pos_in_q: std::collections::HashMap<usize, usize> =
                q.iter().enumerate().map(|(i, &r)| (r, i)).collect();
            for (rank, &row) in order.iter().enumerate() {
                rank_of[pos_in_q[&row]] = rank;
            }
            let rels: Vec<f64> = q.iter().map(|&r| self.relevance[r]).collect();
            let idcg = Self::ideal_dcg(&rels).max(1e-9);

            for i in 0..q.len() {
                for j in 0..q.len() {
                    if rels[i] <= rels[j] {
                        continue;
                    }
                    let (ri, rj) = (q[i], q[j]);
                    // |ΔNDCG| from swapping ranks of i and j.
                    let gain_i = (2f64).powf(rels[i]) - 1.0;
                    let gain_j = (2f64).powf(rels[j]) - 1.0;
                    let disc = |rank: usize| ((rank + 2) as f64).log2();
                    let delta = ((gain_i - gain_j)
                        * (1.0 / disc(rank_of[i]) - 1.0 / disc(rank_of[j])))
                    .abs()
                        / idcg;
                    let rho = 1.0 / (1.0 + (self.sigma * (preds[ri] - preds[rj])).exp());
                    let lambda = delta * self.sigma * rho;
                    // i should rank above j: push i up, j down.
                    grad[ri] -= lambda;
                    grad[rj] += lambda;
                    let h = (delta * self.sigma * self.sigma * rho * (1.0 - rho)).max(1e-6);
                    hess[ri] += h;
                    hess[rj] += h;
                }
            }
        }
    }

    fn base_score(&self) -> f64 {
        0.0
    }
}

impl LambdaMart {
    /// Trains a ranker.
    ///
    /// * `rows` — row-major features;
    /// * `queries` — row-index sets, one per query (design);
    /// * `relevance` — per-row relevance label (higher = more critical).
    pub fn fit(
        rows: &FeatureMatrix,
        queries: &[Vec<usize>],
        relevance: &[f64],
        params: &LtrParams,
    ) -> LambdaMart {
        let obj = LambdaObjective {
            queries: queries.to_vec(),
            relevance: relevance.to_vec(),
            sigma: params.sigma,
        };
        LambdaMart {
            model: Gbdt::fit(rows, &obj, &params.gbdt),
        }
    }

    /// Ranking score for one row (higher = predicted more critical).
    pub fn score(&self, row: &[f64]) -> f64 {
        self.model.predict(row)
    }

    /// Batch scores.
    pub fn score_all(&self, rows: &FeatureMatrix) -> Vec<f64> {
        self.model.predict_all(rows)
    }

    /// Batch scores into a caller-owned buffer (cleared first).
    pub fn score_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        self.model.predict_into(rows, out);
    }
}

impl rtlt_store::Codec for LambdaMart {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        self.model.encode(e);
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(LambdaMart {
            model: Gbdt::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Relevance driven by a noisy linear feature: LTR should order by it.
    #[test]
    fn ranker_orders_by_informative_feature() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut queries = Vec::new();
        let mut relevance = Vec::new();
        for _q in 0..30 {
            let mut q = Vec::new();
            for _d in 0..20 {
                let strength: f64 = rng.gen_range(0.0..1.0);
                q.push(rows.len());
                rows.push(vec![strength, rng.gen_range(0.0..1.0)]);
                // 4 relevance levels from the hidden strength.
                relevance.push((strength * 4.0).floor().min(3.0));
            }
            queries.push(q);
        }
        let mut params = LtrParams::default();
        params.gbdt.n_trees = 80;
        let model = LambdaMart::fit(
            &FeatureMatrix::from_rows(&rows),
            &queries,
            &relevance,
            &params,
        );

        // Held-out query: 20 fresh docs; check pairwise order accuracy.
        let mut correct = 0;
        let mut total = 0;
        let fresh: Vec<(Vec<f64>, f64)> = (0..20)
            .map(|_| {
                let s: f64 = rng.gen_range(0.0..1.0);
                (vec![s, rng.gen_range(0.0..1.0)], s)
            })
            .collect();
        for i in 0..fresh.len() {
            for j in 0..fresh.len() {
                if fresh[i].1 > fresh[j].1 + 0.1 {
                    total += 1;
                    if model.score(&fresh[i].0) > model.score(&fresh[j].0) {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "pairwise accuracy {acc}");
    }

    #[test]
    fn single_document_queries_are_harmless() {
        let rows = vec![vec![0.1], vec![0.9]];
        let queries = vec![vec![0], vec![1]];
        let relevance = vec![0.0, 3.0];
        let mut params = LtrParams::default();
        params.gbdt.n_trees = 5;
        let model = LambdaMart::fit(
            &FeatureMatrix::from_rows(&rows),
            &queries,
            &relevance,
            &params,
        );
        let _ = model.score(&rows[0]);
    }
}
