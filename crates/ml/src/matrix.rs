//! Minimal dense row-major matrices: [`Matrix`] for the neural models'
//! weight/activation math and [`FeatureMatrix`] for batched feature rows.

/// A growable row-major feature buffer: the batched replacement for
/// `Vec<Vec<f64>>` across the `fit`/`predict_all` signatures.
///
/// Rows are appended with [`push_row`](FeatureMatrix::push_row) into one
/// flat `f64` allocation, so a design's feature rows are built once and
/// traversed with unit stride instead of chasing one heap allocation per
/// row. [`clear`](FeatureMatrix::clear) retains capacity, making a single
/// instance reusable as per-loop scratch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    cols: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Empty matrix with `cols` feature columns.
    pub fn new(cols: usize) -> FeatureMatrix {
        FeatureMatrix {
            cols,
            data: Vec::new(),
        }
    }

    /// Empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(cols: usize, rows: usize) -> FeatureMatrix {
        FeatureMatrix {
            cols,
            data: Vec::with_capacity(cols * rows),
        }
    }

    /// Builds from per-row `Vec`s (interop with row-oriented callers).
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> FeatureMatrix {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = FeatureMatrix::with_capacity(cols, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_cols`.
    #[inline]
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "feature width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Drops all rows, retaining the column count and capacity (scratch
    /// reuse across designs).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Drops all rows and switches the column count (scratch reuse across
    /// feature spaces).
    pub fn reset(&mut self, cols: usize) {
        self.cols = cols;
        self.data.clear();
    }

    /// Row count.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Column count.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The flat row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major storage (in-place transforms).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major storage.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dims {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dims");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.at(r, i);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    *out.at_mut(i, j) += a * other.at(r, j);
                }
            }
        }
        out
    }

    /// `self × otherᵀ`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dims");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.at(r, k) * other.at(j, k);
                }
                *out.at_mut(r, j) = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let eye = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn t_matmul_equals_manual_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f64 + 0.5);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64 - 1.0);
        let at = Matrix::from_fn(2, 3, |r, c| a.at(c, r));
        assert_eq!(a.t_matmul(&b), at.matmul(&b));
    }

    #[test]
    fn matmul_t_equals_manual_transpose() {
        let a = Matrix::from_fn(2, 4, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (2 * r) as f64 - c as f64);
        let bt = Matrix::from_fn(4, 3, |r, c| b.at(c, r));
        assert_eq!(a.matmul_t(&b), a.matmul(&bt));
    }
}
