//! Flat inference kernel: every tree of a fitted ensemble linearized
//! into one contiguous node array and traversed with a tree-outer ×
//! row-block loop.
//!
//! The scalar path walks a heap of `Node` enums per row per tree — a
//! serial pointer chase whose next load depends on the previous compare.
//! This kernel packs each node's hot fields (threshold, feature, both
//! children) into one 24-byte [`FlatNode`] so a descent step touches a
//! single cache line, and encodes **leaves as self-loops** (`left ==
//! right == self`, threshold `+∞`) so a descent runs a *fixed* number of
//! branch-free steps (the tree's depth) instead of testing for leaf
//! arrival. Traversal is tree-outer over [`ROW_BLOCK`]-row blocks,
//! stepping every row of the block one level per pass: the block's
//! descents are independent chains, so the CPU overlaps their node loads
//! instead of serializing one row's full walk at a time.
//!
//! Comparison order (`value <= threshold`, NaN falls right — a self-loop
//! leaf re-selects itself on either outcome) and per-row accumulation
//! order (base, then trees in boosting order) are exactly the scalar
//! path's, so predictions are bit-identical.
//!
//! `RTLT_NO_FLAT_PREDICT=1` forces consumers back onto the scalar path —
//! the A/B escape hatch, in the same style as `RTLT_NO_CONE_DEDUP`.

use crate::matrix::FeatureMatrix;
use crate::tree::{Node, Tree};
use std::sync::OnceLock;

/// Rows traversed per tree before moving to the next tree: large enough
/// to amortize reloading the node array and to expose independent
/// descent chains, small enough that the block's cursors stay in L1.
pub const ROW_BLOCK: usize = 64;

/// Whether the flat prediction kernel is active (default).
/// `RTLT_NO_FLAT_PREDICT=1` forces the scalar `Node`-walk path — the
/// escape hatch for A/B verification and for bisecting inference
/// regressions.
pub fn flat_predict_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !std::env::var("RTLT_NO_FLAT_PREDICT")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// One linearized tree node: the descent-hot fields, packed so a step
/// reads one cache line. Leaves self-loop (`left == right == self`) with
/// threshold `+∞`; their payload lives in [`FlatForest::value`].
#[derive(Debug, Clone, Copy, Default)]
struct FlatNode {
    /// Split threshold (`value <= threshold` goes left); `+∞` on leaves.
    threshold: f64,
    /// Split feature (0 on leaves — compared against `+∞`, never routes).
    feature: u32,
    /// Left child index; `self` on leaves.
    left: u32,
    /// Right child index; `self` on leaves.
    right: u32,
}

/// All trees of a boosted ensemble linearized into one node array.
///
/// Derived from the fitted [`Tree`]s at fit/decode time — never
/// persisted, so the stored model bytes and keys are untouched.
#[derive(Debug, Clone, Default)]
pub struct FlatForest {
    base: f64,
    learning_rate: f64,
    /// Every node of every tree, trees back to back.
    nodes: Vec<FlatNode>,
    /// Leaf value per node (0 for split nodes — never read).
    value: Vec<f64>,
    /// Per-tree root node.
    roots: Vec<u32>,
    /// Per-tree depth: split levels along the deepest path, i.e. the
    /// fixed step count after which every descent sits on a leaf.
    steps: Vec<u32>,
}

impl FlatForest {
    /// Linearizes a fitted ensemble.
    pub fn from_trees(trees: &[Tree], base: f64, learning_rate: f64) -> FlatForest {
        let mut f = FlatForest {
            base,
            learning_rate,
            ..FlatForest::default()
        };
        for tree in trees {
            let nodes = tree.nodes();
            let off = f.nodes.len();
            f.nodes.resize(off + nodes.len(), FlatNode::default());
            f.value.resize(off + nodes.len(), 0.0);
            // Node `i` takes slot `off + i`; children carry higher
            // indices than their parent (fit pushes parents first), so
            // depths resolve in one reverse sweep.
            let mut depth = vec![0u32; nodes.len()];
            for (i, n) in nodes.iter().enumerate().rev() {
                let s = (off + i) as u32;
                match n {
                    Node::Leaf { value } => {
                        f.nodes[off + i] = FlatNode {
                            threshold: f64::INFINITY,
                            feature: 0,
                            left: s,
                            right: s,
                        };
                        f.value[off + i] = *value;
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                        ..
                    } => {
                        f.nodes[off + i] = FlatNode {
                            threshold: *threshold,
                            feature: *feature as u32,
                            left: (off + *left) as u32,
                            right: (off + *right) as u32,
                        };
                        depth[i] = 1 + depth[*left].max(depth[*right]);
                    }
                }
            }
            f.roots.push(off as u32);
            f.steps.push(depth[0]);
        }
        f
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Predicts one raw feature row (bit-identical to the scalar walk).
    #[inline]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = self.base;
        for (t, &root) in self.roots.iter().enumerate() {
            let mut u = root as usize;
            for _ in 0..self.steps[t] {
                let n = &self.nodes[u];
                // `<=` sends NaN right, matching the scalar walk; a leaf
                // self-loops on either outcome.
                u = if row[n.feature as usize] <= n.threshold {
                    n.left
                } else {
                    n.right
                } as usize;
            }
            acc += self.learning_rate * self.value[u];
        }
        acc
    }

    /// Batch prediction into a caller-owned buffer (cleared first):
    /// tree-outer over [`ROW_BLOCK`]-row blocks, stepping the whole
    /// block one tree level per pass so the descents' node loads overlap.
    pub fn predict_into(&self, features: &FeatureMatrix, out: &mut Vec<f64>) {
        let n = features.n_rows();
        let nf = features.n_cols();
        let data = features.as_slice();
        out.clear();
        out.resize(n, self.base);
        if nf == 0 {
            // Stump-only forests: every tree is a lone leaf.
            for (t, &root) in self.roots.iter().enumerate() {
                debug_assert_eq!(self.steps[t], 0);
                let v = self.learning_rate * self.value[root as usize];
                for acc in out.iter_mut() {
                    *acc += v;
                }
            }
            return;
        }
        let mut idx = [0u32; ROW_BLOCK];
        let mut start = 0;
        while start < n {
            let len = ROW_BLOCK.min(n - start);
            let block = &data[start * nf..(start + len) * nf];
            for (t, &root) in self.roots.iter().enumerate() {
                idx[..len].fill(root);
                for _ in 0..self.steps[t] {
                    for (row, cur) in block.chunks_exact(nf).zip(idx[..len].iter_mut()) {
                        let nd = &self.nodes[*cur as usize];
                        // `.min(nf - 1)` proves the index in-bounds to the
                        // optimizer (split features are < nf by
                        // construction, so it never actually clamps).
                        let v = row[(nd.feature as usize).min(nf - 1)];
                        *cur = if v <= nd.threshold { nd.left } else { nd.right };
                    }
                }
                let lr = self.learning_rate;
                for (r, &u) in idx[..len].iter().enumerate() {
                    out[start + r] += lr * self.value[u as usize];
                }
            }
            start += len;
        }
    }

    /// Batch prediction.
    pub fn predict_all(&self, features: &FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(features, &mut out);
        out
    }
}
