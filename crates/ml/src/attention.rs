//! A small single-head self-attention encoder over timing-path operator
//! sequences — the paper's "transformer for local path modeling, with an
//! MLP to capture global features" (§3.4.1), trained under the same grouped
//! max-loss as the other bit-wise models.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One sampled timing path as a token sequence plus global features.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSample {
    /// Operator class per position (0..n_ops).
    pub ops: Vec<usize>,
    /// Per-token scalar features (fixed width).
    pub tok_feats: Vec<Vec<f64>>,
    /// Path/design-level global features appended after pooling.
    pub global: Vec<f64>,
}

/// Transformer hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerParams {
    /// Model width.
    pub d_model: usize,
    /// Head width of the final MLP.
    pub d_head: usize,
    /// Maximum sequence length (longer paths keep their *last* tokens —
    /// the logic nearest the endpoint).
    pub max_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Groups per Adam step.
    pub batch_groups: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TransformerParams {
    fn default() -> Self {
        TransformerParams {
            d_model: 16,
            d_head: 32,
            max_len: 24,
            epochs: 40,
            batch_groups: 16,
            learning_rate: 2e-3,
            seed: 17,
        }
    }
}

/// Parameter tensor bundle with Adam state.
#[derive(Debug, Clone)]
struct Param {
    w: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    fn new(rows: usize, cols: usize, rng: &mut StdRng) -> Param {
        let s = (2.0 / rows.max(1) as f64).sqrt();
        Param {
            w: Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-s..s)),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    fn step(&mut self, g: &Matrix, lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.data.len() {
            self.m.data[i] = B1 * self.m.data[i] + (1.0 - B1) * g.data[i];
            self.v.data[i] = B2 * self.v.data[i] + (1.0 - B2) * g.data[i] * g.data[i];
            self.w.data[i] -= lr * (self.m.data[i] / bc1) / ((self.v.data[i] / bc2).sqrt() + EPS);
        }
    }
}

/// The path transformer model.
#[derive(Debug, Clone)]
pub struct PathTransformer {
    n_tok: usize,
    n_global: usize,
    p: TransformerParams,
    we: Param, // n_ops × d
    ws: Param, // n_tok × d
    wq: Param, // d × d
    wk: Param, // d × d
    wv: Param, // d × d
    w1: Param, // d × d
    b1: Param, // 1 × d
    w3: Param, // (d+n_global) × d_head
    b3: Param, // 1 × d_head
    w4: Param, // d_head × 1
    b4: Param, // 1 × 1
    step: usize,
}

/// Per-sequence forward cache.
struct Cache {
    e: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    a: Matrix,
    h: Matrix,
    f: Matrix,
    z: Vec<f64>,
    h3: Vec<f64>,
    out: f64,
    ops: Vec<usize>,
    toks: Matrix,
}

impl PathTransformer {
    /// Creates an untrained model.
    pub fn new(
        n_ops: usize,
        n_tok: usize,
        n_global: usize,
        p: TransformerParams,
    ) -> PathTransformer {
        let mut rng = StdRng::seed_from_u64(p.seed);
        let d = p.d_model;
        PathTransformer {
            n_tok,
            n_global,
            we: Param::new(n_ops, d, &mut rng),
            ws: Param::new(n_tok.max(1), d, &mut rng),
            wq: Param::new(d, d, &mut rng),
            wk: Param::new(d, d, &mut rng),
            wv: Param::new(d, d, &mut rng),
            w1: Param::new(d, d, &mut rng),
            b1: Param::new(1, d, &mut rng),
            w3: Param::new(d + n_global, p.d_head, &mut rng),
            b3: Param::new(1, p.d_head, &mut rng),
            w4: Param::new(p.d_head, 1, &mut rng),
            b4: Param::new(1, 1, &mut rng),
            p,
            step: 0,
        }
    }

    fn truncate<'s>(&self, s: &'s PathSample) -> (Vec<usize>, Vec<&'s [f64]>) {
        let n = s.ops.len();
        let start = n.saturating_sub(self.p.max_len);
        let ops = s.ops[start..].to_vec();
        let toks: Vec<&[f64]> = s.tok_feats[start..].iter().map(|v| v.as_slice()).collect();
        (ops, toks)
    }

    fn forward(&self, s: &PathSample) -> Cache {
        let d = self.p.d_model;
        let (ops, tokrefs) = self.truncate(s);
        let n = ops.len().max(1);
        let ops = if ops.is_empty() { vec![0] } else { ops };
        let toks = Matrix::from_fn(n, self.n_tok.max(1), |r, c| {
            tokrefs
                .get(r)
                .and_then(|t| t.get(c))
                .copied()
                .unwrap_or(0.0)
        });
        // Embedding: op row of We + token feats × Ws + sinusoidal position.
        let mut e = Matrix::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                let mut v = self.we.w.at(ops[r], c);
                for t in 0..self.n_tok {
                    v += toks.at(r, t) * self.ws.w.at(t, c);
                }
                let pos = r as f64;
                v += if c % 2 == 0 {
                    (pos / 10f64.powf(c as f64 / d as f64)).sin() * 0.1
                } else {
                    (pos / 10f64.powf((c - 1) as f64 / d as f64)).cos() * 0.1
                };
                *e.at_mut(r, c) = v;
            }
        }
        let q = e.matmul(&self.wq.w);
        let k = e.matmul(&self.wk.w);
        let v = e.matmul(&self.wv.w);
        // Scaled dot-product attention.
        let scale = 1.0 / (d as f64).sqrt();
        let mut a = q.matmul_t(&k);
        for x in a.data.iter_mut() {
            *x *= scale;
        }
        for r in 0..n {
            let row = a.row_mut(r);
            let mx = row.iter().cloned().fold(f64::MIN, f64::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - mx).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        let h = a.matmul(&v);
        // Position-wise ReLU dense.
        let mut f = h.matmul(&self.w1.w);
        for r in 0..n {
            for c in 0..d {
                let val = f.at(r, c) + self.b1.w.at(0, c);
                *f.at_mut(r, c) = val.max(0.0);
            }
        }
        // Mean-pool + globals.
        let mut z = vec![0.0; d + self.n_global];
        for c in 0..d {
            let mut s2 = 0.0;
            for r in 0..n {
                s2 += f.at(r, c);
            }
            z[c] = s2 / n as f64;
        }
        for g in 0..self.n_global {
            z[d + g] = s.global.get(g).copied().unwrap_or(0.0);
        }
        // Head MLP.
        let dh = self.p.d_head;
        let mut h3 = vec![0.0; dh];
        for j in 0..dh {
            let mut acc = self.b3.w.at(0, j);
            for (i, zi) in z.iter().enumerate() {
                acc += zi * self.w3.w.at(i, j);
            }
            h3[j] = acc.max(0.0);
        }
        let mut out = self.b4.w.at(0, 0);
        for j in 0..dh {
            out += h3[j] * self.w4.w.at(j, 0);
        }
        Cache {
            e,
            q,
            k,
            v,
            a,
            h,
            f,
            z,
            h3,
            out,
            ops,
            toks,
        }
    }

    /// Predicts the arrival-time contribution of one path.
    pub fn predict(&self, s: &PathSample) -> f64 {
        self.forward(s).out
    }

    /// Trains under the grouped max-loss.
    pub fn fit_grouped_max(
        &mut self,
        samples: &[PathSample],
        groups: &[Vec<usize>],
        targets: &[f64],
    ) {
        let mut rng = StdRng::seed_from_u64(self.p.seed ^ 0xbeef);
        let gidx: Vec<usize> = (0..groups.len()).collect();
        for _epoch in 0..self.p.epochs {
            let mut order = gidx.clone();
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.p.batch_groups.max(1)) {
                let mut grads = GradBundle::zeros(self);
                let mut any = false;
                for &g in chunk {
                    if groups[g].is_empty() {
                        continue;
                    }
                    // Forward every path; gradient through the argmax only.
                    let mut best_row = groups[g][0];
                    let mut best_out = f64::MIN;
                    for &r in &groups[g] {
                        let out = self.forward(&samples[r]).out;
                        if out > best_out {
                            best_out = out;
                            best_row = r;
                        }
                    }
                    let cache = self.forward(&samples[best_row]);
                    let dl = 2.0 * (cache.out - targets[g]) / chunk.len() as f64;
                    self.accumulate(&cache, dl, &mut grads);
                    any = true;
                }
                if any {
                    self.apply(&grads);
                }
            }
        }
    }

    fn accumulate(&self, c: &Cache, dl: f64, g: &mut GradBundle) {
        let d = self.p.d_model;
        let dh = self.p.d_head;
        let n = c.e.rows;
        // Head.
        for j in 0..dh {
            g.w4.data[j] += dl * c.h3[j];
        }
        g.b4.data[0] += dl;
        let mut dh3 = vec![0.0; dh];
        for j in 0..dh {
            if c.h3[j] > 0.0 {
                dh3[j] = dl * self.w4.w.at(j, 0);
            }
        }
        let mut dz = vec![0.0; d + self.n_global];
        for j in 0..dh {
            if dh3[j] == 0.0 {
                continue;
            }
            g.b3.data[j] += dh3[j];
            for i in 0..d + self.n_global {
                *g.w3.at_mut(i, j) += dh3[j] * c.z[i];
                dz[i] += dh3[j] * self.w3.w.at(i, j);
            }
        }
        // Mean-pool backward into F.
        let mut df = Matrix::zeros(n, d);
        for r in 0..n {
            for cc in 0..d {
                df.data[r * d + cc] = dz[cc] / n as f64;
            }
        }
        // ReLU dense backward: F = relu(H W1 + b1).
        let mut dpre = df;
        for r in 0..n {
            for cc in 0..d {
                if c.f.at(r, cc) <= 0.0 {
                    dpre.data[r * d + cc] = 0.0;
                }
            }
        }
        for r in 0..n {
            for cc in 0..d {
                g.b1.data[cc] += dpre.at(r, cc);
            }
        }
        let gw1 = c.h.t_matmul(&dpre);
        for i in 0..gw1.data.len() {
            g.w1.data[i] += gw1.data[i];
        }
        let dhid = dpre.matmul_t(&self.w1.w);
        // Attention backward: H = A V.
        let dv = c.a.t_matmul(&dhid);
        let da = dhid.matmul_t(&c.v);
        // Softmax backward per row, with 1/sqrt(d) scaling into scores.
        let scale = 1.0 / (d as f64).sqrt();
        let mut dscore = Matrix::zeros(n, n);
        for r in 0..n {
            let mut dot = 0.0;
            for j in 0..n {
                dot += da.at(r, j) * c.a.at(r, j);
            }
            for j in 0..n {
                *dscore.at_mut(r, j) = c.a.at(r, j) * (da.at(r, j) - dot) * scale;
            }
        }
        let dq = dscore.matmul(&c.k);
        let dk = dscore.t_matmul(&c.q);
        // Projection weights.
        let gwq = c.e.t_matmul(&dq);
        let gwk = c.e.t_matmul(&dk);
        let gwv = c.e.t_matmul(&dv);
        for i in 0..gwq.data.len() {
            g.wq.data[i] += gwq.data[i];
            g.wk.data[i] += gwk.data[i];
            g.wv.data[i] += gwv.data[i];
        }
        // Embedding backward.
        let mut de = dq.matmul_t(&self.wq.w);
        let de_k = dk.matmul_t(&self.wk.w);
        let de_v = dv.matmul_t(&self.wv.w);
        for i in 0..de.data.len() {
            de.data[i] += de_k.data[i] + de_v.data[i];
        }
        for r in 0..n {
            let op = c.ops[r];
            for cc in 0..d {
                *g.we.at_mut(op, cc) += de.at(r, cc);
                for t in 0..self.n_tok {
                    *g.ws.at_mut(t, cc) += de.at(r, cc) * c.toks.at(r, t);
                }
            }
        }
    }

    fn apply(&mut self, g: &GradBundle) {
        self.step += 1;
        let lr = self.p.learning_rate;
        let t = self.step;
        self.we.step(&g.we, lr, t);
        self.ws.step(&g.ws, lr, t);
        self.wq.step(&g.wq, lr, t);
        self.wk.step(&g.wk, lr, t);
        self.wv.step(&g.wv, lr, t);
        self.w1.step(&g.w1, lr, t);
        self.b1.step(&g.b1, lr, t);
        self.w3.step(&g.w3, lr, t);
        self.b3.step(&g.b3, lr, t);
        self.w4.step(&g.w4, lr, t);
        self.b4.step(&g.b4, lr, t);
    }
}

struct GradBundle {
    we: Matrix,
    ws: Matrix,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    w1: Matrix,
    b1: Matrix,
    w3: Matrix,
    b3: Matrix,
    w4: Matrix,
    b4: Matrix,
}

impl GradBundle {
    fn zeros(m: &PathTransformer) -> GradBundle {
        GradBundle {
            we: Matrix::zeros(m.we.w.rows, m.we.w.cols),
            ws: Matrix::zeros(m.ws.w.rows, m.ws.w.cols),
            wq: Matrix::zeros(m.wq.w.rows, m.wq.w.cols),
            wk: Matrix::zeros(m.wk.w.rows, m.wk.w.cols),
            wv: Matrix::zeros(m.wv.w.rows, m.wv.w.cols),
            w1: Matrix::zeros(m.w1.w.rows, m.w1.w.cols),
            b1: Matrix::zeros(m.b1.w.rows, m.b1.w.cols),
            w3: Matrix::zeros(m.w3.w.rows, m.w3.w.cols),
            b3: Matrix::zeros(m.b3.w.rows, m.b3.w.cols),
            w4: Matrix::zeros(m.w4.w.rows, m.w4.w.cols),
            b4: Matrix::zeros(m.b4.w.rows, m.b4.w.cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, opkind: usize, level: f64) -> PathSample {
        PathSample {
            ops: vec![opkind; len],
            tok_feats: (0..len)
                .map(|i| vec![i as f64 / len as f64, level])
                .collect(),
            global: vec![len as f64 / 10.0],
        }
    }

    #[test]
    fn learns_length_dependent_target() {
        // Target = path length / 10 (also present as a global feature):
        // the model should fit this easily.
        let mut samples = Vec::new();
        let mut groups = Vec::new();
        let mut targets = Vec::new();
        for i in 0..80 {
            let len = 2 + (i % 12);
            groups.push(vec![samples.len()]);
            samples.push(sample(len, i % 3, 0.5));
            targets.push(len as f64 / 10.0);
        }
        let params = TransformerParams {
            epochs: 60,
            d_model: 8,
            d_head: 16,
            ..Default::default()
        };
        let mut model = PathTransformer::new(4, 2, 1, params);
        model.fit_grouped_max(&samples, &groups, &targets);
        // Correlation between prediction and target.
        let preds: Vec<f64> = samples.iter().map(|s| model.predict(s)).collect();
        let n = preds.len() as f64;
        let mp = preds.iter().sum::<f64>() / n;
        let mt = targets.iter().sum::<f64>() / n;
        let (mut num, mut dp, mut dt) = (0.0, 0.0, 0.0);
        for (p, t) in preds.iter().zip(&targets) {
            num += (p - mp) * (t - mt);
            dp += (p - mp).powi(2);
            dt += (t - mt).powi(2);
        }
        let r = num / (dp.sqrt() * dt.sqrt()).max(1e-12);
        assert!(r > 0.8, "R={r}");
    }

    #[test]
    fn truncation_keeps_endpoint_side() {
        let params = TransformerParams {
            max_len: 4,
            epochs: 1,
            ..Default::default()
        };
        let model = PathTransformer::new(4, 2, 1, params);
        let long = sample(10, 1, 0.2);
        let (ops, toks) = model.truncate(&long);
        assert_eq!(ops.len(), 4);
        assert_eq!(toks.len(), 4);
        // Last token of the original survives.
        assert_eq!(toks[3][0], long.tok_feats[9][0]);
    }

    #[test]
    fn empty_path_predicts_without_panic() {
        let model = PathTransformer::new(4, 2, 1, TransformerParams::default());
        let empty = PathSample {
            ops: vec![],
            tok_feats: vec![],
            global: vec![0.0],
        };
        assert!(model.predict(&empty).is_finite());
    }
}
