//! Message-passing GNN baseline ("customized GNN" row of Table 4).
//!
//! The paper adapts a layout-stage GNN timing model [Wang et al., DAC'23]
//! to the bit-wise endpoint prediction task and finds it performs poorly at
//! the RTL stage (R ≈ 0.25). We reimplement the same shape: mean-aggregation
//! message passing over the BOG with per-node features, endpoint readout,
//! MSE training over whole graphs.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One design as a GNN input graph.
#[derive(Debug, Clone)]
pub struct GnnGraph {
    /// Per-node feature rows (fixed width).
    pub node_feats: Vec<Vec<f64>>,
    /// Incoming edges per node.
    pub fanins: Vec<Vec<u32>>,
    /// `(endpoint node, target arrival)` pairs.
    pub endpoints: Vec<(usize, f64)>,
}

/// GNN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnnParams {
    /// Hidden width.
    pub d: usize,
    /// Message-passing rounds.
    pub layers: usize,
    /// Training epochs (full-batch over all graphs).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for GnnParams {
    fn default() -> Self {
        GnnParams {
            d: 16,
            layers: 2,
            epochs: 40,
            learning_rate: 2e-3,
            seed: 23,
        }
    }
}

struct Adam {
    m: Matrix,
    v: Matrix,
}

impl Adam {
    fn new(rows: usize, cols: usize) -> Adam {
        Adam {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    fn step(&mut self, w: &mut Matrix, g: &Matrix, lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..w.data.len() {
            self.m.data[i] = B1 * self.m.data[i] + (1.0 - B1) * g.data[i];
            self.v.data[i] = B2 * self.v.data[i] + (1.0 - B2) * g.data[i] * g.data[i];
            w.data[i] -= lr * (self.m.data[i] / bc1) / ((self.v.data[i] / bc2).sqrt() + EPS);
        }
    }
}

/// A trained message-passing GNN.
pub struct Gnn {
    p: GnnParams,
    n_feats: usize,
    w_in: Matrix,
    w_self: Vec<Matrix>,
    w_nb: Vec<Matrix>,
    readout: Matrix, // d × 1
    bias: f64,
    // Adam state.
    a_in: Adam,
    a_self: Vec<Adam>,
    a_nb: Vec<Adam>,
    a_read: Adam,
    step: usize,
}

impl std::fmt::Debug for Gnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gnn")
            .field("d", &self.p.d)
            .field("layers", &self.p.layers)
            .finish()
    }
}

impl Gnn {
    /// Creates an untrained network for `n_feats`-wide node features.
    pub fn new(n_feats: usize, p: GnnParams) -> Gnn {
        let mut rng = StdRng::seed_from_u64(p.seed);
        let d = p.d;
        let init = |rows: usize, cols: usize, rng: &mut StdRng| {
            let s = (2.0 / rows.max(1) as f64).sqrt();
            Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-s..s))
        };
        Gnn {
            n_feats,
            w_in: init(n_feats, d, &mut rng),
            w_self: (0..p.layers).map(|_| init(d, d, &mut rng)).collect(),
            w_nb: (0..p.layers).map(|_| init(d, d, &mut rng)).collect(),
            readout: init(d, 1, &mut rng),
            bias: 0.0,
            a_in: Adam::new(n_feats, d),
            a_self: (0..p.layers).map(|_| Adam::new(d, d)).collect(),
            a_nb: (0..p.layers).map(|_| Adam::new(d, d)).collect(),
            a_read: Adam::new(d, 1),
            step: 0,
            p,
        }
    }

    /// Forward pass; returns per-layer activations (`hs[0]` = embedded
    /// input, `hs[l+1]` = after layer `l`).
    fn forward(&self, g: &GnnGraph) -> Vec<Matrix> {
        let n = g.node_feats.len();
        let d = self.p.d;
        let x = Matrix::from_fn(n, self.n_feats, |r, c| g.node_feats[r][c]);
        let mut h = x.matmul(&self.w_in);
        for v in h.data.iter_mut() {
            *v = v.max(0.0);
        }
        let mut hs = vec![h];
        for l in 0..self.p.layers {
            let h = hs.last().expect("layer");
            // Mean aggregation of fanin states.
            let mut msg = Matrix::zeros(n, d);
            for i in 0..n {
                let fis = &g.fanins[i];
                if fis.is_empty() {
                    continue;
                }
                let inv = 1.0 / fis.len() as f64;
                for &f in fis {
                    for c in 0..d {
                        *msg.at_mut(i, c) += h.at(f as usize, c) * inv;
                    }
                }
            }
            let mut z = h.matmul(&self.w_self[l]);
            let zm = msg.matmul(&self.w_nb[l]);
            for i in 0..z.data.len() {
                z.data[i] = (z.data[i] + zm.data[i]).max(0.0);
            }
            hs.push(z);
        }
        hs
    }

    /// Predicts arrival for every endpoint of a graph.
    pub fn predict(&self, g: &GnnGraph) -> Vec<f64> {
        let hs = self.forward(g);
        let h = hs.last().expect("layers");
        g.endpoints
            .iter()
            .map(|&(node, _)| {
                let mut acc = self.bias;
                for c in 0..self.p.d {
                    acc += h.at(node, c) * self.readout.at(c, 0);
                }
                acc
            })
            .collect()
    }

    /// Trains with MSE over endpoint targets, full-batch per graph.
    pub fn fit(&mut self, graphs: &[GnnGraph]) {
        for _epoch in 0..self.p.epochs {
            for g in graphs {
                self.train_graph(g);
            }
        }
    }

    fn train_graph(&mut self, g: &GnnGraph) {
        let n = g.node_feats.len();
        let d = self.p.d;
        let hs = self.forward(g);
        let h_last = hs.last().expect("layers");

        // Readout gradient + dH at the last layer.
        let m = g.endpoints.len().max(1) as f64;
        let mut dh = Matrix::zeros(n, d);
        let mut g_read = Matrix::zeros(d, 1);
        let mut g_bias = 0.0;
        for &(node, target) in &g.endpoints {
            let mut pred = self.bias;
            for c in 0..d {
                pred += h_last.at(node, c) * self.readout.at(c, 0);
            }
            let dl = 2.0 * (pred - target) / m;
            g_bias += dl;
            for c in 0..d {
                *g_read.at_mut(c, 0) += dl * h_last.at(node, c);
                *dh.at_mut(node, c) += dl * self.readout.at(c, 0);
            }
        }

        // Backwards through layers.
        let mut g_self: Vec<Matrix> = (0..self.p.layers).map(|_| Matrix::zeros(d, d)).collect();
        let mut g_nb: Vec<Matrix> = (0..self.p.layers).map(|_| Matrix::zeros(d, d)).collect();
        for l in (0..self.p.layers).rev() {
            let h_in = &hs[l];
            let h_out = &hs[l + 1];
            // ReLU mask.
            let mut dz = dh.clone();
            for i in 0..dz.data.len() {
                if h_out.data[i] <= 0.0 {
                    dz.data[i] = 0.0;
                }
            }
            // Recompute msg for this layer.
            let mut msg = Matrix::zeros(n, d);
            for i in 0..n {
                let fis = &g.fanins[i];
                if fis.is_empty() {
                    continue;
                }
                let inv = 1.0 / fis.len() as f64;
                for &f in fis {
                    for c in 0..d {
                        *msg.at_mut(i, c) += h_in.at(f as usize, c) * inv;
                    }
                }
            }
            g_self[l] = h_in.t_matmul(&dz);
            g_nb[l] = msg.t_matmul(&dz);
            // dH_in = dz Wselfᵀ + scatter(dz Wnbᵀ through mean agg).
            let mut dh_in = dz.matmul_t(&self.w_self[l]);
            let dmsg = dz.matmul_t(&self.w_nb[l]);
            for i in 0..n {
                let fis = &g.fanins[i];
                if fis.is_empty() {
                    continue;
                }
                let inv = 1.0 / fis.len() as f64;
                for &f in fis {
                    for c in 0..d {
                        *dh_in.at_mut(f as usize, c) += dmsg.at(i, c) * inv;
                    }
                }
            }
            dh = dh_in;
        }
        // Input embedding: H0 = relu(X W_in).
        let x = Matrix::from_fn(n, self.n_feats, |r, c| g.node_feats[r][c]);
        let mut dz0 = dh;
        for i in 0..dz0.data.len() {
            if hs[0].data[i] <= 0.0 {
                dz0.data[i] = 0.0;
            }
        }
        let g_in = x.t_matmul(&dz0);

        // Adam updates.
        self.step += 1;
        let (lr, t) = (self.p.learning_rate, self.step);
        self.a_in.step(&mut self.w_in, &g_in, lr, t);
        for l in 0..self.p.layers {
            self.a_self[l].step(&mut self.w_self[l], &g_self[l], lr, t);
            self.a_nb[l].step(&mut self.w_nb[l], &g_nb[l], lr, t);
        }
        self.a_read.step(&mut self.readout, &g_read, lr, t);
        self.bias -= lr * g_bias;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain graphs: target = chain length. The GNN with k layers can only
    /// see k hops, so it learns a coarse correlate — matching the paper's
    /// observation that GNNs underperform on this task.
    fn chain(len: usize) -> GnnGraph {
        let node_feats: Vec<Vec<f64>> = (0..len)
            .map(|i| vec![1.0, (i == 0) as i32 as f64])
            .collect();
        let fanins: Vec<Vec<u32>> = (0..len)
            .map(|i| if i == 0 { vec![] } else { vec![i as u32 - 1] })
            .collect();
        GnnGraph {
            node_feats,
            fanins,
            endpoints: vec![(len - 1, len as f64)],
        }
    }

    #[test]
    fn learns_coarse_signal() {
        let graphs: Vec<GnnGraph> = (2..14).map(chain).collect();
        let mut gnn = Gnn::new(
            2,
            GnnParams {
                epochs: 200,
                ..Default::default()
            },
        );
        gnn.fit(&graphs);
        // Longer chains should get (weakly) larger predictions.
        let p3 = gnn.predict(&chain(3))[0];
        let p12 = gnn.predict(&chain(12))[0];
        assert!(p12 > p3, "{p12} vs {p3}");
    }

    #[test]
    fn prediction_count_matches_endpoints() {
        let g = GnnGraph {
            node_feats: vec![vec![1.0, 0.0]; 5],
            fanins: vec![vec![], vec![0], vec![1], vec![1], vec![2, 3]],
            endpoints: vec![(4, 1.0), (3, 0.5)],
        };
        let gnn = Gnn::new(2, GnnParams::default());
        assert_eq!(gnn.predict(&g).len(), 2);
    }

    #[test]
    fn training_reduces_loss() {
        let graphs: Vec<GnnGraph> = (2..10).map(chain).collect();
        let mut gnn = Gnn::new(
            2,
            GnnParams {
                epochs: 1,
                ..Default::default()
            },
        );
        let loss = |gnn: &Gnn| -> f64 {
            graphs
                .iter()
                .map(|g| {
                    let p = gnn.predict(g);
                    g.endpoints
                        .iter()
                        .zip(&p)
                        .map(|(&(_, t), &pr)| (pr - t) * (pr - t))
                        .sum::<f64>()
                })
                .sum()
        };
        let before = loss(&gnn);
        for _ in 0..100 {
            gnn.fit(&graphs);
        }
        let after = loss(&gnn);
        assert!(after < before, "{after} !< {before}");
    }
}
