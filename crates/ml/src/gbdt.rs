//! Gradient-boosted decision trees with pluggable objectives.

use crate::flat::{flat_predict_enabled, FlatForest};
use crate::matrix::FeatureMatrix;
use crate::tree::{Binner, Tree, TreeParams, TreeScratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Per-tree growth parameters.
    pub tree: TreeParams,
    /// Row subsample fraction per round.
    pub subsample: f64,
    /// Histogram bin budget.
    pub max_bins: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
    /// Worker threads for the per-node feature scan (split decisions are
    /// bit-identical for any value).
    pub threads: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 100,
            learning_rate: 0.1,
            tree: TreeParams::default(),
            subsample: 0.85,
            max_bins: 128,
            seed: 7,
            threads: 1,
        }
    }
}

/// A training objective: fills per-row gradients/hessians given current
/// predictions.
pub trait Objective {
    /// Computes `grad`/`hess` for the current `preds`.
    fn grad_hess(&self, preds: &[f64], grad: &mut [f64], hess: &mut [f64]);
    /// Initial bias (base score) for the ensemble.
    fn base_score(&self) -> f64;
}

/// Plain squared-error regression on per-row targets.
#[derive(Debug, Clone)]
pub struct SquaredObjective {
    /// Per-row targets.
    pub targets: Vec<f64>,
}

impl Objective for SquaredObjective {
    fn grad_hess(&self, preds: &[f64], grad: &mut [f64], hess: &mut [f64]) {
        for i in 0..preds.len() {
            grad[i] = preds[i] - self.targets[i];
            hess[i] = 1.0;
        }
    }

    fn base_score(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }
}

/// The paper's customized max-loss (Eq. 3): rows are grouped per endpoint,
/// the endpoint prediction is `max` over its rows (sampled paths), and the
/// squared-error (sub)gradient flows through the argmax row of each group.
#[derive(Debug, Clone)]
pub struct GroupedMaxObjective {
    /// Row indices per group (endpoint).
    pub groups: Vec<Vec<usize>>,
    /// One target per group.
    pub targets: Vec<f64>,
}

impl Objective for GroupedMaxObjective {
    fn grad_hess(&self, preds: &[f64], grad: &mut [f64], hess: &mut [f64]) {
        grad.iter_mut().for_each(|g| *g = 0.0);
        hess.iter_mut().for_each(|h| *h = 0.0);
        for (g, rows) in self.groups.iter().enumerate() {
            let Some(&first) = rows.first() else { continue };
            let mut argmax = first;
            let mut maxv = preds[first];
            for &r in &rows[1..] {
                if preds[r] > maxv {
                    maxv = preds[r];
                    argmax = r;
                }
            }
            grad[argmax] = maxv - self.targets[g];
            hess[argmax] = 1.0;
        }
    }

    fn base_score(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<Tree>,
    n_features: usize,
    /// SoA inference kernel, derived from `trees` at fit/decode time —
    /// never persisted (the `model` namespace bytes are unchanged).
    flat: FlatForest,
}

impl Gbdt {
    /// Trains on row-major features with the given objective.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit(rows: &FeatureMatrix, objective: &dyn Objective, params: &GbdtParams) -> Gbdt {
        assert!(!rows.is_empty(), "GBDT needs data");
        let n_features = rows.n_cols();
        let n = rows.n_rows();
        let binner = Binner::fit(rows, params.max_bins);
        let codes = binner.codes(rows);
        let mut rng = StdRng::seed_from_u64(params.seed);

        let base = objective.base_score();
        let mut preds = vec![base; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let all: Vec<usize> = (0..n).collect();
        let mut scratch = TreeScratch::for_binner(&binner);

        for _round in 0..params.n_trees {
            objective.grad_hess(&preds, &mut grad, &mut hess);
            let sample: Vec<usize> = if params.subsample >= 1.0 {
                all.clone()
            } else {
                let k = ((n as f64) * params.subsample).ceil() as usize;
                let mut s = all.clone();
                s.shuffle(&mut rng);
                s.truncate(k.max(1));
                s
            };
            let tree = Tree::fit_with(
                &binner,
                &codes,
                &grad,
                &hess,
                &sample,
                &params.tree,
                &mut scratch,
                params.threads.max(1),
            );
            for i in 0..n {
                preds[i] += params.learning_rate * tree.predict_binned(&codes, i, n_features);
            }
            trees.push(tree);
        }
        let flat = FlatForest::from_trees(&trees, base, params.learning_rate);
        Gbdt {
            base,
            learning_rate: params.learning_rate,
            trees,
            n_features,
            flat,
        }
    }

    /// Predicts a single raw feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from training.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        if flat_predict_enabled() {
            return self.flat.predict_row(row);
        }
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.learning_rate * t.predict(row);
        }
        acc
    }

    /// Batch prediction into a caller-owned buffer (cleared first) via the
    /// flat SoA kernel, or the scalar walk under `RTLT_NO_FLAT_PREDICT=1`.
    pub fn predict_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        if flat_predict_enabled() {
            self.flat.predict_into(rows, out);
        } else {
            out.clear();
            out.extend(rows.rows().map(|r| self.predict(r)));
        }
    }

    /// Batch prediction.
    pub fn predict_all(&self, rows: &FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(rows, &mut out);
        out
    }

    /// Split counts per feature (simple importance metric).
    pub fn feature_importance(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_features];
        for t in &self.trees {
            for f in t.split_features() {
                counts[f] += 1;
            }
        }
        counts
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Inference needs only raw split thresholds (the training-time binner is
/// deliberately not persisted), so a decoded ensemble predicts identically
/// to the fitted one.
impl rtlt_store::Codec for Gbdt {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        e.f64(self.base);
        e.f64(self.learning_rate);
        self.trees.encode(e);
        e.usize(self.n_features);
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        let base = d.f64()?;
        let learning_rate = d.f64()?;
        let trees: Vec<Tree> = Vec::decode(d)?;
        let n_features = d.usize()?;
        let flat = FlatForest::from_trees(&trees, base, learning_rate);
        Ok(Gbdt {
            base,
            learning_rate,
            trees,
            n_features,
            flat,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            da += (x - ma).powi(2);
            db += (y - mb).powi(2);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-12)
    }

    #[test]
    fn regression_learns_nonlinear_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|_| {
                vec![
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(0.0..1.0),
                ]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r[0] * r[0] + 2.0 * (r[1] > 0.5) as i32 as f64)
            .collect();
        let rows = FeatureMatrix::from_rows(&rows);
        let model = Gbdt::fit(
            &rows,
            &SquaredObjective { targets: y.clone() },
            &GbdtParams::default(),
        );
        let preds = model.predict_all(&rows);
        assert!(pearson(&preds, &y) > 0.97);
    }

    #[test]
    fn generalizes_to_heldout_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen_row = |rng: &mut StdRng| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
        let f = |r: &[f64]| 3.0 * r[0] - 2.0 * r[1] + (r[0] * r[1]).sin();
        let train: Vec<Vec<f64>> = (0..800).map(|_| gen_row(&mut rng)).collect();
        let ytrain: Vec<f64> = train.iter().map(|r| f(r)).collect();
        let test: Vec<Vec<f64>> = (0..200).map(|_| gen_row(&mut rng)).collect();
        let ytest: Vec<f64> = test.iter().map(|r| f(r)).collect();
        let model = Gbdt::fit(
            &FeatureMatrix::from_rows(&train),
            &SquaredObjective { targets: ytrain },
            &GbdtParams::default(),
        );
        let preds = model.predict_all(&FeatureMatrix::from_rows(&test));
        assert!(pearson(&preds, &ytest) > 0.95);
    }

    #[test]
    fn grouped_max_recovers_group_targets() {
        // Each group has 4 rows; the target equals the max of a hidden
        // per-row function. The model must learn the per-row function well
        // enough that the per-group max matches the target.
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows = Vec::new();
        let mut groups = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..300 {
            let mut g = Vec::new();
            let mut best = f64::MIN;
            for _ in 0..4 {
                let x = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
                let v = 2.0 * x[0] + x[1];
                best = best.max(v);
                g.push(rows.len());
                rows.push(x);
            }
            groups.push(g);
            targets.push(best);
        }
        let obj = GroupedMaxObjective {
            groups: groups.clone(),
            targets: targets.clone(),
        };
        let rows = FeatureMatrix::from_rows(&rows);
        let model = Gbdt::fit(&rows, &obj, &GbdtParams::default());
        let preds = model.predict_all(&rows);
        let group_preds: Vec<f64> = groups
            .iter()
            .map(|g| g.iter().map(|&r| preds[r]).fold(f64::MIN, f64::max))
            .collect();
        assert!(
            pearson(&group_preds, &targets) > 0.9,
            "R={}",
            pearson(&group_preds, &targets)
        );
    }

    #[test]
    fn codec_round_trip_predicts_identically() {
        use rtlt_store::Codec;
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 13) as f64, (i % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 - r[1]).collect();
        let rows = FeatureMatrix::from_rows(&rows);
        let model = Gbdt::fit(
            &rows,
            &SquaredObjective { targets: y },
            &GbdtParams::default(),
        );
        let back = Gbdt::from_bytes(&model.to_bytes()).expect("round trip");
        assert_eq!(back.n_trees(), model.n_trees());
        for r in rows.rows() {
            assert_eq!(back.predict(r).to_bits(), model.predict(r).to_bits());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let rows = FeatureMatrix::from_rows(&rows);
        let m1 = Gbdt::fit(
            &rows,
            &SquaredObjective { targets: y.clone() },
            &GbdtParams::default(),
        );
        let m2 = Gbdt::fit(
            &rows,
            &SquaredObjective { targets: y },
            &GbdtParams::default(),
        );
        for r in rows.rows() {
            assert_eq!(m1.predict(r), m2.predict(r));
        }
    }

    #[test]
    fn feature_importance_flags_informative_feature() {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 10.0 * r[1]).collect();
        let model = Gbdt::fit(
            &FeatureMatrix::from_rows(&rows),
            &SquaredObjective { targets: y },
            &GbdtParams::default(),
        );
        let imp = model.feature_importance();
        assert!(imp[1] > imp[0], "{imp:?}");
    }
}
