//! Feature standardization (zero mean, unit variance).

use crate::matrix::FeatureMatrix;

/// Per-feature standardizer fitted on training rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fits on row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit(rows: &FeatureMatrix) -> Scaler {
        assert!(!rows.is_empty(), "scaler needs data");
        let n_features = rows.n_cols();
        let n = rows.n_rows() as f64;
        let mut mean = vec![0.0; n_features];
        for r in rows.rows() {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; n_features];
        for r in rows.rows() {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(r) {
                let d = x - m;
                *v += d * d;
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-12)).collect();
        Scaler { mean, std }
    }

    /// Transforms one row in place.
    pub fn transform(&self, row: &mut [f64]) {
        for ((x, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *x = (*x - m) / s;
        }
    }

    /// Transforms a batch of rows in place.
    pub fn transform_all(&self, rows: &mut FeatureMatrix) {
        let nf = self.mean.len();
        for row in rows.as_mut_slice().chunks_exact_mut(nf.max(1)) {
            for ((x, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *x = (*x - m) / s;
            }
        }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 5.0 * i as f64 + 3.0])
            .collect();
        let mut t = FeatureMatrix::from_rows(&rows);
        let sc = Scaler::fit(&t);
        sc.transform_all(&mut t);
        for c in 0..2 {
            let mean: f64 = t.rows().map(|r| r[c]).sum::<f64>() / t.n_rows() as f64;
            let var: f64 = t.rows().map(|r| (r[c] - mean).powi(2)).sum::<f64>() / t.n_rows() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let rows = FeatureMatrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]);
        let sc = Scaler::fit(&rows);
        let mut r = vec![7.0];
        sc.transform(&mut r);
        assert!(r[0].is_finite());
    }
}
