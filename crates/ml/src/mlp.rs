//! Multilayer perceptron with manual backprop and Adam.
//!
//! Supports plain squared-error regression and the paper's grouped
//! max-loss: the forward pass evaluates every sampled path of an endpoint,
//! the endpoint prediction is the max, and the gradient flows back through
//! the argmax row only (the exact subgradient of `max`).

use crate::matrix::{FeatureMatrix, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// MLP hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    /// Hidden layer widths (the paper uses 3 layers × 512; we default
    /// smaller for CI-scale data).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size (rows for regression, groups for max-loss).
    pub batch: usize,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: vec![64, 64, 64],
            learning_rate: 1e-3,
            epochs: 60,
            batch: 64,
            seed: 11,
        }
    }
}

#[derive(Debug, Clone)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    // Adam state.
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(inp: usize, out: usize, rng: &mut StdRng) -> Dense {
        let scale = (2.0 / inp as f64).sqrt();
        Dense {
            w: Matrix::from_fn(inp, out, |_, _| rng.gen_range(-scale..scale)),
            b: vec![0.0; out],
            mw: Matrix::zeros(inp, out),
            vw: Matrix::zeros(inp, out),
            mb: vec![0.0; out],
            vb: vec![0.0; out],
        }
    }

    fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows {
            for c in 0..y.cols {
                *y.at_mut(r, c) += self.b[c];
            }
        }
        y
    }

    fn adam_step(&mut self, gw: &Matrix, gb: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.data.len() {
            self.mw.data[i] = B1 * self.mw.data[i] + (1.0 - B1) * gw.data[i];
            self.vw.data[i] = B2 * self.vw.data[i] + (1.0 - B2) * gw.data[i] * gw.data[i];
            let mhat = self.mw.data[i] / bc1;
            let vhat = self.vw.data[i] / bc2;
            self.w.data[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
        for i in 0..self.b.len() {
            self.mb[i] = B1 * self.mb[i] + (1.0 - B1) * gb[i];
            self.vb[i] = B2 * self.vb[i] + (1.0 - B2) * gb[i] * gb[i];
            let mhat = self.mb[i] / bc1;
            let vhat = self.vb[i] / bc2;
            self.b[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// A fitted MLP regressor.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    n_features: usize,
    params: MlpParams,
    step: usize,
}

impl Mlp {
    /// Initializes an untrained network.
    pub fn new(n_features: usize, params: MlpParams) -> Mlp {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut dims = vec![n_features];
        dims.extend(&params.hidden);
        dims.push(1);
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            n_features,
            params,
            step: 0,
        }
    }

    /// Forward pass caching activations for backprop.
    fn forward_cached(&self, x: &Matrix) -> (Vec<Matrix>, Matrix) {
        let mut acts = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(&cur);
            if li + 1 < self.layers.len() {
                for v in z.data.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            acts.push(cur);
            cur = z;
        }
        (acts, cur)
    }

    /// Backprop from per-row output gradients; applies one Adam step.
    fn backward(&mut self, acts: &[Matrix], outputs: &Matrix, mut dout: Matrix, lr: f64) {
        self.step += 1;
        let t = self.step;
        let _ = outputs;
        for li in (0..self.layers.len()).rev() {
            let input = &acts[li];
            // dW = inputᵀ · dout ; db = Σ dout
            let gw = input.t_matmul(&dout);
            let mut gb = vec![0.0; dout.cols];
            for r in 0..dout.rows {
                for c in 0..dout.cols {
                    gb[c] += dout.at(r, c);
                }
            }
            // d_input = dout · Wᵀ, gated by ReLU mask of the *input* of this
            // layer (which is the output of the previous layer).
            let mut dinp = dout.matmul_t(&self.layers[li].w);
            if li > 0 {
                for i in 0..dinp.data.len() {
                    if input.data[i] <= 0.0 {
                        dinp.data[i] = 0.0;
                    }
                }
            }
            self.layers[li].adam_step(&gw, &gb, lr, t);
            dout = dinp;
        }
    }

    /// Trains with squared-error loss on per-row targets.
    pub fn fit_regression(&mut self, rows: &FeatureMatrix, targets: &[f64]) {
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x5eed);
        let idx: Vec<usize> = (0..rows.n_rows()).collect();
        let params = self.params.clone();
        for _epoch in 0..params.epochs {
            let mut order = idx.clone();
            order.shuffle(&mut rng);
            for chunk in order.chunks(params.batch) {
                let x = Matrix::from_fn(chunk.len(), self.n_features, |r, c| rows.row(chunk[r])[c]);
                let (acts, out) = self.forward_cached(&x);
                let mut dout = Matrix::zeros(out.rows, 1);
                for (r, &row) in chunk.iter().enumerate() {
                    dout.data[r] = 2.0 * (out.at(r, 0) - targets[row]) / chunk.len() as f64;
                }
                self.backward(&acts, &out, dout, params.learning_rate);
            }
        }
    }

    /// Trains with the grouped max-loss: `groups[g]` are the row indices of
    /// the sampled paths of endpoint `g`, with one target per group.
    pub fn fit_grouped_max(
        &mut self,
        rows: &FeatureMatrix,
        groups: &[Vec<usize>],
        targets: &[f64],
    ) {
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0xface);
        let gidx: Vec<usize> = (0..groups.len()).collect();
        let params = self.params.clone();
        for _epoch in 0..params.epochs {
            let mut order = gidx.clone();
            order.shuffle(&mut rng);
            for chunk in order.chunks(params.batch.max(1)) {
                // Flatten all rows of the chunk's groups.
                let mut flat: Vec<usize> = Vec::new();
                let mut spans: Vec<(usize, usize)> = Vec::new();
                for &g in chunk {
                    let s = flat.len();
                    flat.extend(&groups[g]);
                    spans.push((s, flat.len()));
                }
                if flat.is_empty() {
                    continue;
                }
                let x = Matrix::from_fn(flat.len(), self.n_features, |r, c| rows.row(flat[r])[c]);
                let (acts, out) = self.forward_cached(&x);
                let mut dout = Matrix::zeros(out.rows, 1);
                for (k, &g) in chunk.iter().enumerate() {
                    let (s, e) = spans[k];
                    if s == e {
                        continue;
                    }
                    let mut arg = s;
                    for r in s..e {
                        if out.at(r, 0) > out.at(arg, 0) {
                            arg = r;
                        }
                    }
                    dout.data[arg] = 2.0 * (out.at(arg, 0) - targets[g]) / chunk.len() as f64;
                }
                self.backward(&acts, &out, dout, params.learning_rate);
            }
        }
    }

    /// Predicts a single row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let x = Matrix::from_fn(1, self.n_features, |_, c| row[c]);
        let (_, out) = self.forward_cached(&x);
        out.at(0, 0)
    }

    /// Batch prediction.
    pub fn predict_all(&self, rows: &FeatureMatrix) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        let n = rows.n_rows();
        let x = Matrix::from_fn(n, self.n_features, |r, c| rows.row(r)[c]);
        let (_, out) = self.forward_cached(&x);
        (0..n).map(|r| out.at(r, 0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
        for (x, y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            da += (x - ma).powi(2);
            db += (y - mb).powi(2);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-12)
    }

    #[test]
    fn learns_linear_function() {
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 0.5).collect();
        let mut mlp = Mlp::new(
            2,
            MlpParams {
                epochs: 120,
                ..Default::default()
            },
        );
        let rows = FeatureMatrix::from_rows(&rows);
        mlp.fit_regression(&rows, &y);
        let preds = mlp.predict_all(&rows);
        assert!(pearson(&preds, &y) > 0.98, "R={}", pearson(&preds, &y));
    }

    #[test]
    fn grouped_max_trains() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut rows = Vec::new();
        let mut groups = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..150 {
            let mut g = Vec::new();
            let mut best = f64::MIN;
            for _ in 0..3 {
                let x = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
                let v = x[0] + 0.5 * x[1];
                best = best.max(v);
                g.push(rows.len());
                rows.push(x);
            }
            groups.push(g);
            targets.push(best);
        }
        let mut mlp = Mlp::new(
            2,
            MlpParams {
                epochs: 150,
                batch: 16,
                ..Default::default()
            },
        );
        let rows = FeatureMatrix::from_rows(&rows);
        mlp.fit_grouped_max(&rows, &groups, &targets);
        let preds = mlp.predict_all(&rows);
        let gp: Vec<f64> = groups
            .iter()
            .map(|g| g.iter().map(|&r| preds[r]).fold(f64::MIN, f64::max))
            .collect();
        assert!(
            pearson(&gp, &targets) > 0.85,
            "R={}",
            pearson(&gp, &targets)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i as f64) / 50.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 3.0).collect();
        let mut a = Mlp::new(
            1,
            MlpParams {
                epochs: 10,
                ..Default::default()
            },
        );
        let mut b = Mlp::new(
            1,
            MlpParams {
                epochs: 10,
                ..Default::default()
            },
        );
        let rows = FeatureMatrix::from_rows(&rows);
        a.fit_regression(&rows, &y);
        b.fit_regression(&rows, &y);
        assert_eq!(a.predict(rows.row(3)), b.predict(rows.row(3)));
    }
}
