//! Pure-Rust machine learning for the RTL-Timer reproduction.
//!
//! Reimplements (in the same algorithmic shape, without the Python
//! ecosystem) every model family the paper evaluates:
//!
//! * [`Gbdt`] — histogram gradient-boosted regression trees (the paper's
//!   XGBoost stand-in) with pluggable objectives, including the customized
//!   **grouped max-loss** of Eq. 3: the prediction of an endpoint is the max
//!   over its sampled paths, and the (sub)gradient flows through the argmax
//!   path;
//! * [`LambdaMart`] — pairwise learning-to-rank with ΔNDCG-weighted lambdas
//!   for the critical-level ranking task;
//! * [`Mlp`] — multilayer perceptron with Adam, supporting plain regression
//!   and the same grouped max-loss;
//! * [`PathTransformer`] — a small single-head self-attention encoder over
//!   operator sequences (the paper's "transformer + MLP" bit-wise model);
//! * [`Gnn`] — a message-passing network over the BOG with endpoint
//!   readout, reproducing the customized-GNN baseline;
//! * [`Scaler`] — feature standardization.
//!
//! Everything is deterministic given a seed.

mod attention;
mod flat;
mod gbdt;
mod gnn;
mod ltr;
mod matrix;
mod mlp;
mod scaler;
mod tree;

pub use attention::{PathSample, PathTransformer, TransformerParams};
pub use flat::{flat_predict_enabled, FlatForest, ROW_BLOCK};
pub use gbdt::{Gbdt, GbdtParams, GroupedMaxObjective, Objective, SquaredObjective};
pub use gnn::{Gnn, GnnGraph, GnnParams};
pub use ltr::{LambdaMart, LtrParams};
pub use matrix::{FeatureMatrix, Matrix};
pub use mlp::{Mlp, MlpParams};
pub use scaler::Scaler;
pub use tree::{hist_subtract_enabled, Binner, Tree, TreeParams, TreeScratch};
