//! Histogram-based regression trees (the building block of GBDT and
//! LambdaMART).

/// Quantile binner mapping raw feature values to ≤256 bins per feature.
#[derive(Debug, Clone)]
pub struct Binner {
    /// Per-feature ascending bin upper edges (bin `i` covers values ≤
    /// `edges[i]`; the last bin is unbounded).
    edges: Vec<Vec<f64>>,
}

impl Binner {
    /// Fits quantile bins (`max_bins` ≤ 256) on row-major training data.
    pub fn fit(rows: &[Vec<f64>], n_features: usize, max_bins: usize) -> Binner {
        let max_bins = max_bins.clamp(2, 256);
        let mut edges = Vec::with_capacity(n_features);
        for f in 0..n_features {
            let mut vals: Vec<f64> = rows.iter().map(|r| r[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            let e: Vec<f64> = if vals.len() <= max_bins {
                vals
            } else {
                (1..=max_bins)
                    .map(|i| vals[(i * (vals.len() - 1)) / max_bins])
                    .collect()
            };
            edges.push(e);
        }
        Binner { edges }
    }

    /// Bin index of a value for a feature.
    #[inline]
    pub fn bin(&self, feature: usize, value: f64) -> u16 {
        let e = &self.edges[feature];
        // Binary search for first edge >= value.
        match e.binary_search_by(|probe| probe.partial_cmp(&value).expect("finite")) {
            Ok(i) => i as u16,
            Err(i) => i.min(e.len().saturating_sub(1)) as u16,
        }
    }

    /// Upper edge value of a bin (used to recover split thresholds).
    pub fn edge(&self, feature: usize, bin: u16) -> f64 {
        self.edges[feature][(bin as usize).min(self.edges[feature].len() - 1)]
    }

    /// Bins an entire dataset to a row-major code matrix.
    pub fn codes(&self, rows: &[Vec<f64>]) -> Vec<u16> {
        let nf = self.edges.len();
        let mut out = Vec::with_capacity(rows.len() * nf);
        for r in rows {
            for f in 0..nf {
                out.push(self.bin(f, r[f]));
            }
        }
        out
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins for a feature.
    pub fn n_bins(&self, feature: usize) -> usize {
        self.edges[feature].len()
    }
}

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Minimum split gain.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            lambda: 1.0,
            min_child_weight: 1.0,
            min_gain: 1e-6,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Raw threshold: go left when `value <= threshold`.
        threshold: f64,
        /// Bin threshold used during training.
        bin: u16,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Grows a tree on binned `codes` minimizing the second-order objective
    /// given per-row gradients and hessians.
    pub fn fit(
        binner: &Binner,
        codes: &[u16],
        grad: &[f64],
        hess: &[f64],
        row_indices: &[usize],
        params: &TreeParams,
    ) -> Tree {
        let nf = binner.n_features();
        let mut nodes = Vec::new();
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new(); // (node slot, rows, depth)
        nodes.push(Node::Leaf { value: 0.0 });
        stack.push((0, row_indices.to_vec(), 0));

        while let Some((slot, rows, depth)) = stack.pop() {
            let gsum: f64 = rows.iter().map(|&r| grad[r]).sum();
            let hsum: f64 = rows.iter().map(|&r| hess[r]).sum();
            let leaf_value = -gsum / (hsum + params.lambda);
            if depth >= params.max_depth || rows.len() < 2 {
                nodes[slot] = Node::Leaf { value: leaf_value };
                continue;
            }

            // Best split across features via bin histograms.
            let mut best: Option<(f64, usize, u16)> = None;
            let parent_score = gsum * gsum / (hsum + params.lambda);
            for f in 0..nf {
                let nb = binner.n_bins(f);
                if nb < 2 {
                    continue;
                }
                let mut hist_g = vec![0.0f64; nb];
                let mut hist_h = vec![0.0f64; nb];
                for &r in &rows {
                    let b = codes[r * nf + f] as usize;
                    hist_g[b] += grad[r];
                    hist_h[b] += hess[r];
                }
                let mut gl = 0.0;
                let mut hl = 0.0;
                for b in 0..nb - 1 {
                    gl += hist_g[b];
                    hl += hist_h[b];
                    let gr = gsum - gl;
                    let hr = hsum - hl;
                    if hl < params.min_child_weight || hr < params.min_child_weight {
                        continue;
                    }
                    let gain = gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                        - parent_score;
                    if gain > params.min_gain && best.is_none_or(|(bg, _, _)| gain > bg) {
                        best = Some((gain, f, b as u16));
                    }
                }
            }

            match best {
                None => nodes[slot] = Node::Leaf { value: leaf_value },
                Some((_, f, bin)) => {
                    let (lrows, rrows): (Vec<usize>, Vec<usize>) =
                        rows.iter().partition(|&&r| codes[r * nf + f] <= bin);
                    let left = nodes.len();
                    nodes.push(Node::Leaf { value: 0.0 });
                    let right = nodes.len();
                    nodes.push(Node::Leaf { value: 0.0 });
                    nodes[slot] = Node::Split {
                        feature: f,
                        threshold: binner.edge(f, bin),
                        bin,
                        left,
                        right,
                    };
                    stack.push((left, lrows, depth + 1));
                    stack.push((right, rrows, depth + 1));
                }
            }
        }
        Tree { nodes }
    }

    /// Predicts from raw (unbinned) features.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts from binned codes (training-time fast path).
    pub fn predict_binned(&self, codes: &[u16], row: usize, nf: usize) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    bin,
                    left,
                    right,
                    ..
                } => {
                    i = if codes[row * nf + feature] <= *bin {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Node count (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Features used by splits (for importance accounting).
    pub fn split_features(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                _ => None,
            })
            .collect()
    }
}

impl rtlt_store::Codec for Node {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        match self {
            Node::Leaf { value } => {
                e.u8(0);
                e.f64(*value);
            }
            Node::Split {
                feature,
                threshold,
                bin,
                left,
                right,
            } => {
                e.u8(1);
                e.usize(*feature);
                e.f64(*threshold);
                e.u32(*bin as u32);
                e.usize(*left);
                e.usize(*right);
            }
        }
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(match d.u8()? {
            0 => Node::Leaf { value: d.f64()? },
            1 => Node::Split {
                feature: d.usize()?,
                threshold: d.f64()?,
                bin: d.u32()? as u16,
                left: d.usize()?,
                right: d.usize()?,
            },
            _ => return Err(rtlt_store::CodecError::new("tree Node tag")),
        })
    }
}

impl rtlt_store::Codec for Tree {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        self.nodes.encode(e);
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(Tree {
            nodes: Vec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = step function of x0 plus linear x1.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 10.0 { 5.0 } else { -5.0 } + 0.5 * r[1])
            .collect();
        (rows, y)
    }

    #[test]
    fn single_tree_fits_step_function() {
        let (rows, y) = xy();
        let binner = Binner::fit(&rows, 2, 64);
        let codes = binner.codes(&rows);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect(); // residual from 0
        let hess = vec![1.0; rows.len()];
        let idx: Vec<usize> = (0..rows.len()).collect();
        let tree = Tree::fit(&binner, &codes, &grad, &hess, &idx, &TreeParams::default());
        // Predictions should correlate strongly with y.
        let preds: Vec<f64> = rows.iter().map(|r| tree.predict(r)).collect();
        let err: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t).powi(2))
            .sum::<f64>()
            / rows.len() as f64;
        assert!(err < 1.0, "mse {err}");
    }

    #[test]
    fn binned_and_raw_prediction_agree() {
        let (rows, y) = xy();
        let binner = Binner::fit(&rows, 2, 32);
        let codes = binner.codes(&rows);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; rows.len()];
        let idx: Vec<usize> = (0..rows.len()).collect();
        let tree = Tree::fit(&binner, &codes, &grad, &hess, &idx, &TreeParams::default());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(tree.predict(r), tree.predict_binned(&codes, i, 2));
        }
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let (rows, y) = xy();
        let binner = Binner::fit(&rows, 2, 32);
        let codes = binner.codes(&rows);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; rows.len()];
        let idx: Vec<usize> = (0..rows.len()).collect();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let tree = Tree::fit(&binner, &codes, &grad, &hess, &idx, &params);
        assert!(tree.is_empty());
        // Leaf = mean of y under squared loss (lambda-shrunk).
        let mean_y = y.iter().sum::<f64>() / y.len() as f64;
        let pred = tree.predict(&rows[0]);
        assert!((pred - mean_y).abs() < 0.2, "{pred} vs {mean_y}");
    }

    #[test]
    fn binner_handles_constant_feature() {
        let rows = vec![vec![3.0], vec![3.0], vec![3.0]];
        let binner = Binner::fit(&rows, 1, 16);
        assert_eq!(binner.n_bins(0), 1);
        assert_eq!(binner.bin(0, 3.0), 0);
        assert_eq!(binner.bin(0, 100.0), 0);
    }
}
