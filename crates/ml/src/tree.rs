//! Histogram-based regression trees (the building block of GBDT and
//! LambdaMART).

use crate::matrix::FeatureMatrix;
use std::sync::OnceLock;

/// Quantile binner mapping raw feature values to ≤256 bins per feature.
#[derive(Debug, Clone)]
pub struct Binner {
    /// Per-feature ascending bin upper edges (bin `i` covers values ≤
    /// `edges[i]`; the last bin is unbounded).
    edges: Vec<Vec<f64>>,
}

impl Binner {
    /// Fits quantile bins (`max_bins` ≤ 256) on row-major training data.
    pub fn fit(features: &FeatureMatrix, max_bins: usize) -> Binner {
        let max_bins = max_bins.clamp(2, 256);
        let n_features = features.n_cols();
        let mut edges = Vec::with_capacity(n_features);
        for f in 0..n_features {
            let mut vals: Vec<f64> = features.rows().map(|r| r[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            let e: Vec<f64> = if vals.len() <= max_bins {
                vals
            } else {
                (1..=max_bins)
                    .map(|i| vals[(i * (vals.len() - 1)) / max_bins])
                    .collect()
            };
            edges.push(e);
        }
        Binner { edges }
    }

    /// Bin index of a value for a feature.
    #[inline]
    pub fn bin(&self, feature: usize, value: f64) -> u16 {
        let e = &self.edges[feature];
        // Binary search for first edge >= value.
        match e.binary_search_by(|probe| probe.partial_cmp(&value).expect("finite")) {
            Ok(i) => i as u16,
            Err(i) => i.min(e.len().saturating_sub(1)) as u16,
        }
    }

    /// Upper edge value of a bin (used to recover split thresholds).
    pub fn edge(&self, feature: usize, bin: u16) -> f64 {
        self.edges[feature][(bin as usize).min(self.edges[feature].len() - 1)]
    }

    /// Bins an entire dataset to a row-major code matrix.
    pub fn codes(&self, features: &FeatureMatrix) -> Vec<u16> {
        let nf = self.edges.len();
        let mut out = Vec::with_capacity(features.n_rows() * nf);
        for r in features.rows() {
            for f in 0..nf {
                out.push(self.bin(f, r[f]));
            }
        }
        out
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins for a feature.
    pub fn n_bins(&self, feature: usize) -> usize {
        self.edges[feature].len()
    }
}

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Minimum split gain.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            lambda: 1.0,
            min_child_weight: 1.0,
            min_gain: 1e-6,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Raw threshold: go left when `value <= threshold`.
        threshold: f64,
        /// Bin threshold used during training.
        bin: u16,
        left: usize,
        right: usize,
    },
}

/// Whether the sibling-subtraction histogram trick is active. Opt-in via
/// `RTLT_HIST_SUBTRACT=1`: deriving the larger child's histogram as
/// `parent − smaller` reorders floating-point summation, and the ulp-level
/// gain differences can flip near-tie splits — so the default stays on the
/// direct path to keep fitted models byte-stable across releases.
pub fn hist_subtract_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("RTLT_HIST_SUBTRACT")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Row count below which the per-node feature scan stays sequential even
/// when `threads > 1` (thread spawn would dominate the histogram fill).
const PAR_SCAN_MIN_ROWS: usize = 4096;

/// Reusable training scratch: one flattened `(grad, hess)` histogram
/// covering every feature's bins, sized once per binner and zeroed per
/// node — replacing the two fresh `vec![0.0; nb]` allocations per feature
/// per node of the old fit loop.
#[derive(Debug, Default)]
pub struct TreeScratch {
    /// Interleaved `(grad, hess)` pairs, `2 * total_bins` long.
    hist: Vec<f64>,
    /// Per-feature starting bin offset into the flattened histogram.
    feat_off: Vec<usize>,
    /// Total bins across all features.
    total_bins: usize,
}

impl TreeScratch {
    /// Empty scratch; sized lazily on first use.
    pub fn new() -> TreeScratch {
        TreeScratch::default()
    }

    /// Scratch pre-sized for a binner.
    pub fn for_binner(binner: &Binner) -> TreeScratch {
        let mut s = TreeScratch::new();
        s.ensure(binner);
        s
    }

    fn ensure(&mut self, binner: &Binner) {
        let nf = binner.n_features();
        if self.feat_off.len() == nf
            && (0..nf).all(|f| self.bins_of(f) == binner.n_bins(f))
            && self.hist.len() == 2 * self.total_bins
        {
            return;
        }
        self.feat_off.clear();
        let mut off = 0;
        for f in 0..nf {
            self.feat_off.push(off);
            off += binner.n_bins(f);
        }
        self.total_bins = off;
        self.hist.clear();
        self.hist.resize(2 * off, 0.0);
    }

    fn bins_of(&self, f: usize) -> usize {
        let end = self.feat_off.get(f + 1).copied().unwrap_or(self.total_bins);
        end - self.feat_off[f]
    }
}

/// Fills the flattened histogram for one feature range over the given
/// rows, feature-outer / row-inner. Per-(feature, bin) accumulation order
/// is row order — identical to the row-outer fill and to the legacy
/// per-feature loop, so every fill strategy is bit-exact.
#[allow(clippy::too_many_arguments)]
fn fill_hist_features(
    hist: &mut [f64],
    feat_off: &[usize],
    base_off: usize,
    feats: std::ops::Range<usize>,
    codes: &[u16],
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    nf: usize,
) {
    for f in feats {
        let off = feat_off[f] - base_off;
        for &r in rows {
            let b = codes[r * nf + f] as usize;
            let o = 2 * (off + b);
            hist[o] += grad[r];
            hist[o + 1] += hess[r];
        }
    }
}

/// Scans one feature's histogram slice for its best split. Returns the
/// per-feature best as `(gain, bin)` with ties keeping the earliest bin —
/// exactly the legacy sequential scan's behavior.
#[allow(clippy::too_many_arguments)]
fn scan_feature(
    hist: &[f64],
    off: usize,
    nb: usize,
    gsum: f64,
    hsum: f64,
    parent_score: f64,
    params: &TreeParams,
) -> Option<(f64, u16)> {
    let mut best: Option<(f64, u16)> = None;
    let mut gl = 0.0;
    let mut hl = 0.0;
    for b in 0..nb - 1 {
        gl += hist[2 * (off + b)];
        hl += hist[2 * (off + b) + 1];
        let gr = gsum - gl;
        let hr = hsum - hl;
        if hl < params.min_child_weight || hr < params.min_child_weight {
            continue;
        }
        let gain = gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score;
        if gain > params.min_gain && best.is_none_or(|(bg, _)| gain > bg) {
            best = Some((gain, b as u16));
        }
    }
    best
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// One pending node of the growth stack.
struct GrowEntry {
    slot: usize,
    rows: Vec<usize>,
    depth: usize,
    /// Histogram handed down by sibling subtraction (flattened, same
    /// layout as [`TreeScratch::hist`]); `None` means fill directly.
    hist: Option<Vec<f64>>,
}

impl Tree {
    /// Grows a tree on binned `codes` minimizing the second-order objective
    /// given per-row gradients and hessians (sequential, private scratch).
    pub fn fit(
        binner: &Binner,
        codes: &[u16],
        grad: &[f64],
        hess: &[f64],
        row_indices: &[usize],
        params: &TreeParams,
    ) -> Tree {
        let mut scratch = TreeScratch::for_binner(binner);
        Self::fit_with(
            binner,
            codes,
            grad,
            hess,
            row_indices,
            params,
            &mut scratch,
            1,
        )
    }

    /// [`Tree::fit`] with a caller-owned [`TreeScratch`] (reused across
    /// boosting rounds) and a `par_map` fan-out of the per-node feature
    /// scan across `threads` workers. Split decisions are bit-identical
    /// for any thread count: per-feature bests are reduced in feature
    /// order with a strict `>` comparison.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_with(
        binner: &Binner,
        codes: &[u16],
        grad: &[f64],
        hess: &[f64],
        row_indices: &[usize],
        params: &TreeParams,
        scratch: &mut TreeScratch,
        threads: usize,
    ) -> Tree {
        let nf = binner.n_features();
        scratch.ensure(binner);
        let subtract = hist_subtract_enabled();
        let mut nodes = Vec::new();
        let mut stack: Vec<GrowEntry> = Vec::new();
        nodes.push(Node::Leaf { value: 0.0 });
        stack.push(GrowEntry {
            slot: 0,
            rows: row_indices.to_vec(),
            depth: 0,
            hist: None,
        });

        while let Some(entry) = stack.pop() {
            let GrowEntry {
                slot,
                rows,
                depth,
                hist,
            } = entry;
            let gsum: f64 = rows.iter().map(|&r| grad[r]).sum();
            let hsum: f64 = rows.iter().map(|&r| hess[r]).sum();
            let leaf_value = -gsum / (hsum + params.lambda);
            if depth >= params.max_depth || rows.len() < 2 {
                nodes[slot] = Node::Leaf { value: leaf_value };
                continue;
            }

            let parent_score = gsum * gsum / (hsum + params.lambda);
            let par_path = hist.is_none() && threads > 1 && rows.len() >= PAR_SCAN_MIN_ROWS;
            let best = if let Some(h) = &hist {
                // Histogram handed down by sibling subtraction.
                Self::scan_all(binner, h, 0, gsum, hsum, parent_score, params)
            } else if par_path {
                // Fan the fill + scan out over contiguous feature chunks;
                // each worker owns its chunk's histogram slice.
                let chunk = nf.div_ceil(threads.max(1));
                let ranges: Vec<std::ops::Range<usize>> = (0..nf)
                    .step_by(chunk.max(1))
                    .map(|s| s..(s + chunk).min(nf))
                    .collect();
                let feat_off = &scratch.feat_off;
                let per_chunk = rtlt_runtime::par_map(threads, &ranges, |range| {
                    let base = feat_off[range.start];
                    let end = range
                        .end
                        .checked_sub(1)
                        .map(|l| feat_off[l] + binner.n_bins(l))
                        .unwrap_or(base);
                    let mut hist = vec![0.0f64; 2 * (end - base)];
                    fill_hist_features(
                        &mut hist,
                        feat_off,
                        base,
                        range.clone(),
                        codes,
                        grad,
                        hess,
                        &rows,
                        nf,
                    );
                    let mut best: Option<(f64, usize, u16)> = None;
                    for f in range.clone() {
                        let nb = binner.n_bins(f);
                        if nb < 2 {
                            continue;
                        }
                        let off = feat_off[f] - base;
                        if let Some((gain, bin)) =
                            scan_feature(&hist, off, nb, gsum, hsum, parent_score, params)
                        {
                            if best.is_none_or(|(bg, _, _)| gain > bg) {
                                best = Some((gain, f, bin));
                            }
                        }
                    }
                    best
                });
                // Reduce in chunk (= feature) order with strict `>`.
                let mut best: Option<(f64, usize, u16)> = None;
                for b in per_chunk.into_iter().flatten() {
                    if best.is_none_or(|(bg, _, _)| b.0 > bg) {
                        best = Some(b);
                    }
                }
                best
            } else {
                // Single pass, row-outer / feature-inner: grad/hess and the
                // row's codes are each read once per row, and the whole
                // node needs exactly one zeroing of one flat buffer.
                scratch.hist.iter_mut().for_each(|v| *v = 0.0);
                for &r in &rows {
                    let g = grad[r];
                    let h = hess[r];
                    let row_codes = &codes[r * nf..r * nf + nf];
                    for (f, &c) in row_codes.iter().enumerate() {
                        let o = 2 * (scratch.feat_off[f] + c as usize);
                        scratch.hist[o] += g;
                        scratch.hist[o + 1] += h;
                    }
                }
                Self::scan_all(binner, &scratch.hist, 0, gsum, hsum, parent_score, params)
            };

            match best {
                None => nodes[slot] = Node::Leaf { value: leaf_value },
                Some((_, f, bin)) => {
                    let (lrows, rrows): (Vec<usize>, Vec<usize>) =
                        rows.iter().partition(|&&r| codes[r * nf + f] <= bin);
                    let left = nodes.len();
                    nodes.push(Node::Leaf { value: 0.0 });
                    let right = nodes.len();
                    nodes.push(Node::Leaf { value: 0.0 });
                    nodes[slot] = Node::Split {
                        feature: f,
                        threshold: binner.edge(f, bin),
                        bin,
                        left,
                        right,
                    };
                    // Sibling subtraction: both children will scan, so
                    // build the smaller child's histogram directly and
                    // derive the larger's as parent − smaller. Needs the
                    // parent's histogram, which the parallel path never
                    // materializes in one place.
                    let mut lhist = None;
                    let mut rhist = None;
                    let scannable = |rs: &[usize]| depth + 1 < params.max_depth && rs.len() >= 2;
                    if subtract && !par_path && scannable(&lrows) && scannable(&rrows) {
                        let parent: &[f64] = hist.as_deref().unwrap_or(&scratch.hist);
                        let small_is_left = lrows.len() <= rrows.len();
                        let small = if small_is_left { &lrows } else { &rrows };
                        let mut sh = vec![0.0f64; parent.len()];
                        fill_hist_features(
                            &mut sh,
                            &scratch.feat_off,
                            0,
                            0..nf,
                            codes,
                            grad,
                            hess,
                            small,
                            nf,
                        );
                        let derived: Vec<f64> =
                            parent.iter().zip(&sh).map(|(p, s)| p - s).collect();
                        if small_is_left {
                            lhist = Some(sh);
                            rhist = Some(derived);
                        } else {
                            rhist = Some(sh);
                            lhist = Some(derived);
                        }
                    }
                    stack.push(GrowEntry {
                        slot: left,
                        rows: lrows,
                        depth: depth + 1,
                        hist: lhist,
                    });
                    stack.push(GrowEntry {
                        slot: right,
                        rows: rrows,
                        depth: depth + 1,
                        hist: rhist,
                    });
                }
            }
        }
        Tree { nodes }
    }

    /// Sequential best-split scan over all features of a filled flattened
    /// histogram; ties keep the earliest feature, then the earliest bin.
    fn scan_all(
        binner: &Binner,
        hist: &[f64],
        base_off: usize,
        gsum: f64,
        hsum: f64,
        parent_score: f64,
        params: &TreeParams,
    ) -> Option<(f64, usize, u16)> {
        let mut best: Option<(f64, usize, u16)> = None;
        let mut off = base_off;
        for f in 0..binner.n_features() {
            let nb = binner.n_bins(f);
            if nb >= 2 {
                if let Some((gain, bin)) =
                    scan_feature(hist, off, nb, gsum, hsum, parent_score, params)
                {
                    if best.is_none_or(|(bg, _, _)| gain > bg) {
                        best = Some((gain, f, bin));
                    }
                }
            }
            off += nb;
        }
        best
    }

    /// The node arena (flat-kernel construction).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Predicts from raw (unbinned) features.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts from binned codes (training-time fast path).
    pub fn predict_binned(&self, codes: &[u16], row: usize, nf: usize) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    bin,
                    left,
                    right,
                    ..
                } => {
                    i = if codes[row * nf + feature] <= *bin {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Node count (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Features used by splits (for importance accounting).
    pub fn split_features(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                _ => None,
            })
            .collect()
    }
}

impl rtlt_store::Codec for Node {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        match self {
            Node::Leaf { value } => {
                e.u8(0);
                e.f64(*value);
            }
            Node::Split {
                feature,
                threshold,
                bin,
                left,
                right,
            } => {
                e.u8(1);
                e.usize(*feature);
                e.f64(*threshold);
                e.u32(*bin as u32);
                e.usize(*left);
                e.usize(*right);
            }
        }
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(match d.u8()? {
            0 => Node::Leaf { value: d.f64()? },
            1 => Node::Split {
                feature: d.usize()?,
                threshold: d.f64()?,
                bin: d.u32()? as u16,
                left: d.usize()?,
                right: d.usize()?,
            },
            _ => return Err(rtlt_store::CodecError::new("tree Node tag")),
        })
    }
}

impl rtlt_store::Codec for Tree {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        self.nodes.encode(e);
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(Tree {
            nodes: Vec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (FeatureMatrix, Vec<f64>) {
        // y = step function of x0 plus linear x1.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 10.0 { 5.0 } else { -5.0 } + 0.5 * r[1])
            .collect();
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn single_tree_fits_step_function() {
        let (rows, y) = xy();
        let binner = Binner::fit(&rows, 64);
        let codes = binner.codes(&rows);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect(); // residual from 0
        let hess = vec![1.0; rows.n_rows()];
        let idx: Vec<usize> = (0..rows.n_rows()).collect();
        let tree = Tree::fit(&binner, &codes, &grad, &hess, &idx, &TreeParams::default());
        // Predictions should correlate strongly with y.
        let preds: Vec<f64> = rows.rows().map(|r| tree.predict(r)).collect();
        let err: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t).powi(2))
            .sum::<f64>()
            / rows.n_rows() as f64;
        assert!(err < 1.0, "mse {err}");
    }

    #[test]
    fn binned_and_raw_prediction_agree() {
        let (rows, y) = xy();
        let binner = Binner::fit(&rows, 32);
        let codes = binner.codes(&rows);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; rows.n_rows()];
        let idx: Vec<usize> = (0..rows.n_rows()).collect();
        let tree = Tree::fit(&binner, &codes, &grad, &hess, &idx, &TreeParams::default());
        for (i, r) in rows.rows().enumerate() {
            assert_eq!(tree.predict(r), tree.predict_binned(&codes, i, 2));
        }
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let (rows, y) = xy();
        let binner = Binner::fit(&rows, 32);
        let codes = binner.codes(&rows);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; rows.n_rows()];
        let idx: Vec<usize> = (0..rows.n_rows()).collect();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let tree = Tree::fit(&binner, &codes, &grad, &hess, &idx, &params);
        assert!(tree.is_empty());
        // Leaf = mean of y under squared loss (lambda-shrunk).
        let mean_y = y.iter().sum::<f64>() / y.len() as f64;
        let pred = tree.predict(rows.row(0));
        assert!((pred - mean_y).abs() < 0.2, "{pred} vs {mean_y}");
    }

    #[test]
    fn binner_handles_constant_feature() {
        let rows = FeatureMatrix::from_rows(&[vec![3.0], vec![3.0], vec![3.0]]);
        let binner = Binner::fit(&rows, 16);
        assert_eq!(binner.n_bins(0), 1);
        assert_eq!(binner.bin(0, 3.0), 0);
        assert_eq!(binner.bin(0, 100.0), 0);
    }

    /// One tree's structure as a comparable signature.
    fn signature(t: &Tree) -> Vec<(u64, usize)> {
        t.nodes()
            .iter()
            .map(|n| match n {
                Node::Leaf { value } => (value.to_bits(), usize::MAX),
                Node::Split { feature, bin, .. } => (*bin as u64, *feature),
            })
            .collect()
    }

    #[test]
    fn scratch_reuse_matches_fresh_fit() {
        let (rows, y) = xy();
        let binner = Binner::fit(&rows, 32);
        let codes = binner.codes(&rows);
        let hess = vec![1.0; rows.n_rows()];
        let idx: Vec<usize> = (0..rows.n_rows()).collect();
        let mut scratch = TreeScratch::new();
        for round in 0..3 {
            // Different gradients per round, one shared scratch.
            let grad: Vec<f64> = y.iter().map(|v| -v * (round + 1) as f64).collect();
            let fresh = Tree::fit(&binner, &codes, &grad, &hess, &idx, &TreeParams::default());
            let reused = Tree::fit_with(
                &binner,
                &codes,
                &grad,
                &hess,
                &idx,
                &TreeParams::default(),
                &mut scratch,
                1,
            );
            assert_eq!(signature(&fresh), signature(&reused), "round {round}");
        }
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        // Needs >= PAR_SCAN_MIN_ROWS rows so threads=2 takes the par_map
        // fan-out; the reduced split decisions must be bit-identical.
        let n = PAR_SCAN_MIN_ROWS + 512;
        let rows_v: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x = (i % 97) as f64 * 0.37;
                vec![x, (i % 13) as f64, (x * 1.7).sin(), (i / 29) as f64]
            })
            .collect();
        let rows = FeatureMatrix::from_rows(&rows_v);
        let y: Vec<f64> = rows
            .rows()
            .map(|r| if r[0] > 18.0 { 3.0 } else { -1.0 } + r[2] * 0.25 + 0.1 * r[3])
            .collect();
        let binner = Binner::fit(&rows, 64);
        let codes = binner.codes(&rows);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; n];
        let idx: Vec<usize> = (0..n).collect();
        let mut s1 = TreeScratch::new();
        let mut s2 = TreeScratch::new();
        let params = TreeParams::default();
        let seq = Tree::fit_with(&binner, &codes, &grad, &hess, &idx, &params, &mut s1, 1);
        let par = Tree::fit_with(&binner, &codes, &grad, &hess, &idx, &params, &mut s2, 2);
        assert_eq!(signature(&seq), signature(&par));
    }
}
