//! Property tests of the flat SoA inference kernel: [`FlatForest`] must
//! predict bit-identically to the scalar `Node`-walk over adversarial
//! feature values (signed zeros, denormals, infinities, NaNs, and values
//! exactly equal to split thresholds), and a decoded ensemble must
//! rebuild a flat kernel that predicts bit-identically to the fitted one.

use proptest::prelude::*;
use proptest::strategy::Union;
use rtlt_ml::{
    Binner, FeatureMatrix, FlatForest, Gbdt, GbdtParams, SquaredObjective, Tree, TreeParams,
};
use rtlt_store::Codec;

/// Finite training features on a coarse grid plus a continuous band: the
/// grid guarantees repeated values, so bin edges (= split thresholds)
/// coincide with values the prediction rows below will also draw.
fn training_f64() -> Union<f64> {
    prop_oneof![
        (-16i64..16).prop_map(|i| i as f64 * 0.25),
        Just(0.0f64),
        Just(-0.0f64),
        -100.0f64..100.0,
    ]
}

/// Prediction-side features: everything the trained grid can collide with
/// (threshold-equal comparisons) plus the full adversarial zoo — the
/// kernel must route each of these through the same child as the scalar
/// walk, including NaN (`<=` is false, so NaN always falls right).
fn adversarial_f64() -> Union<f64> {
    prop_oneof![
        // Grid values: exactly equal to training values, hence to split
        // thresholds (thresholds are bin upper edges of training data).
        (-16i64..16).prop_map(|i| i as f64 * 0.25),
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        // NaNs with arbitrary payload bits (quiet and signaling patterns).
        (0u64..(1 << 52)).prop_map(|p| f64::from_bits(0x7FF0_0000_0000_0000 | p | 1)),
        (0u64..(1 << 52)).prop_map(|p| f64::from_bits(0xFFF0_0000_0000_0000 | p | 1)),
        // Denormals: exponent 0, nonzero mantissa.
        (1u64..(1 << 52)).prop_map(f64::from_bits),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
        Just(f64::MIN),
        // Fully arbitrary bit patterns.
        (0u64..=u64::MAX).prop_map(f64::from_bits),
        -1e12f64..1e12,
    ]
}

/// Packs a flat value list into an `n_cols`-wide matrix, dropping the
/// ragged tail.
fn matrix_of(vals: &[f64], n_cols: usize) -> FeatureMatrix {
    let mut m = FeatureMatrix::new(n_cols);
    for row in vals.chunks_exact(n_cols) {
        m.push_row(row);
    }
    m
}

/// Grows a small hand-rolled boosted ensemble (squared error, unit
/// hessians) so the raw [`Tree`]s stay accessible for the scalar
/// reference walk.
fn boost(train: &FeatureMatrix, base: f64, lr: f64, rounds: usize) -> Vec<Tree> {
    let binner = Binner::fit(train, 16);
    let codes = binner.codes(train);
    let n = train.n_rows();
    let nf = train.n_cols();
    // Deterministic targets derived from the features themselves.
    let y: Vec<f64> = train.rows().map(|r| r.iter().sum::<f64>()).collect();
    let params = TreeParams {
        max_depth: 4,
        ..TreeParams::default()
    };
    let all: Vec<usize> = (0..n).collect();
    let mut preds = vec![base; n];
    let mut grad = vec![0.0; n];
    let hess = vec![1.0; n];
    let mut trees = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for i in 0..n {
            grad[i] = preds[i] - y[i];
        }
        let tree = Tree::fit(&binner, &codes, &grad, &hess, &all, &params);
        for (i, p) in preds.iter_mut().enumerate() {
            *p += lr * tree.predict_binned(&codes, i, nf);
        }
        trees.push(tree);
    }
    trees
}

/// The scalar `Node`-walk reference: base, then trees in boosting order.
fn scalar_walk(trees: &[Tree], base: f64, lr: f64, row: &[f64]) -> f64 {
    let mut acc = base;
    for t in trees {
        acc += lr * t.predict(row);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `FlatForest::predict_row` and the blocked `predict_all` agree
    /// bit-for-bit with the scalar walk on adversarial inputs, including
    /// rows reused verbatim from training (threshold-equal values) and
    /// batches spanning multiple `ROW_BLOCK` windows.
    #[test]
    fn flat_matches_scalar_walk_bit_exactly(
        train_vals in proptest::collection::vec(training_f64(), 24..160),
        pred_vals in proptest::collection::vec(adversarial_f64(), 0..384),
        n_cols in 1usize..4,
    ) {
        let train = matrix_of(&train_vals, n_cols);
        let (base, lr) = (0.125, 0.3);
        let trees = boost(&train, base, lr, 3);
        let flat = FlatForest::from_trees(&trees, base, lr);
        prop_assert_eq!(flat.n_trees(), trees.len());

        // Adversarial rows plus every training row appended verbatim, so
        // split comparisons hit `value == threshold` exactly.
        let mut pm = matrix_of(&pred_vals, n_cols);
        for r in train.rows() {
            pm.push_row(r);
        }
        for row in pm.rows() {
            let want = scalar_walk(&trees, base, lr, row);
            prop_assert_eq!(flat.predict_row(row).to_bits(), want.to_bits());
        }
        let batch = flat.predict_all(&pm);
        prop_assert_eq!(batch.len(), pm.n_rows());
        for (i, row) in pm.rows().enumerate() {
            let want = scalar_walk(&trees, base, lr, row);
            prop_assert_eq!(batch[i].to_bits(), want.to_bits());
        }
    }

    /// Decode-then-flatten round trip: a `Gbdt` rebuilt from its stored
    /// bytes (which never contain the flat arrays) predicts bit-identically
    /// to the fitted model, per-row and batched.
    #[test]
    fn decoded_model_predicts_bit_exactly(
        train_vals in proptest::collection::vec(training_f64(), 24..120),
        pred_vals in proptest::collection::vec(adversarial_f64(), 0..256),
        n_cols in 1usize..4,
        seed in 0u64..1024,
    ) {
        let train = matrix_of(&train_vals, n_cols);
        let y: Vec<f64> = train.rows().map(|r| r.iter().sum::<f64>()).collect();
        let params = GbdtParams {
            n_trees: 8,
            max_bins: 16,
            seed,
            ..GbdtParams::default()
        };
        let model = Gbdt::fit(&train, &SquaredObjective { targets: y }, &params);
        let back = Gbdt::from_bytes(&model.to_bytes()).expect("decode");

        let mut pm = matrix_of(&pred_vals, n_cols);
        for r in train.rows() {
            pm.push_row(r);
        }
        let want = model.predict_all(&pm);
        let got = back.predict_all(&pm);
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(w.to_bits(), g.to_bits());
        }
        for (i, row) in pm.rows().enumerate() {
            prop_assert_eq!(back.predict(row).to_bits(), want[i].to_bits());
        }
    }
}
