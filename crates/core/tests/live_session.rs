//! End-to-end tests of the live annotation service (`rtlt-annotated`):
//! concurrent sessions over real TCP against one single-threaded event
//! loop, byte-identity of every remote annotation vs. a local
//! [`IncrementalAnnotator`], and the full degrade matrix — killed server
//! mid-session and version-skewed peer (a plain artifact store answering
//! the session opcodes with `Failed`) — falling back to local recompute
//! with the same bytes.

use rtl_timer::live::{LiveAnnotator, LiveService};
use rtl_timer::pipeline::{DesignSet, RtlTimer, TimerConfig};
use rtl_timer::IncrementalAnnotator;
use rtlt_store::Store;
use std::sync::Arc;

fn lane(name: &str, body: &str) -> String {
    format!(
        "module {name}(input clk, input [7:0] x, output [7:0] y);
  reg [7:0] r;
  always @(posedge clk) r <= {body};
  assign y = r;
endmodule"
    )
}

fn design(top: &str, lane_a_body: &str) -> String {
    format!(
        "{}
{}
module {top}(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
  wire [7:0] ya;
  wire [7:0] yb;
  laneA u0 (.clk(clk), .x(a), .y(ya));
  laneB u1 (.clk(clk), .x(b), .y(yb));
  reg [7:0] merge_r;
  always @(posedge clk) merge_r <= ya ^ yb;
  assign q = merge_r;
endmodule",
        lane("laneA", lane_a_body),
        lane("laneB", "x ^ (x >> 1)")
    )
}

struct Fixture {
    model: Arc<RtlTimer>,
    cfg: TimerConfig,
    service_store: Store,
    alpha: (rtl_timer::DesignData, String),
    beta: (rtl_timer::DesignData, String),
}

/// Prepares two editable designs plus a trainer, fits a model, and leaves
/// a warm store for the service side. The editable [`DesignData`] are
/// cloned out so the service can be built from them by reference.
fn fixture() -> Fixture {
    let cfg = TimerConfig {
        threads: 2,
        ..Default::default()
    };
    let alpha_src = design("alpha", "x + 8'd3");
    let beta_src = design("beta", "x + (x >> 2)");
    let store = Store::in_memory();
    let sources = vec![
        ("alpha".to_owned(), alpha_src.clone()),
        ("beta".to_owned(), beta_src.clone()),
        ("trainer".to_owned(), design("trainer", "x - 8'd1")),
    ];
    let set = DesignSet::prepare_named_with(&sources, &cfg, &store).unwrap();
    let (train, test) = set.split(&["alpha", "beta"]);
    let model = Arc::new(RtlTimer::fit(&train, &cfg));
    let mut alpha = None;
    let mut beta = None;
    for d in test {
        match &*d.name {
            "alpha" => alpha = Some(d.clone()),
            "beta" => beta = Some(d.clone()),
            _ => {}
        }
    }
    Fixture {
        model,
        cfg,
        service_store: store,
        alpha: (alpha.unwrap(), alpha_src),
        beta: (beta.unwrap(), beta_src),
    }
}

#[test]
fn two_concurrent_sessions_interleave_byte_identically() {
    let fx = fixture();
    // step_shards = 1 forces maximal interleaving: every pending job
    // advances one shard per tick, so neither session can starve the
    // other no matter how their edits land.
    let svc = LiveService::new(
        Arc::clone(&fx.model),
        fx.service_store,
        &[&fx.alpha.0, &fx.beta.0],
        &fx.cfg,
        1,
    );
    let handle = rtl_timer::live::spawn("127.0.0.1:0", svc).expect("bind");
    let addr = handle.addr.to_string();

    let run_session = |base: &rtl_timer::DesignData, base_src: &str, edits: Vec<String>| {
        let model = Arc::clone(&fx.model);
        let cfg = fx.cfg.clone();
        let addr = addr.clone();
        let base = base.clone();
        let base_src = base_src.to_owned();
        move || {
            let client_store = Store::in_memory();
            let local_store = Store::in_memory();
            let mut live = LiveAnnotator::with_remote(&base, &cfg, &addr);
            let mut local = IncrementalAnnotator::new(&base, &cfg);
            let mut remote_passes = 0u32;
            let _ = base_src;
            for edit in edits {
                let out = live
                    .reannotate(&edit, &model, &client_store)
                    .expect("live pass");
                let twin = local.reannotate(&edit, &model, &local_store).expect("twin");
                assert_eq!(
                    out.annotated, twin.annotated,
                    "remote annotation must be byte-identical to the local loop"
                );
                assert_eq!(out.total_shards, twin.total_shards);
                if out.remote {
                    remote_passes += 1;
                    assert!(
                        out.round_trips >= 1,
                        "an edit costs at least one turnaround"
                    );
                }
            }
            remote_passes
        }
    };

    let alpha_edits = vec![
        fx.alpha.1.replace("x + 8'd3", "x + (x << 1)"),
        fx.alpha.1.replace("x ^ (x >> 1)", "x ^ (x >> 3)"),
        fx.alpha.1.clone(),
    ];
    let beta_edits = vec![
        fx.beta.1.replace("x + (x >> 2)", "x + (x >> 4)"),
        fx.beta.1.replace("x ^ (x >> 1)", "x ^ (x >> 2)"),
        fx.beta.1.replace("x + (x >> 2)", "x | (x << 2)"),
    ];
    let a = run_session(&fx.alpha.0, &fx.alpha.1, alpha_edits);
    let b = run_session(&fx.beta.0, &fx.beta.1, beta_edits);
    let (ra, rb) = std::thread::scope(|s| {
        let ta = s.spawn(a);
        let tb = s.spawn(b);
        (
            ta.join().expect("alpha session"),
            tb.join().expect("beta session"),
        )
    });
    assert_eq!(ra, 3, "every alpha pass served remotely");
    assert_eq!(rb, 3, "every beta pass served remotely");
    handle.stop();
}

#[test]
fn killed_server_mid_session_degrades_to_identical_local_bytes() {
    let fx = fixture();
    let svc = LiveService::new(
        Arc::clone(&fx.model),
        fx.service_store,
        &[&fx.alpha.0],
        &fx.cfg,
        rtl_timer::live::DEFAULT_STEP_SHARDS,
    );
    let handle = rtl_timer::live::spawn("127.0.0.1:0", svc).expect("bind");
    let addr = handle.addr.to_string();

    let client_store = Store::in_memory();
    let mut live = LiveAnnotator::with_remote(&fx.alpha.0, &fx.cfg, &addr);
    let edit1 = fx.alpha.1.replace("x + 8'd3", "x + (x << 1)");
    let out1 = live
        .reannotate(&edit1, &fx.model, &client_store)
        .expect("first pass");
    assert!(out1.remote, "server up: first pass is remote");
    assert_eq!(
        client_store.stats().namespace("session").round_trips,
        out1.round_trips,
        "session turnarounds are charged to the store's session namespace"
    );

    // Kill the server mid-session, then keep editing: the loop degrades
    // to the local annotator with byte-identical output, diffing against
    // the last revision the designer saw (which the server produced).
    handle.stop();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let edit2 = fx.alpha.1.replace("x + 8'd3", "x + (x << 2)");
    let out2 = live
        .reannotate(&edit2, &fx.model, &client_store)
        .expect("degraded pass");
    assert!(!out2.remote, "server dead: pass degrades to local");

    // Twin that saw both revisions locally from the start.
    let twin_store = Store::in_memory();
    let mut twin = IncrementalAnnotator::new(&fx.alpha.0, &fx.cfg);
    let twin1 = twin.reannotate(&edit1, &fx.model, &twin_store).unwrap();
    let twin2 = twin.reannotate(&edit2, &fx.model, &twin_store).unwrap();
    assert_eq!(out1.annotated, twin1.annotated);
    assert_eq!(out2.annotated, twin2.annotated, "degrade is byte-identical");
    // The degraded diff base advanced with the remote passes: only the
    // re-edited module is dirty, not the whole design.
    assert_eq!(out2.dirty_modules, vec!["laneA".to_owned()]);
}

#[test]
fn version_skewed_store_peer_refuses_sessions_and_client_degrades() {
    let fx = fixture();
    // A plain artifact store on the other end: it answers OPEN with
    // `Failed` (unknown verb for its service), which must read as
    // "annotate locally", not as an error.
    let scratch =
        std::env::temp_dir().join(format!("rtlt-live-skew-{}-{}", std::process::id(), line!()));
    let server_addr = rtlt_store::server::spawn(
        "127.0.0.1:0",
        &rtlt_store::server::ServerConfig {
            dir: scratch.clone(),
            mem_budget: 16 << 20,
            lease_timeout: std::time::Duration::from_secs(30),
        },
    )
    .expect("spawn store");

    let client_store = Store::in_memory();
    let mut live = LiveAnnotator::with_remote(&fx.alpha.0, &fx.cfg, &server_addr.to_string());
    let edit = fx.alpha.1.replace("x + 8'd3", "x + (x << 1)");
    let out = live
        .reannotate(&edit, &fx.model, &client_store)
        .expect("degraded pass");
    assert!(!out.remote, "store peer refuses sessions");

    let twin_store = Store::in_memory();
    let mut twin = IncrementalAnnotator::new(&fx.alpha.0, &fx.cfg);
    let twin_out = twin.reannotate(&edit, &fx.model, &twin_store).unwrap();
    assert_eq!(out.annotated, twin_out.annotated);
    let _ = std::fs::remove_dir_all(scratch);
}
