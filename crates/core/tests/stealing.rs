//! Work-stealing fleet preparation end to end, against a real
//! `rtlt-stored` server on an ephemeral port: dynamic leases cover the
//! design list, a worker killed mid-lease has its design stolen by the
//! survivor after the lease deadline, a server lost mid-run degrades to
//! the static path — and in every case the prepared artifacts are
//! **byte-identical** to a cold unsharded prepare (same content digest,
//! zero warm misses), because the planner only decides *who* computes,
//! never *what*.

use rtl_timer::pipeline::{prepare_stolen, steal_plan_epoch, DesignSet, StealConfig, TimerConfig};
use rtlt_store::server::{spawn, ArtifactServer, ServerConfig};
use rtlt_store::wire::{tag_response, untag, Frame, Request, Response};
use rtlt_store::{RemoteTier, Store};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rtlt-steal-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_sources() -> Vec<(String, String)> {
    let mk = |name: &str, w: u32, extra: &str| {
        (
            name.to_owned(),
            format!(
                "module {name}(input clk, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
                   reg [{x}:0] r;
                   reg [{x}:0] s;
                   always @(posedge clk) begin
                     r <= a + b;
                     s <= s ^ (r {extra});
                   end
                   assign q = s;
                 endmodule",
                x = w - 1,
            ),
        )
    };
    vec![
        mk("st0", 8, "+ a"),
        mk("st1", 10, "- b"),
        mk("st2", 12, "& a"),
        mk("st3", 9, "| b"),
    ]
}

fn cfg() -> TimerConfig {
    TimerConfig {
        threads: 2,
        ..Default::default()
    }
}

fn start_server(scratch: &ScratchDir, lease_timeout: Duration) -> String {
    let cfg = ServerConfig {
        dir: scratch.0.clone(),
        mem_budget: 1 << 20,
        lease_timeout,
    };
    spawn("127.0.0.1:0", &cfg).expect("bind").to_string()
}

fn dead_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

/// Steal config with priors that make "st3" the costliest (leased first)
/// and fast polling, suitable for sub-second tests.
fn steal_cfg(worker: &str) -> StealConfig {
    StealConfig {
        poll: Duration::from_millis(20),
        cost_priors: vec![
            ("st3".to_owned(), 9.0),
            ("st2".to_owned(), 3.0),
            ("st1".to_owned(), 2.0),
            ("st0".to_owned(), 1.0),
        ],
        ..StealConfig::new(worker)
    }
}

#[test]
fn killed_worker_mid_lease_design_lands_on_the_survivor_byte_identically() {
    let sources = tiny_sources();
    let cold = DesignSet::prepare_named(&sources, &cfg()).expect("cold reference");

    let server_dir = ScratchDir::new("server");
    // Short lease deadline: the dead worker's design becomes stealable
    // well within the survivor's polling.
    let addr = start_server(&server_dir, Duration::from_millis(200));

    // The doomed worker: plans (with the same content epoch the survivor
    // will derive — both run the same sources and config), leases the
    // costliest design ("st3"), then dies without ever reporting —
    // exactly a worker killed mid-lease.
    let doomed = RemoteTier::new(&addr);
    let plan: Vec<(String, f64)> = steal_cfg("doomed").cost_priors.clone();
    assert!(doomed.plan_remote(steal_plan_epoch(&sources, &cfg()), &plan));
    assert_eq!(
        doomed.lease_remote("doomed"),
        Some(rtlt_store::LeaseGrant::Granted {
            design: "st3".to_owned()
        })
    );
    drop(doomed);

    // The survivor: leases everything else, then polls until the dead
    // lease expires and steals "st3".
    let survivor_dir = ScratchDir::new("survivor");
    let mut store = Store::on_disk(&survivor_dir.0);
    store.push_tier(Arc::new(RemoteTier::new(&addr)));
    let fleet = RemoteTier::new(&addr);
    let out = prepare_stolen(&sources, &cfg(), &store, &fleet, &steal_cfg("survivor"))
        .expect("server reachable");

    assert!(!out.fell_back);
    assert_eq!(out.leases, 4, "survivor leased every design, incl. st3");
    let mut names: Vec<&str> = out.set.designs().iter().map(|d| &*d.name).collect();
    names.sort_unstable();
    assert_eq!(names, ["st0", "st1", "st2", "st3"]);
    assert_eq!(
        out.set.content_digest(),
        cold.content_digest(),
        "stolen preparation is byte-identical to cold"
    );

    let stats = fleet.plan_stats_remote().expect("reachable");
    assert!(stats.requeued >= 1, "st3 was stolen (re-queued)");
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.outstanding(), 0);

    // The survivor's disk tier alone reconstructs the suite warm, still
    // byte-identical (the merged-cache contract of the static shard path,
    // now under dynamic assignment).
    let warm_store = Store::on_disk(&survivor_dir.0);
    let warm = DesignSet::prepare_named_with(&sources, &cfg(), &warm_store).expect("warm");
    assert_eq!(
        warm_store
            .stats()
            .aggregate(rtl_timer::cache::stage::PREPARE)
            .misses,
        0,
        "fully warm from the stolen run's tiers"
    );
    assert_eq!(warm.content_digest(), cold.content_digest());
}

#[test]
fn two_live_workers_partition_the_plan_and_merge_byte_identically() {
    let sources = tiny_sources();
    let cold = DesignSet::prepare_named(&sources, &cfg()).expect("cold reference");

    let server_dir = ScratchDir::new("fleet");
    // Long deadline: no steals, pure dynamic partitioning.
    let addr = start_server(&server_dir, Duration::from_secs(120));

    let dirs = [ScratchDir::new("w1"), ScratchDir::new("w2")];
    let sources_arc = Arc::new(sources.clone());
    let mut handles = Vec::new();
    for (i, dir) in dirs.iter().enumerate() {
        let addr = addr.clone();
        let dir = dir.0.clone();
        let sources = Arc::clone(&sources_arc);
        handles.push(std::thread::spawn(move || {
            let mut store = Store::on_disk(&dir);
            store.push_tier(Arc::new(RemoteTier::new(&addr)));
            let fleet = RemoteTier::new(&addr);
            let out = prepare_stolen(
                &sources,
                &cfg(),
                &store,
                &fleet,
                &steal_cfg(&format!("w{i}")),
            )
            .expect("server reachable");
            (out.leases, out.set.designs().len())
        }));
    }
    let results: Vec<(u64, usize)> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect();
    let total_leases: u64 = results.iter().map(|(l, _)| l).sum();
    assert_eq!(total_leases, 4, "each design leased exactly once");

    // Merge both workers' disk tiers; the assembled cache must answer a
    // full warm preparation byte-identical to cold.
    let merged_dir = ScratchDir::new("merged");
    let merged_store = Store::on_disk(&merged_dir.0);
    for dir in &dirs {
        merged_store.merge_disk_tier(&dir.0);
    }
    let warm = DesignSet::prepare_named_with(&sources, &cfg(), &merged_store).expect("warm");
    assert_eq!(
        merged_store
            .stats()
            .aggregate(rtl_timer::cache::stage::PREPARE)
            .misses,
        0
    );
    assert_eq!(warm.content_digest(), cold.content_digest());
}

#[test]
fn unreachable_server_yields_none_for_the_static_fallback() {
    let sources = tiny_sources();
    let store = Store::in_memory();
    let fleet = RemoteTier::with_timeout(dead_addr(), Duration::from_millis(200));
    assert!(prepare_stolen(&sources, &cfg(), &store, &fleet, &steal_cfg("w")).is_none());
}

#[test]
fn server_lost_mid_run_falls_back_to_the_static_remainder() {
    let sources = tiny_sources();
    let cold = DesignSet::prepare_named(&sources, &cfg()).expect("cold reference");

    // A scripted server: answers exactly two exchanges (the PLAN and the
    // first LEASE) through a real ArtifactServer, then vanishes — stream
    // dropped, listener closed.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let script_dir = ScratchDir::new("script");
    let server_cfg = ServerConfig {
        dir: script_dir.0.clone(),
        mem_budget: 1 << 20,
        lease_timeout: Duration::from_secs(120),
    };
    let handle = std::thread::spawn(move || {
        let server = ArtifactServer::new(&server_cfg);
        let (mut stream, _) = listener.accept().expect("one connection");
        for _ in 0..2 {
            // A current fleet server speaks tagged envelopes, so the script
            // does too: unwrap the envelope, dispatch, tag the answers.
            let frame = Frame::read_from(&mut stream).expect("request frame");
            let (tag, inner) = untag(&frame).expect("gen-3 client speaks tagged");
            let responses = match Request::from_frame(&inner) {
                Ok(Request::GetBatch { items }) => server.handle_batch(&items),
                Ok(req) => vec![server.handle(req)],
                Err(e) => vec![Response::Failed(e.to_string())],
            };
            for r in responses {
                tag_response(tag, &r.to_frame())
                    .write_to(&mut stream)
                    .expect("response");
            }
        }
        // Dropping both the stream and the listener kills the "fleet".
    });

    let worker_dir = ScratchDir::new("fallback");
    let store = Store::on_disk(&worker_dir.0);
    let fleet = RemoteTier::with_timeout(&addr, Duration::from_millis(500));
    let out = prepare_stolen(&sources, &cfg(), &store, &fleet, &steal_cfg("w"))
        .expect("server was reachable at plan time");
    handle.join().expect("script thread");

    assert!(out.fell_back, "server loss degraded to the static path");
    assert_eq!(out.leases, 1, "one granted lease before the loss");
    let mut names: Vec<&str> = out.set.designs().iter().map(|d| &*d.name).collect();
    names.sort_unstable();
    assert_eq!(names, ["st0", "st1", "st2", "st3"], "remainder covered");
    assert_eq!(out.design_seconds.len(), 4);
    assert_eq!(out.set.content_digest(), cold.content_digest());
}
