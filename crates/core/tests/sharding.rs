//! Fleet-sharded preparation end to end: N workers prepare disjoint
//! design subsets into disjoint disk tiers, the tiers are merged, and the
//! merged cache is **byte-identical** to one cold unsharded prepare —
//! file set and file contents, not just equivalent results.

use rtl_timer::pipeline::{shard_of, DesignSet, TimerConfig};
use rtlt_store::Store;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rtlt-shard-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_sources() -> Vec<(String, String)> {
    let mk = |name: &str, w: u32, extra: &str| {
        (
            name.to_owned(),
            format!(
                "module {name}(input clk, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
                   reg [{x}:0] r;
                   reg [{x}:0] s;
                   always @(posedge clk) begin
                     r <= a + b;
                     s <= s ^ (r {extra});
                   end
                   assign q = s;
                 endmodule",
                x = w - 1,
            ),
        )
    };
    vec![
        mk("sh0", 8, "+ a"),
        mk("sh1", 10, "- b"),
        mk("sh2", 12, "& a"),
        mk("sh3", 9, "| b"),
        mk("sh4", 11, "^ a"),
    ]
}

/// Relative path → file bytes of every entry under a cache root.
fn tree_bytes(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(root, &p, out);
            } else if p.is_file() {
                let rel = p
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&p).expect("readable entry"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

#[test]
fn sharded_prepare_and_merge_is_byte_identical_to_cold_prepare() {
    let cfg = TimerConfig {
        threads: 2,
        ..Default::default()
    };
    let sources = tiny_sources();
    const SHARDS: usize = 3;

    // Reference: one cold unsharded prepare.
    let cold_dir = ScratchDir::new("cold");
    let cold_store = Store::on_disk(&cold_dir.0);
    let cold = DesignSet::prepare_named_with(&sources, &cfg, &cold_store).expect("cold prepare");

    // Fleet: three workers, disjoint subsets, disjoint cache dirs.
    let shard_dirs: Vec<ScratchDir> = (0..SHARDS)
        .map(|i| ScratchDir::new(&format!("shard{i}")))
        .collect();
    let mut prepared = 0;
    for (i, dir) in shard_dirs.iter().enumerate() {
        let subset = DesignSet::shard_sources(&sources, i, SHARDS);
        for (name, _) in &subset {
            assert_eq!(shard_of(name, SHARDS), i);
        }
        let store = Store::on_disk(&dir.0);
        let set = DesignSet::prepare_named_with(&subset, &cfg, &store).expect("shard prepare");
        prepared += set.designs().len();
    }
    assert_eq!(prepared, sources.len(), "shards cover every design");

    // Assembly: merge the three disk tiers into one fresh cache.
    let merged_dir = ScratchDir::new("merged");
    let merged_store = Store::on_disk(&merged_dir.0);
    let mut merged_files = 0;
    for dir in &shard_dirs {
        let report = merged_store.merge_disk_tier(&dir.0);
        assert_eq!(report.invalid_entries, 0);
        merged_files += report.merged_files + report.skipped_existing;
    }

    // Byte-identity: same file set, same bytes as the cold cache.
    let cold_tree = tree_bytes(&cold_dir.0);
    let merged_tree = tree_bytes(&merged_dir.0);
    assert_eq!(
        cold_tree.keys().collect::<Vec<_>>(),
        merged_tree.keys().collect::<Vec<_>>(),
        "merged cache holds exactly the cold cache's entries"
    );
    assert_eq!(cold_tree, merged_tree, "entry bytes are identical");
    assert!(merged_files >= cold_tree.len() as u64);

    // And the merged cache *works*: a fresh store over it answers the full
    // preparation without a single prepare-stage miss, producing a set
    // whose content digest matches the cold one.
    let warm_store = Store::on_disk(&merged_dir.0);
    let warm = DesignSet::prepare_named_with(&sources, &cfg, &warm_store).expect("warm prepare");
    let agg = warm_store
        .stats()
        .aggregate(rtl_timer::cache::stage::PREPARE);
    assert_eq!(agg.misses, 0, "fully warm from the merged tiers");
    assert_eq!(warm.content_digest(), cold.content_digest());
}

#[test]
fn merge_skips_invalid_entries_and_existing_keys() {
    let src = ScratchDir::new("merge-src");
    let dst = ScratchDir::new("merge-dst");
    let key = rtlt_store::KeyBuilder::new("merge").u64(1).finish();

    let src_store = Store::on_disk(&src.0);
    src_store.put("ns", key, vec![1u64, 2, 3]);
    // A second, corrupt file in the source must be skipped, not copied.
    let bogus = src.0.join("ns").join(format!("{}.bin", "f".repeat(64)));
    std::fs::write(&bogus, b"not an entry").expect("write bogus");

    let dst_store = Store::on_disk(&dst.0);
    let first = dst_store.merge_disk_tier(&src.0);
    assert_eq!(first.merged_files, 1);
    assert_eq!(first.invalid_entries, 1);
    assert_eq!(first.skipped_existing, 0);

    // Merging again: the key already exists, nothing is rewritten.
    let second = dst_store.merge_disk_tier(&src.0);
    assert_eq!(second.merged_files, 0);
    assert_eq!(second.skipped_existing, 1);

    // The merged entry is servable.
    assert_eq!(
        *dst_store.get::<Vec<u64>>("ns", key).expect("merged entry"),
        vec![1, 2, 3]
    );

    // Merging into a store with no disk tier is a zero no-op.
    assert_eq!(
        Store::in_memory().merge_disk_tier(&src.0),
        rtlt_store::MergeReport::default()
    );
}
