//! Human-readable prediction reports (PrimeTime-style endpoint tables for
//! the *predicted* timing — what an IDE plug-in would surface next to the
//! annotated source).

use crate::metrics::rank_groups;
use crate::pipeline::Prediction;
use std::fmt::Write;

/// One-line summary of a design's predicted timing.
pub fn summary(pred: &Prediction) -> String {
    format!(
        "{}: clock {:.3}ns | predicted WNS {:.3}ns TNS {:.2}ns (direct {:.3}/{:.2}) | {} signals, {} bit endpoints",
        pred.design,
        pred.clock,
        pred.wns_pred,
        pred.tns_pred,
        pred.wns_direct,
        pred.tns_direct,
        pred.signal_pred.len(),
        pred.bit_pred.len(),
    )
}

/// Endpoint table of the `top` most critical signals by predicted slack,
/// with ranking group and (when available) the ground-truth slack.
pub fn endpoint_table(pred: &Prediction, top: usize) -> String {
    let slacks = pred.signal_slack();
    let groups = rank_groups(&pred.signal_rank_score);
    let mut order: Vec<usize> = (0..slacks.len()).collect();
    order.sort_by(|&a, &b| slacks[a].partial_cmp(&slacks[b]).expect("finite"));

    let mut out = String::new();
    writeln!(
        out,
        "{:<28} {:>10} {:>6} {:>12}",
        "signal", "pred slack", "rank", "true slack"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(60)).unwrap();
    for &i in order.iter().take(top) {
        let true_slack = if pred.signal_label[i].is_finite() {
            format!("{:>12.3}", pred.clock - pred.setup - pred.signal_label[i])
        } else {
            format!("{:>12}", "-")
        };
        writeln!(
            out,
            "{:<28} {:>10.3} {:>6} {}",
            pred.signal_names[i],
            slacks[i],
            format!("g{}", groups[i] + 1),
            true_slack
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_prediction() -> Prediction {
        Prediction {
            design: "t".into(),
            bit_pred: vec![0.5, 0.9],
            bit_label: vec![0.55, 0.8].into(),
            variant_bit_preds: vec![vec![0.5, 0.9]; 4],
            signal_pred: vec![0.9, 0.3, 0.6],
            signal_rank_score: vec![2.0, 0.1, 1.0],
            signal_label: vec![0.85, 0.25, f64::NAN],
            signal_names: vec!["slow".to_owned(), "fast".to_owned(), "mid".to_owned()].into(),
            wns_pred: -0.2,
            tns_pred: -0.4,
            wns_direct: -0.15,
            tns_direct: -0.3,
            wns_label: -0.22,
            tns_label: -0.5,
            clock: 0.75,
            setup: 0.035,
        }
    }

    #[test]
    fn summary_mentions_design_and_wns() {
        let s = summary(&fake_prediction());
        assert!(s.contains("t:"));
        assert!(s.contains("-0.200") || s.contains("-0.2"));
    }

    #[test]
    fn table_sorted_by_predicted_slack_and_handles_nan_labels() {
        let t = endpoint_table(&fake_prediction(), 3);
        let lines: Vec<&str> = t.lines().collect();
        // Worst predicted slack first: `slow` (arrival 0.9 → slack ~ -0.185).
        assert!(lines[2].starts_with("slow"), "{t}");
        // NaN label renders as '-'.
        assert!(t.contains(" -"), "{t}");
        // Only `top` rows plus header/divider.
        assert_eq!(lines.len(), 2 + 3);
    }
}
