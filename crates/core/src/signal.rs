//! Signal-wise endpoint modeling (paper §3.4.2): aggregate bit predictions
//! to RTL signals (max over bits), then a tree regressor for the signal max
//! arrival time and a LambdaMART ranker for the criticality ordering.

use rtlt_bog::SignalInfo;
use rtlt_ml::{FeatureMatrix, Gbdt, GbdtParams, LambdaMart, LtrParams, SquaredObjective};

/// Names of the per-signal features.
pub const SIGNAL_FEATURE_NAMES: [&str; 10] = [
    "bit_pred_max",
    "bit_pred_mean",
    "bit_pred_std",
    "bit_sta_max",
    "log_width",
    "rank_pct",
    "log_seq_cells",
    "log_comb_cells",
    "log_total_cells",
    "max_level",
];

/// Builds per-signal feature rows from bit-level predictions.
///
/// `bit_pred`/`bit_sta` are indexed by register-endpoint (bit) index;
/// `signals` define the bit → signal mapping; `design_feats` are appended to
/// every row.
pub fn signal_rows(
    bit_pred: &[f64],
    bit_sta: &[f64],
    signals: &[SignalInfo],
    design_feats: &[f64],
) -> FeatureMatrix {
    let mut out = FeatureMatrix::new(SIGNAL_FEATURE_NAMES.len());
    signal_rows_into(bit_pred, bit_sta, signals, design_feats, &mut out);
    out
}

/// [`signal_rows`] into a caller-owned scratch matrix (cleared first).
pub fn signal_rows_into(
    bit_pred: &[f64],
    bit_sta: &[f64],
    signals: &[SignalInfo],
    design_feats: &[f64],
    out: &mut FeatureMatrix,
) {
    out.reset(SIGNAL_FEATURE_NAMES.len());
    // Signal-level rank percentile by predicted max.
    let maxes: Vec<f64> = signals
        .iter()
        .map(|s| {
            s.regs
                .iter()
                .map(|&b| bit_pred[b as usize])
                .fold(f64::MIN, f64::max)
        })
        .collect();
    let n = maxes.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| maxes[a].partial_cmp(&maxes[b]).expect("finite"));
    let mut rank_pct = vec![0.5; n];
    for (rank, &i) in order.iter().enumerate() {
        if n > 1 {
            rank_pct[i] = rank as f64 / (n - 1) as f64;
        }
    }

    let mut row = Vec::with_capacity(SIGNAL_FEATURE_NAMES.len());
    for (i, s) in signals.iter().enumerate() {
        let preds: Vec<f64> = s.regs.iter().map(|&b| bit_pred[b as usize]).collect();
        let stas: Vec<f64> = s.regs.iter().map(|&b| bit_sta[b as usize]).collect();
        let mean = preds.iter().sum::<f64>() / preds.len().max(1) as f64;
        let std = (preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>()
            / preds.len().max(1) as f64)
            .sqrt();
        row.clear();
        row.extend([
            maxes[i],
            mean,
            std,
            stas.iter().cloned().fold(f64::MIN, f64::max),
            (s.width as f64).ln_1p(),
            rank_pct[i],
        ]);
        row.extend(design_feats.iter().copied());
        out.push_row(&row);
    }
}

/// Signal-level labels: max over the signal's bit labels. Signals whose
/// bits are all unlabeled yield `NaN`.
pub fn signal_labels(bit_labels: &[f64], signals: &[SignalInfo]) -> Vec<f64> {
    signals
        .iter()
        .map(|s| {
            let vals: Vec<f64> = s
                .regs
                .iter()
                .map(|&b| bit_labels[b as usize])
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.into_iter().fold(f64::MIN, f64::max)
            }
        })
        .collect()
}

/// Fitted signal-level models: regression + learning-to-rank.
#[derive(Debug)]
pub struct SignalModels {
    regression: Gbdt,
    ranking: LambdaMart,
}

impl SignalModels {
    /// Fits both models. `per_design` holds `(signal rows, signal labels)`
    /// for each training design; each design is one LTR query. Relevance
    /// uses 8 label-rank octiles (finer than the paper's 4 reporting
    /// groups) so near-boundary pairs still carry ranking gradient.
    pub fn fit(per_design: &[(FeatureMatrix, Vec<f64>)], seed: u64) -> SignalModels {
        let cols = per_design
            .first()
            .map_or(SIGNAL_FEATURE_NAMES.len(), |(m, _)| m.n_cols());
        let mut rows = FeatureMatrix::new(cols);
        let mut targets = Vec::new();
        let mut queries = Vec::new();
        let mut relevance = Vec::new();
        for (drows, dlabels) in per_design {
            // Filter unlabeled signals.
            let valid: Vec<usize> = (0..drows.n_rows())
                .filter(|&i| dlabels[i].is_finite())
                .collect();
            if valid.is_empty() {
                continue;
            }
            let labels: Vec<f64> = valid.iter().map(|&i| dlabels[i]).collect();
            // Octile relevance: most critical octile → 7, least → 0.
            let n = labels.len();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| labels[b].partial_cmp(&labels[a]).expect("finite"));
            let mut octile = vec![0.0f64; n];
            for (rank, &i) in order.iter().enumerate() {
                octile[i] = 7.0 - ((rank * 8) / n.max(1)) as f64;
            }
            let mut q = Vec::with_capacity(valid.len());
            for (k, &i) in valid.iter().enumerate() {
                q.push(rows.n_rows());
                rows.push_row(drows.row(i));
                targets.push(labels[k]);
                relevance.push(octile[k]);
            }
            queries.push(q);
        }
        let mut params = GbdtParams::default();
        params.n_trees = 120;
        params.tree.max_depth = 5;
        params.seed = seed;
        let regression = Gbdt::fit(&rows, &SquaredObjective { targets }, &params);

        let mut ltr = LtrParams::default();
        ltr.gbdt.n_trees = 150;
        ltr.gbdt.learning_rate = 0.06;
        ltr.gbdt.tree.max_depth = 4;
        ltr.gbdt.seed = seed ^ 1;
        let ranking = LambdaMart::fit(&rows, &queries, &relevance, &ltr);
        SignalModels {
            regression,
            ranking,
        }
    }

    /// Predicts `(signal max arrival, ranking score)` per signal row.
    pub fn predict(&self, rows: &FeatureMatrix) -> (Vec<f64>, Vec<f64>) {
        (
            self.regression.predict_all(rows),
            self.ranking.score_all(rows),
        )
    }

    /// Prediction into caller-owned buffers (cleared first).
    pub fn predict_into(&self, rows: &FeatureMatrix, reg: &mut Vec<f64>, rank: &mut Vec<f64>) {
        self.regression.predict_into(rows, reg);
        self.ranking.score_into(rows, rank);
    }
}

impl rtlt_store::Codec for SignalModels {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        self.regression.encode(e);
        self.ranking.encode(e);
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(SignalModels {
            regression: Gbdt::decode(d)?,
            ranking: LambdaMart::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_signals(widths: &[u32]) -> Vec<SignalInfo> {
        let mut signals = Vec::new();
        let mut bit = 0u32;
        for (i, &w) in widths.iter().enumerate() {
            signals.push(SignalInfo {
                name: format!("s{i}"),
                width: w,
                regs: (bit..bit + w).collect(),
                decl_line: i as u32 + 1,
                top_level: true,
            });
            bit += w;
        }
        signals
    }

    #[test]
    fn signal_labels_take_bit_max() {
        let signals = fake_signals(&[2, 3]);
        let bit_labels = [1.0, 5.0, 2.0, 9.0, 3.0];
        let labels = signal_labels(&bit_labels, &signals);
        assert_eq!(labels, vec![5.0, 9.0]);
    }

    #[test]
    fn nan_bits_are_ignored_in_labels() {
        let signals = fake_signals(&[2]);
        let labels = signal_labels(&[f64::NAN, 4.0], &signals);
        assert_eq!(labels, vec![4.0]);
        let all_nan = signal_labels(&[f64::NAN, f64::NAN], &signals);
        assert!(all_nan[0].is_nan());
    }

    #[test]
    fn rows_match_feature_names_and_stats() {
        let signals = fake_signals(&[2, 2]);
        let bit_pred = [1.0, 3.0, 2.0, 2.0];
        let bit_sta = [0.5, 0.6, 0.7, 0.8];
        let rows = signal_rows(&bit_pred, &bit_sta, &signals, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rows.n_rows(), 2);
        assert_eq!(rows.n_cols(), SIGNAL_FEATURE_NAMES.len());
        assert_eq!(rows.row(0)[0], 3.0); // max
        assert_eq!(rows.row(0)[1], 2.0); // mean
        assert_eq!(rows.row(0)[3], 0.6); // sta max
    }

    #[test]
    fn models_learn_simple_mapping() {
        // Signals whose label is exactly bit_pred_max.
        let mut per_design = Vec::new();
        for d in 0..6 {
            let signals = fake_signals(&[2; 20]);
            let bit_pred: Vec<f64> = (0..40).map(|i| ((i * 7 + d * 13) % 23) as f64).collect();
            let bit_sta: Vec<f64> = bit_pred.iter().map(|v| v * 0.5).collect();
            let rows = signal_rows(&bit_pred, &bit_sta, &signals, &[0.0; 4]);
            let labels = signal_labels(&bit_pred, &signals);
            per_design.push((rows, labels));
        }
        let model = SignalModels::fit(&per_design, 5);
        let (reg, rank) = model.predict(&per_design[0].0);
        let labels = &per_design[0].1;
        assert!(crate::metrics::pearson(&reg, labels) > 0.95);
        // Ranking scores should order like labels (positive correlation).
        assert!(crate::metrics::pearson(&rank, labels) > 0.5);
    }
}
