//! `rtlt-annotated` — the live annotation service and its session client.
//!
//! The paper's early-optimization loop, served over the wire: a designer's
//! editor OPENs a design, streams EDITs as line splices, and receives the
//! re-annotated source from ANNOTATE in one round trip. The service is the
//! same single-threaded poll-based event loop as `rtlt-stored`
//! ([`rtlt_store::server`]) — nonblocking accept, [`FrameReassembler`] on
//! the read side, flush-as-writable byte queue with backpressure on the
//! write side — with one addition: **deferred replies**. An ANNOTATE does
//! not compute inline (a cold pass on a large design would starve every
//! other session's tick); it enqueues a resumable
//! [`ReannotateJob`](crate::incremental::ReannotateJob) and the loop
//! advances every pending job by a bounded shard slice per tick,
//! round-robin. Replies queue in request order per connection, so the
//! serial client never sees reordering.
//!
//! Every failure mode degrades exactly like the artifact store: a dead
//! server, a version-skewed peer (which answers `Failed` to the unknown
//! session opcodes), or a refused edit all cause the
//! [`LiveAnnotator`] to fall back to its local
//! [`IncrementalAnnotator`] — and because the service runs the *same*
//! resumable job pipeline over the *same* store keys, the fallback is
//! byte-identical, not merely equivalent.

use crate::incremental::{IncrementalAnnotator, ReannotateJob, ReannotateOutcome};
use crate::pipeline::{DesignData, RtlTimer, TimerConfig};
use rtlt_store::entry::fnv1a;
use rtlt_store::wire::{
    op, tag_response, untag, AnnotationReply, EditSplice, Frame, FrameReassembler, Request,
    Response, WireError, MAX_CONN_INFLIGHT,
};
use rtlt_store::Store;
use rtlt_verilog::VerilogError;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Store-stats namespace the session client charges its wire round trips
/// to — `print_store_stats`-style tables then show EDIT→ANNOTATE
/// turnarounds alongside the artifact namespaces' traffic.
pub const SESSION_NS: &str = "session";

/// Default shard slice one pending re-annotation advances per event-loop
/// tick. Small enough that a cold 600-shard session cannot freeze a warm
/// 4-shard one behind it; large enough that slicing overhead (a map walk
/// per tick) stays invisible.
pub const DEFAULT_STEP_SHARDS: usize = 64;

/// Per-connection idle timeout, matching the artifact store's loop.
const IDLE_TIMEOUT: Duration = Duration::from_secs(300);
/// Sleep when a full tick made no progress anywhere.
const POLL_INTERVAL: Duration = Duration::from_micros(200);
/// Read scratch size per tick.
const READ_CHUNK: usize = 64 << 10;
/// Client-side connect timeout.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Client-side read timeout — generous: a cold first ANNOTATE legitimately
/// computes for a while before its deferred reply flushes.
const READ_TIMEOUT: Duration = Duration::from_secs(120);
/// Client-side write timeout.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// Consecutive client failures before the session breaker trips open for
/// the process lifetime, matching [`rtlt_store::RemoteTier`].
const MAX_CONSECUTIVE_FAILURES: u32 = 3;

/// FNV-1a over the full source text — the cheap end-to-end check both
/// sides of an EDIT exchange use to prove their mirrors agree.
pub fn source_check(source: &str) -> u64 {
    fnv1a(source.as_bytes())
}

/// Splits `source` into lines *including* their terminators, so a splice
/// concatenation reproduces the original byte-for-byte (CRLF, missing
/// trailing newline and all).
fn split_lines(source: &str) -> Vec<&str> {
    source.split_inclusive('\n').collect()
}

/// Applies ordered, non-overlapping line splices to `source`. Returns
/// `None` when a splice is out of bounds, overlapping, or out of order —
/// the server refuses such an edit and keeps its mirror untouched.
pub fn apply_splices(source: &str, splices: &[EditSplice]) -> Option<String> {
    let lines = split_lines(source);
    let mut out = String::with_capacity(source.len());
    let mut cursor = 0usize;
    for s in splices {
        let at = usize::try_from(s.at).ok()?;
        let delete = usize::try_from(s.delete).ok()?;
        if at < cursor || at.checked_add(delete)? > lines.len() {
            return None;
        }
        for line in &lines[cursor..at] {
            out.push_str(line);
        }
        out.push_str(&s.insert);
        cursor = at + delete;
    }
    for line in &lines[cursor..] {
        out.push_str(line);
    }
    Some(out)
}

/// Computes the minimal single-hunk line diff from `old` to `new`: the
/// common prefix and suffix are kept, everything between travels as one
/// splice. Returns an empty vec when the texts are identical.
pub fn diff_splices(old: &str, new: &str) -> Vec<EditSplice> {
    if old == new {
        return Vec::new();
    }
    let a = split_lines(old);
    let b = split_lines(new);
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < a.len() - prefix
        && suffix < b.len() - prefix
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    vec![EditSplice {
        at: prefix as u64,
        delete: (a.len() - prefix - suffix) as u64,
        insert: b[prefix..b.len() - suffix].concat(),
    }]
}

/// The live annotation service's shared state: the trained model, the
/// artifact store every session's shard lookups run through, and a
/// prototype annotator per prepared design (OPEN clones it, so sessions
/// start from the same pinned clock and diff base as a local loop would).
pub struct LiveService {
    model: Arc<RtlTimer>,
    store: Store,
    bases: HashMap<String, (IncrementalAnnotator, String)>,
    step_shards: usize,
    next_session: u64,
}

impl LiveService {
    /// Builds the service over prepared designs. `step_shards` bounds the
    /// per-tick slice of each pending re-annotation
    /// ([`DEFAULT_STEP_SHARDS`] is the production value).
    pub fn new(
        model: Arc<RtlTimer>,
        store: Store,
        bases: &[&DesignData],
        cfg: &TimerConfig,
        step_shards: usize,
    ) -> LiveService {
        let bases = bases
            .iter()
            .map(|d| {
                (
                    d.name.to_string(),
                    (IncrementalAnnotator::new(d, cfg), d.source.clone()),
                )
            })
            .collect();
        LiveService {
            model,
            store,
            bases,
            step_shards: step_shards.max(1),
            next_session: 1,
        }
    }

    /// Designs this service can OPEN.
    pub fn designs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.bases.keys().cloned().collect();
        names.sort();
        names
    }
}

/// One server-side session: the per-design incremental annotator plus the
/// source mirror EDITs splice into.
struct LiveSession {
    annotator: IncrementalAnnotator,
    source: String,
    revision: u64,
}

/// One queued reply slot. Replies leave in request order; only the
/// contiguous `Ready` prefix is ever promoted to the socket, so a deferred
/// ANNOTATE holds back everything queued behind it (the serial client
/// depends on ordering) without blocking other connections.
enum ReplySlot {
    Ready(Vec<u8>),
    Waiting { job: u64 },
}

struct PendingReply {
    tag: Option<u64>,
    slot: ReplySlot,
}

/// One nonblocking connection on the live event loop. Sessions and their
/// pending jobs are connection-scoped: a dropped editor drops its
/// server-side state with it.
struct LiveConn {
    stream: TcpStream,
    peer: SocketAddr,
    rx: FrameReassembler,
    wbuf: Vec<u8>,
    wpos: usize,
    out: VecDeque<PendingReply>,
    sessions: HashMap<u64, LiveSession>,
    jobs: BTreeMap<u64, ReannotateJob>,
    next_job: u64,
    last_activity: Instant,
    read_closed: bool,
}

impl LiveConn {
    fn new(stream: TcpStream, peer: SocketAddr) -> LiveConn {
        LiveConn {
            stream,
            peer,
            rx: FrameReassembler::new(),
            wbuf: Vec::new(),
            wpos: 0,
            out: VecDeque::new(),
            sessions: HashMap::new(),
            jobs: BTreeMap::new(),
            next_job: 1,
            last_activity: Instant::now(),
            read_closed: false,
        }
    }

    /// Response bytes queued on the socket side but not yet flushed.
    fn backlog(&self) -> u64 {
        (self.wbuf.len() - self.wpos) as u64
    }

    fn push_ready(&mut self, tag: Option<u64>, frame: &Frame) {
        self.out.push_back(PendingReply {
            tag,
            slot: ReplySlot::Ready(frame.to_bytes()),
        });
    }

    fn push_failed(&mut self, tag: Option<u64>, msg: String) {
        self.push_ready(tag, &Response::Failed(msg).to_frame());
    }

    /// Moves the contiguous ready prefix of the reply queue into the
    /// write buffer, wrapping tagged replies in their envelopes.
    fn promote(&mut self) {
        while let Some(front) = self.out.front() {
            let ReplySlot::Ready(_) = front.slot else {
                break;
            };
            let reply = self.out.pop_front().expect("checked front");
            let ReplySlot::Ready(bytes) = reply.slot else {
                unreachable!()
            };
            match reply.tag {
                Some(t) => {
                    let inner = Frame::read_from(&mut bytes.as_slice()).expect("own frame");
                    self.wbuf
                        .extend_from_slice(&tag_response(t, &inner).to_bytes());
                }
                None => self.wbuf.extend_from_slice(&bytes),
            }
        }
    }

    /// Parses and answers one request frame. Never kills the connection:
    /// malformed-but-framed requests, unknown designs, stale sessions and
    /// broken edits all answer `Failed` — the client's cue to degrade to
    /// its local annotator.
    fn respond(&mut self, svc: &mut LiveService, frame: Frame) {
        let (tag, inner) = if frame.op == op::TAGGED {
            match untag(&frame) {
                Ok((t, f)) => (Some(t), f),
                Err(e) => {
                    self.push_failed(None, e.to_string());
                    return;
                }
            }
        } else {
            (None, frame)
        };
        match Request::from_frame(&inner) {
            Ok(Request::Open { design, source }) => match svc.bases.get(&design) {
                Some((proto, base_source)) => {
                    let id = svc.next_session;
                    svc.next_session += 1;
                    let source = if source.is_empty() {
                        base_source.clone()
                    } else {
                        source
                    };
                    let check = source_check(&source);
                    self.sessions.insert(
                        id,
                        LiveSession {
                            annotator: proto.clone(),
                            source,
                            revision: 0,
                        },
                    );
                    self.push_ready(
                        tag,
                        &Response::Session {
                            session: id,
                            revision: 0,
                            check,
                        }
                        .to_frame(),
                    );
                }
                None => self.push_failed(tag, format!("unknown design {design}")),
            },
            Ok(Request::Edit {
                session,
                splices,
                check,
            }) => {
                let applied = match self.sessions.get_mut(&session) {
                    Some(s) => match apply_splices(&s.source, &splices) {
                        Some(next) if source_check(&next) == check => {
                            s.source = next;
                            s.revision += 1;
                            Ok(s.revision)
                        }
                        Some(_) => Err("edit check mismatch".to_owned()),
                        None => Err("edit splices out of bounds".to_owned()),
                    },
                    None => Err(format!("no session {session}")),
                };
                match applied {
                    Ok(revision) => self.push_ready(
                        tag,
                        &Response::Session {
                            session,
                            revision,
                            check,
                        }
                        .to_frame(),
                    ),
                    Err(msg) => self.push_failed(tag, msg),
                }
            }
            Ok(Request::Annotate { session }) => {
                let begun = match self.sessions.get_mut(&session) {
                    Some(s) => s
                        .annotator
                        .begin(&s.source, &svc.store)
                        .map_err(|e| format!("edit error: {}", e.message)),
                    None => Err(format!("no session {session}")),
                };
                match begun {
                    Ok(job) => {
                        let id = self.next_job;
                        self.next_job += 1;
                        self.jobs.insert(id, job);
                        self.out.push_back(PendingReply {
                            tag,
                            slot: ReplySlot::Waiting { job: id },
                        });
                    }
                    Err(msg) => self.push_failed(tag, msg),
                }
            }
            Ok(Request::Close { session }) => match self.sessions.remove(&session) {
                Some(s) => self.push_ready(
                    tag,
                    &Response::Session {
                        session,
                        revision: s.revision,
                        check: source_check(&s.source),
                    }
                    .to_frame(),
                ),
                None => self.push_failed(tag, format!("no session {session}")),
            },
            // A store request reaching the annotation service: refuse it
            // the way a store refuses session verbs — the remote tier
            // treats `Failed` as a miss and recomputes.
            Ok(_) => self.push_failed(tag, "rtlt-annotated serves sessions, not artifacts".into()),
            Err(e) => self.push_failed(tag, e.to_string()),
        }
    }

    /// Advances every pending job by one bounded slice, finishing (and
    /// readying the reply of) each job that completes. Returns whether
    /// any job made progress.
    fn advance_jobs(&mut self, svc: &LiveService) -> bool {
        if self.jobs.is_empty() {
            return false;
        }
        let mut finished = Vec::new();
        for (&id, job) in self.jobs.iter_mut() {
            if job.step(&svc.store, svc.step_shards) {
                finished.push(id);
            }
        }
        for id in finished {
            let job = self.jobs.remove(&id).expect("finished job");
            let out = job.finish(&svc.model, &svc.store);
            let reply = Response::Annotation(AnnotationReply {
                annotated: out.annotated,
                dirty_modules: out.dirty_modules,
                dirty_cone_bound: out.dirty_cone_bound.len() as u64,
                dirty_shards: out.dirty_shards,
                reused_shards: out.reused_shards,
                total_shards: out.total_shards,
            })
            .to_frame();
            for slot in self.out.iter_mut() {
                if matches!(slot.slot, ReplySlot::Waiting { job } if job == id) {
                    slot.slot = ReplySlot::Ready(reply.to_bytes());
                    break;
                }
            }
        }
        true
    }

    /// Flushes queued bytes until the socket would block. Returns
    /// `(alive, progressed)`.
    fn flush(&mut self) -> (bool, bool) {
        let mut progressed = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return (false, progressed),
                Ok(n) => {
                    self.wpos += n;
                    progressed = true;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return (false, progressed),
            }
        }
        if self.wpos == self.wbuf.len() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }
        (true, progressed)
    }

    /// One scheduler tick: flush, read, parse/dispatch, advance jobs,
    /// promote ready replies. Returns `(alive, progressed)`.
    fn tick(&mut self, svc: &mut LiveService, scratch: &mut [u8]) -> (bool, bool) {
        let (alive, mut progressed) = self.flush();
        if !alive {
            return (false, progressed);
        }
        if !self.read_closed && self.backlog() <= MAX_CONN_INFLIGHT {
            loop {
                match self.stream.read(scratch) {
                    Ok(0) => {
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        self.rx.ingest(&scratch[..n]);
                        self.last_activity = Instant::now();
                        progressed = true;
                        if self.backlog() + self.rx.buffered() as u64 > MAX_CONN_INFLIGHT {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return (false, progressed),
                }
            }
        }
        loop {
            match self.rx.next_frame() {
                Ok(Some(frame)) => {
                    progressed = true;
                    self.respond(svc, frame);
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("[rtlt-annotated] connection {}: {e}", self.peer);
                    return (false, progressed);
                }
            }
        }
        progressed |= self.advance_jobs(svc);
        self.promote();
        if self.read_closed && self.backlog() == 0 && self.out.is_empty() && self.jobs.is_empty() {
            return (false, progressed);
        }
        if self.last_activity.elapsed() > IDLE_TIMEOUT {
            return (false, progressed);
        }
        (true, progressed)
    }
}

/// Runs the live annotation event loop on the calling thread until `stop`
/// is set (checked once per tick). Mirrors the artifact store's loop; the
/// one addition is the per-tick round-robin advance of pending
/// re-annotation jobs, which is what lets many concurrent sessions share
/// the single thread fairly.
///
/// # Panics
///
/// If the listener cannot be switched to nonblocking mode.
pub fn serve_until(listener: TcpListener, mut svc: LiveService, stop: &AtomicBool) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let mut conns: Vec<LiveConn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    while !stop.load(Ordering::Relaxed) {
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    conns.push(LiveConn::new(stream, peer));
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    eprintln!("[rtlt-annotated] accept failed: {e}");
                    break;
                }
            }
        }
        conns.retain_mut(|conn| {
            let (alive, p) = conn.tick(&mut svc, &mut scratch);
            progressed |= p;
            alive
        });
        if !progressed {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// Handle to a [`spawn`]ed live service: the bound address plus a stop
/// flag that shuts the loop down within a tick (tests use this to
/// simulate a killed server).
pub struct LiveHandle {
    /// The bound listen address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl LiveHandle {
    /// Stops the event loop; open connections drop, clients degrade to
    /// local annotation.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Binds `addr` and serves the live annotation service on a background
/// thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, svc: LiveService) -> std::io::Result<LiveHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || serve_until(listener, svc, &flag));
    Ok(LiveHandle { addr: bound, stop })
}

/// Reconnecting session client, [`rtlt_store::RemoteTier`]-style: serial
/// framing, a consecutive-failure breaker that trips open for the process
/// lifetime, and a source mirror kept in lockstep with the server through
/// per-edit FNV checks. An EDIT and its ANNOTATE are written back to back
/// and both replies read afterwards — one wire turnaround per edit.
pub struct SessionClient {
    addr: String,
    design: String,
    conn: Option<TcpStream>,
    session: Option<u64>,
    mirror: Option<String>,
    failures: u32,
    turns: u64,
}

impl SessionClient {
    /// A client for `design` on the service at `addr` (`host:port`). No
    /// connection is attempted until the first [`SessionClient::annotate`].
    pub fn new(addr: &str, design: &str) -> SessionClient {
        SessionClient {
            addr: addr.to_owned(),
            design: design.to_owned(),
            conn: None,
            session: None,
            mirror: None,
            failures: 0,
            turns: 0,
        }
    }

    /// Whether the breaker has tripped: [`MAX_CONSECUTIVE_FAILURES`]
    /// consecutive failed exchanges, after which every call returns
    /// `None` without touching the network.
    pub fn is_down(&self) -> bool {
        self.failures >= MAX_CONSECUTIVE_FAILURES
    }

    /// Wire turnarounds paid so far (write→read transitions).
    pub fn round_trips(&self) -> u64 {
        self.turns
    }

    /// Annotates `source` remotely: reconnect + OPEN if needed, then a
    /// pipelined EDIT + ANNOTATE. `None` on any failure (dead server,
    /// version-skewed peer answering `Failed`, mirror divergence) — the
    /// caller falls back to its local annotator.
    pub fn annotate(&mut self, source: &str) -> Option<AnnotationReply> {
        if self.is_down() {
            return None;
        }
        match self.try_annotate(source) {
            Ok(reply) => {
                self.failures = 0;
                self.mirror = Some(source.to_owned());
                Some(reply)
            }
            Err(_) => {
                self.failures += 1;
                self.conn = None;
                self.session = None;
                self.mirror = None;
                None
            }
        }
    }

    /// Best-effort CLOSE of the current session (ignores failures — the
    /// server reaps dropped connections anyway).
    pub fn close(&mut self) {
        if let (Some(mut conn), Some(session)) = (self.conn.take(), self.session.take()) {
            let _ = conn.write_all(&Request::Close { session }.to_frame().to_bytes());
            let _ = Frame::read_from(&mut conn);
        }
        self.mirror = None;
    }

    fn try_annotate(&mut self, source: &str) -> Result<AnnotationReply, WireError> {
        self.ensure_session(source)?;
        let session = self.session.expect("session ensured");
        let splices = diff_splices(self.mirror.as_deref().unwrap_or(""), source);
        let check = source_check(source);
        let conn = self.conn.as_mut().expect("connection ensured");
        let mut buf = Request::Edit {
            session,
            splices,
            check,
        }
        .to_frame()
        .to_bytes();
        buf.extend_from_slice(&Request::Annotate { session }.to_frame().to_bytes());
        conn.write_all(&buf).map_err(|e| WireError::Io(e.kind()))?;
        self.turns += 1;
        match Response::from_frame(&Frame::read_from(conn)?)? {
            Response::Session {
                check: echoed_check,
                ..
            } if echoed_check == check => {}
            _ => return Err(WireError::Malformed("edit refused")),
        }
        match Response::from_frame(&Frame::read_from(conn)?)? {
            Response::Annotation(reply) => Ok(reply),
            _ => Err(WireError::Malformed("annotate refused")),
        }
    }

    /// Connects and OPENs a session seeded with the full current source
    /// (so both mirrors provably agree), if none is live.
    fn ensure_session(&mut self, source: &str) -> Result<(), WireError> {
        if self.conn.is_some() && self.session.is_some() {
            return Ok(());
        }
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| WireError::Io(e.kind()))?
            .next()
            .ok_or(WireError::Io(std::io::ErrorKind::AddrNotAvailable))?;
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)
            .map_err(|e| WireError::Io(e.kind()))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        let mut stream = stream;
        stream
            .write_all(
                &Request::Open {
                    design: self.design.clone(),
                    source: source.to_owned(),
                }
                .to_frame()
                .to_bytes(),
            )
            .map_err(|e| WireError::Io(e.kind()))?;
        self.turns += 1;
        match Response::from_frame(&Frame::read_from(&mut stream)?)? {
            Response::Session { session, check, .. } if check == source_check(source) => {
                self.conn = Some(stream);
                self.session = Some(session);
                self.mirror = Some(source.to_owned());
                Ok(())
            }
            // `Failed` here is the capability refusal of a version-skewed
            // or plain-store peer — same degrade as a dead server.
            _ => Err(WireError::Malformed("open refused")),
        }
    }
}

/// Result of one [`LiveAnnotator::reannotate`] pass, remote or degraded.
#[derive(Debug)]
pub struct LiveOutcome {
    /// The annotated source (byte-identical remote vs local).
    pub annotated: String,
    /// Modules whose text changed since the previous pass.
    pub dirty_modules: Vec<String>,
    /// Signals whose cone provenance may overlap the dirty modules.
    pub dirty_cone_bound: u64,
    /// Shards recomputed for this pass.
    pub dirty_shards: u64,
    /// Shards served from cache.
    pub reused_shards: u64,
    /// Total shard lookups (signals × variants).
    pub total_shards: u64,
    /// Whether the remote service produced this pass.
    pub remote: bool,
    /// Wire turnarounds paid for this pass (0 when local).
    pub round_trips: u64,
}

impl LiveOutcome {
    fn from_local(out: ReannotateOutcome) -> LiveOutcome {
        LiveOutcome {
            annotated: out.annotated,
            dirty_modules: out.dirty_modules,
            dirty_cone_bound: out.dirty_cone_bound.len() as u64,
            dirty_shards: out.dirty_shards,
            reused_shards: out.reused_shards,
            total_shards: out.total_shards,
            remote: false,
            round_trips: 0,
        }
    }
}

/// The designer-facing edit loop: a remote session when one is reachable,
/// the local [`IncrementalAnnotator`] otherwise — with the degrade being
/// byte-identical because both run the same resumable job pipeline. On a
/// remote success the local diff base is advanced
/// ([`IncrementalAnnotator::note_revision`]) so a later fallback diffs
/// against the revision the designer actually sees, and the turnarounds
/// paid are charged to the store's `session` namespace
/// ([`Store::charge_round_trips`]).
pub struct LiveAnnotator {
    local: IncrementalAnnotator,
    client: Option<SessionClient>,
}

impl LiveAnnotator {
    /// Local-only loop (no service configured).
    pub fn new(base: &DesignData, cfg: &TimerConfig) -> LiveAnnotator {
        LiveAnnotator {
            local: IncrementalAnnotator::new(base, cfg),
            client: None,
        }
    }

    /// Loop with a remote session against the service at `addr`.
    pub fn with_remote(base: &DesignData, cfg: &TimerConfig, addr: &str) -> LiveAnnotator {
        LiveAnnotator {
            local: IncrementalAnnotator::new(base, cfg),
            client: Some(SessionClient::new(addr, &base.name)),
        }
    }

    /// Whether the remote session is still usable (configured and the
    /// breaker has not tripped).
    pub fn remote_active(&self) -> bool {
        self.client.as_ref().is_some_and(|c| !c.is_down())
    }

    /// Re-annotates `source` — remotely in one EDIT→ANNOTATE round trip
    /// when the session is up, locally otherwise.
    ///
    /// # Errors
    ///
    /// Frontend errors from the local fallback (a broken edit the server
    /// refused fails locally with the real parse error).
    pub fn reannotate(
        &mut self,
        source: &str,
        model: &RtlTimer,
        store: &Store,
    ) -> Result<LiveOutcome, VerilogError> {
        if let Some(client) = self.client.as_mut() {
            let before = client.round_trips();
            if let Some(reply) = client.annotate(source) {
                let turns = client.round_trips() - before;
                store.charge_round_trips(SESSION_NS, turns);
                self.local.note_revision(source);
                return Ok(LiveOutcome {
                    annotated: reply.annotated,
                    dirty_modules: reply.dirty_modules,
                    dirty_cone_bound: reply.dirty_cone_bound,
                    dirty_shards: reply.dirty_shards,
                    reused_shards: reply.reused_shards,
                    total_shards: reply.total_shards,
                    remote: true,
                    round_trips: turns,
                });
            }
            store.charge_round_trips(SESSION_NS, client.round_trips() - before);
        }
        Ok(LiveOutcome::from_local(
            self.local.reannotate(source, model, store)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_then_apply_reproduces_the_edit() {
        let cases = [
            ("a\nb\nc\n", "a\nB\nc\n"),
            ("a\nb\nc\n", "a\nb\nc\nd\n"),
            ("a\nb\nc\n", "b\nc\n"),
            ("a\nb\nc\n", ""),
            ("", "x\ny\n"),
            ("one\r\ntwo\r\n", "one\r\nTWO\r\n"),
            ("no trailing newline", "still no trailing newline"),
            ("a\nb", "a\nb\nc"),
            ("same\n", "same\n"),
            (
                "module m;\n  wire a;\n  wire b;\nendmodule\n",
                "module m;\n  wire a;\n  wire b2;\n  wire c;\nendmodule\n",
            ),
        ];
        for (old, new) in cases {
            let splices = diff_splices(old, new);
            if old == new {
                assert!(splices.is_empty(), "identical texts need no splice");
            }
            let applied = apply_splices(old, &splices).expect("apply");
            assert_eq!(applied, new, "diff({old:?} -> {new:?})");
            assert_eq!(source_check(&applied), source_check(new));
        }
    }

    #[test]
    fn bad_splices_are_refused_not_misapplied() {
        let src = "a\nb\nc\n";
        // Out of bounds.
        assert_eq!(
            apply_splices(
                src,
                &[EditSplice {
                    at: 2,
                    delete: 5,
                    insert: String::new(),
                }]
            ),
            None
        );
        // Out of order / overlapping.
        assert_eq!(
            apply_splices(
                src,
                &[
                    EditSplice {
                        at: 2,
                        delete: 1,
                        insert: String::new(),
                    },
                    EditSplice {
                        at: 0,
                        delete: 1,
                        insert: String::new(),
                    },
                ]
            ),
            None
        );
    }

    #[test]
    fn multi_splice_sequences_apply_in_order() {
        let src = "l0\nl1\nl2\nl3\nl4\n";
        let out = apply_splices(
            src,
            &[
                EditSplice {
                    at: 1,
                    delete: 1,
                    insert: "L1\n".into(),
                },
                EditSplice {
                    at: 3,
                    delete: 0,
                    insert: "inserted\n".into(),
                },
                EditSplice {
                    at: 4,
                    delete: 1,
                    insert: String::new(),
                },
            ],
        )
        .expect("apply");
        assert_eq!(out, "l0\nL1\nl2\ninserted\nl3\n");
    }
}
