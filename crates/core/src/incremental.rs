//! Incremental re-annotation of edited designs (paper §3.5.1, Fig. 3).
//!
//! The early-optimization loop the paper targets: the designer edits
//! Verilog, slack annotations refresh fast enough to steer the next edit.
//! [`IncrementalAnnotator`] holds the loop's fixed context — the design
//! name, the **pinned clock** from the baseline label flow (slack is always
//! evaluated against a target clock; deriving a new one per keystroke would
//! make slacks incomparable across edits) — and drives each edit through
//! the module-granular pipeline:
//!
//! 1. recompile through the store — unchanged modules reuse their cached
//!    per-module parses; the dirty-module set is the key diff against the
//!    previous pass,
//! 2. re-blast (cheap, linear),
//! 3. refeaturize through the `shard` namespace — only cones fed by an
//!    edited module miss ([`crate::cache::shard_key`]); everything else is
//!    served from the store,
//! 4. predict with the caller's (typically memoized, see
//!    [`RtlTimer::fit_with`]) model and re-emit the annotated source.
//!
//! The ground-truth label flow is deliberately **not** on this path: labels
//! exist to train models, and an edited design has no ground truth until it
//! is synthesized again. The per-endpoint pseudo-STA arrivals stand in as
//! placeholder labels (they only feed endpoint counting in the WNS/TNS
//! head, never the annotations themselves). A cold store produces the
//! byte-identical annotation — incrementality changes what is *reused*,
//! never what is computed.

use crate::annotate::annotate_source;
use crate::cache::{stage, PrepareKeys};
use crate::dataset::FeaturizeJob;
use crate::pipeline::{design_seed, DesignData, Prediction, PrepareStages, RtlTimer, TimerConfig};
use rtlt_bog::Bog;
use rtlt_liberty::Library;
use rtlt_store::{ContentHash, Store};
use rtlt_verilog::VerilogError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Result of one [`IncrementalAnnotator::reannotate`] pass.
#[derive(Debug)]
pub struct ReannotateOutcome {
    /// The freshly annotated source.
    pub annotated: String,
    /// Modules whose text key changed since the previous pass (added
    /// modules included, removed ones listed too).
    pub dirty_modules: Vec<String>,
    /// Signals whose cone provenance contains a dirty module — the
    /// invalidation *upper bound* the module-granular architecture
    /// guarantees. The shards actually recomputed are a subset (content
    /// keys skip cones whose logic an edit did not reach).
    pub dirty_cone_bound: Vec<String>,
    /// Featurize shards recomputed in this pass (`shard`-namespace misses).
    pub dirty_shards: u64,
    /// Featurize shards served from the store.
    pub reused_shards: u64,
    /// Total shard lookups (signals × 4 representations).
    pub total_shards: u64,
    /// The prediction behind the annotation (for reporting).
    pub prediction: Prediction,
}

/// Per-module *text* hashes of a source (`H(name, text)`, not
/// dependency-closed — the diff should name the module the designer
/// actually touched, not everything above it). Empty when the source
/// cannot be split (flat fallback — every edit then dirties everything).
pub fn module_key_map(source: &str) -> BTreeMap<String, ContentHash> {
    let Ok(sources) = rtlt_verilog::modsrc::split_modules(source) else {
        return BTreeMap::new();
    };
    sources
        .modules
        .iter()
        .map(|m| {
            (
                m.name.clone(),
                rtlt_verilog::modsrc::text_key(&m.name, &m.text),
            )
        })
        .collect()
}

/// Driver of the edit → re-annotate loop for one design. `Clone` exists
/// for the live service: it keeps one prototype per prepared design and
/// clones it per OPEN, so every session starts from the same pinned clock
/// and diff base a local loop would.
#[derive(Debug, Clone)]
pub struct IncrementalAnnotator {
    name: String,
    cfg: TimerConfig,
    clock: f64,
    setup: f64,
    module_keys: BTreeMap<String, ContentHash>,
}

impl IncrementalAnnotator {
    /// Opens a session against a fully prepared baseline: the label flow's
    /// clock and setup are pinned for every subsequent pass.
    pub fn new(base: &DesignData, cfg: &TimerConfig) -> IncrementalAnnotator {
        IncrementalAnnotator {
            name: base.name.to_string(),
            cfg: cfg.clone(),
            clock: base.clock,
            setup: base.setup,
            module_keys: module_key_map(&base.source),
        }
    }

    /// The pinned evaluation clock (ns).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Re-annotates an edited revision of the session's design, running
    /// the resumable pipeline to completion in one call.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors — a syntactically broken edit reports its
    /// parse/elaboration error and leaves the session state unchanged, so
    /// the next (fixed) revision diffs against the last good one.
    pub fn reannotate(
        &mut self,
        source: &str,
        model: &RtlTimer,
        store: &Store,
    ) -> Result<ReannotateOutcome, VerilogError> {
        let mut job = self.begin(source, store)?;
        while !job.step(store, usize::MAX) {}
        Ok(job.finish(model, store))
    }

    /// Starts a resumable re-annotation pass: recompile + re-blast, diff
    /// the dirty modules, bound the invalidation through provenance, and
    /// prefetch every cold shard in one batched round trip. The returned
    /// [`ReannotateJob`] is then driven by bounded
    /// [`ReannotateJob::step`] calls — the live annotation service
    /// interleaves many of these on one event-loop tick.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors; session state (the module-key diff
    /// base) is only advanced once the edit compiles.
    pub fn begin(&mut self, source: &str, store: &Store) -> Result<ReannotateJob, VerilogError> {
        let before = store.stats().namespace(stage::SHARD);
        let stages = PrepareStages::new(&self.cfg);
        let blasted = stages.blasted_with(store, &self.name, source)?;
        let compiled = &blasted.compiled;

        // Dirty-module diff against the previous pass (text-level hashes:
        // the report names what was edited, not its dependents). The
        // compile artifact carries the keys; a flat source the splitter
        // could not handle carries none, and then every edit is a
        // whole-design change anyway.
        let new_keys: BTreeMap<String, ContentHash> =
            compiled.module_keys.iter().cloned().collect();
        let mut dirty_modules: Vec<String> = new_keys
            .iter()
            .filter(|(name, key)| self.module_keys.get(*name) != Some(*key))
            .map(|(name, _)| name.clone())
            .collect();
        for gone in self.module_keys.keys() {
            if !new_keys.contains_key(gone) {
                dirty_modules.push(gone.clone());
            }
        }
        dirty_modules.sort();
        self.module_keys = new_keys;

        // The provenance map bounds what this edit may invalidate: cones
        // whose module set contains a dirty module.
        let provenance = rtlt_bog::signal_provenance(&compiled.netlist);
        let dirty_cone_bound: Vec<String> = blasted
            .sog
            .signals()
            .iter()
            .zip(&provenance)
            .filter(|(_, mods)| mods.iter().any(|m| dirty_modules.contains(m)))
            .map(|(s, _)| s.name.clone())
            .collect();

        // Featurize through the shard namespace against the pinned clock.
        let seed = design_seed(self.cfg.seed, &self.name);
        let keys = PrepareKeys::derive(&self.name, source, &self.cfg);
        let feat = FeaturizeJob::new(&blasted.sog, self.clock, seed);
        // Pull every cold shard from the fleet cache in one batched GETM
        // round trip (a no-op without a remote tier) — the stepped walk
        // then runs against staged payloads instead of per-key latency.
        store.prefetch(&feat.shard_items());
        Ok(ReannotateJob {
            name: self.name.clone(),
            source: source.to_owned(),
            clock: self.clock,
            setup: self.setup,
            seed,
            synth_effort: self.cfg.synth_effort,
            prepare_key: keys.featurize,
            ast_feats: compiled.ast_feats.clone(),
            sog: blasted.sog.clone(),
            dirty_modules,
            dirty_cone_bound,
            lib: Library::pseudo_bog(),
            feat,
            misses_before: before.misses,
            hits_before: before.hits(),
        })
    }

    /// Advances the diff base to `source` without recomputing anything —
    /// called when a *remote* session produced this revision's annotation,
    /// so a later local fallback diffs against the revision the designer
    /// actually sees, not a stale one.
    pub fn note_revision(&mut self, source: &str) {
        self.module_keys = module_key_map(source);
    }
}

/// One in-flight re-annotation pass, resumable in bounded slices. Created
/// by [`IncrementalAnnotator::begin`]; stepping to completion and calling
/// [`ReannotateJob::finish`] produces output byte-identical to
/// [`IncrementalAnnotator::reannotate`] (which is itself implemented over
/// this job).
#[derive(Debug)]
pub struct ReannotateJob {
    name: String,
    source: String,
    clock: f64,
    setup: f64,
    seed: u64,
    synth_effort: f64,
    prepare_key: ContentHash,
    ast_feats: Vec<f64>,
    sog: Bog,
    dirty_modules: Vec<String>,
    dirty_cone_bound: Vec<String>,
    lib: Library,
    feat: FeaturizeJob,
    misses_before: u64,
    hits_before: u64,
}

impl ReannotateJob {
    /// Evaluates up to `max_shards` more cone shards. Returns `true` once
    /// the pass is ready to [`ReannotateJob::finish`].
    pub fn step(&mut self, store: &Store, max_shards: usize) -> bool {
        self.feat.step(store, &self.lib, max_shards)
    }

    /// Total shards this pass evaluates (signals × variants).
    pub fn total_shards(&self) -> u64 {
        self.feat.total_shards()
    }

    /// Shards not yet evaluated.
    pub fn remaining_shards(&self) -> u64 {
        self.feat.remaining_shards()
    }

    /// Modules whose text changed since the previous pass.
    pub fn dirty_modules(&self) -> &[String] {
        &self.dirty_modules
    }

    /// Assembles the design data, predicts, and renders the annotated
    /// source. Panics if the job was not stepped to completion.
    pub fn finish(self, model: &RtlTimer, store: &Store) -> ReannotateOutcome {
        let variant_data = self.feat.finish();
        // Pseudo labels: the SOG pseudo-STA arrivals. Ground truth does not
        // exist for an unsynthesized edit; these only feed the labeled-
        // endpoint count of the WNS/TNS head and the (unused here)
        // evaluation fields of the prediction.
        let labels_at: Arc<[f64]> = variant_data[0].endpoint_sta_at.as_slice().into();
        let total_shards = (self.sog.signals().len() * 4) as u64;
        let signal_names = crate::pipeline::signal_names_of(&self.sog);
        let d = DesignData {
            name: self.name.as_str().into(),
            source: self.source,
            signal_names,
            sog: self.sog,
            variant_data,
            labels_at,
            clock: self.clock,
            setup: self.setup,
            wns: f64::NAN,
            tns: f64::NAN,
            area: f64::NAN,
            power: f64::NAN,
            ast_feats: self.ast_feats,
            synth_seed: self.seed,
            synth_effort: self.synth_effort,
            prepare_key: self.prepare_key,
        };

        let prediction = model.predict(&d);
        let annotated = annotate_source(&d, &prediction);

        let after = store.stats().namespace(stage::SHARD);
        ReannotateOutcome {
            annotated,
            dirty_modules: self.dirty_modules,
            dirty_cone_bound: self.dirty_cone_bound,
            dirty_shards: after.misses - self.misses_before,
            reused_shards: after.hits() - self.hits_before,
            total_shards,
            prediction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DesignSet;

    fn lane(name: &str, body: &str) -> String {
        format!(
            "module {name}(input clk, input [7:0] x, output [7:0] y);
  reg [7:0] r;
  always @(posedge clk) r <= {body};
  assign y = r;
endmodule"
        )
    }

    fn design(lane_a_body: &str) -> String {
        format!(
            "{}
{}
module hier_top(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
  wire [7:0] ya;
  wire [7:0] yb;
  laneA u0 (.clk(clk), .x(a), .y(ya));
  laneB u1 (.clk(clk), .x(b), .y(yb));
  reg [7:0] merge_r;
  always @(posedge clk) merge_r <= ya ^ yb;
  assign q = merge_r;
endmodule",
            lane("laneA", lane_a_body),
            lane("laneB", "x ^ (x >> 1)")
        )
    }

    fn session() -> (IncrementalAnnotator, RtlTimer, Store, TimerConfig, String) {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let base = design("x + 8'd3");
        let store = Store::in_memory();
        let sources = vec![
            ("hier_top".to_owned(), base.clone()),
            (
                "trainer".to_owned(),
                design("x - 8'd1").replace("hier_top", "trainer"),
            ),
        ];
        let set = DesignSet::prepare_named_with(&sources, &cfg, &store).unwrap();
        let (train, test) = set.split(&["hier_top"]);
        let model = RtlTimer::fit(&train, &cfg);
        let annotator = IncrementalAnnotator::new(test[0], &cfg);
        (annotator, model, store, cfg, base)
    }

    #[test]
    fn editing_one_module_dirties_only_its_cones() {
        let (mut annotator, model, store, _cfg, base) = session();
        // First pass on the unedited source: every shard hits (they were
        // filled by the suite preparation against the same pinned clock).
        let out0 = annotator.reannotate(&base, &model, &store).unwrap();
        assert!(out0.dirty_modules.is_empty());
        assert_eq!(out0.dirty_shards, 0, "baseline pass is fully warm");
        assert_eq!(out0.reused_shards, out0.total_shards);

        // Edit laneB only. The provenance bound covers laneB's register and
        // the downstream merge register (it reads yb); the content keys
        // refine that to just laneB's own cone — the merge cone's logic
        // (xor of two launch registers) did not change.
        let edited = base.replace("x ^ (x >> 1)", "x ^ (x >> 2)");
        let out = annotator.reannotate(&edited, &model, &store).unwrap();
        assert_eq!(out.dirty_modules, vec!["laneB".to_owned()]);
        // Signal order follows netlist register order (top's own registers
        // elaborate before instance registers).
        assert_eq!(
            out.dirty_cone_bound,
            vec!["merge_r".to_owned(), "u1.r".to_owned()]
        );
        // 3 signals × 4 variants total.
        assert_eq!(out.total_shards, 12);
        assert_eq!(out.dirty_shards, 4, "only laneB's own cone recomputes");
        assert!(
            out.dirty_shards <= 4 * out.dirty_cone_bound.len() as u64,
            "recomputation stays within the provenance bound"
        );
        assert_eq!(out.reused_shards, 8, "laneA + merge cones are reused");
        assert!(out.annotated.contains("(merge_r) Slack@"));
    }

    #[test]
    fn incremental_annotation_matches_cold_recompute() {
        let (mut annotator, model, store, cfg, base) = session();
        let edited = base.replace("x + 8'd3", "x + (x << 1)");
        let warm = annotator.reannotate(&edited, &model, &store).unwrap();
        assert!(warm.dirty_shards < warm.total_shards, "some shards reused");

        // Cold pass: fresh store, fresh session state — everything
        // recomputes from scratch.
        let cold_store = Store::in_memory();
        let mut cold = IncrementalAnnotator {
            name: "hier_top".to_owned(),
            cfg: cfg.clone(),
            clock: annotator.clock,
            setup: annotator.setup,
            module_keys: BTreeMap::new(),
        };
        let cold_out = cold.reannotate(&edited, &model, &cold_store).unwrap();
        assert_eq!(cold_out.dirty_shards, cold_out.total_shards);
        assert_eq!(
            warm.annotated, cold_out.annotated,
            "incremental result is byte-identical to a cold recompute"
        );
    }

    #[test]
    fn chunked_stepping_is_byte_identical_to_one_shot() {
        let (mut annotator, model, store, cfg, base) = session();
        let edited = base.replace("x + 8'd3", "x + (x << 2)");
        let one_shot = annotator.reannotate(&edited, &model, &store).unwrap();

        // The same revision through 1-shard steps on a cold twin — the
        // slicing the live service uses to keep one slow session from
        // starving its event-loop tick must not change a single byte.
        let cold_store = Store::in_memory();
        let mut twin = IncrementalAnnotator {
            name: "hier_top".to_owned(),
            cfg: cfg.clone(),
            clock: annotator.clock,
            setup: annotator.setup,
            module_keys: BTreeMap::new(),
        };
        let mut job = twin.begin(&edited, &cold_store).unwrap();
        assert_eq!(job.total_shards(), 12);
        let mut steps = 0;
        while !job.step(&cold_store, 1) {
            steps += 1;
            assert!(job.remaining_shards() > 0);
        }
        assert!(steps >= 11, "12 shards actually stepped one at a time");
        let out = job.finish(&model, &cold_store);
        assert_eq!(out.annotated, one_shot.annotated);
        assert_eq!(out.total_shards, 12);
        assert_eq!(out.dirty_shards, 12, "cold twin recomputes everything");
    }

    #[test]
    fn broken_edit_reports_error_and_preserves_session() {
        let (mut annotator, model, store, _cfg, base) = session();
        let keys_before = annotator.module_keys.clone();
        let err = annotator
            .reannotate("module hier_top(input clk; endmodule", &model, &store)
            .unwrap_err();
        assert!(!err.message.is_empty());
        assert_eq!(annotator.module_keys, keys_before);
        // The loop continues against the last good revision.
        let ok = annotator.reannotate(&base, &model, &store).unwrap();
        assert!(ok.annotated.contains("Slack@"));
    }
}
