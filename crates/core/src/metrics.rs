//! Evaluation metrics (paper §4.2): Pearson R, R², MAPE and the critical
//! level ranking coverage COVR with the paper's 4 criticality groups
//! (top 5 %, 5–40 %, 40–70 %, rest).

/// Pearson correlation coefficient; 0 when either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma).powi(2);
        db += (y - mb).powi(2);
    }
    let d = (da * db).sqrt();
    if d < 1e-12 {
        0.0
    } else {
        num / d
    }
}

/// Coefficient of determination (R²) of predictions vs labels.
pub fn r_squared(pred: &[f64], label: &[f64]) -> f64 {
    assert_eq!(pred.len(), label.len());
    if pred.is_empty() {
        return 0.0;
    }
    let mean = label.iter().sum::<f64>() / label.len() as f64;
    let ss_res: f64 = pred.iter().zip(label).map(|(p, y)| (y - p).powi(2)).sum();
    let ss_tot: f64 = label.iter().map(|y| (y - mean).powi(2)).sum();
    if ss_tot < 1e-12 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean absolute percentage error (%), skipping labels within `1e-9` of 0.
pub fn mape(pred: &[f64], label: &[f64]) -> f64 {
    assert_eq!(pred.len(), label.len());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (p, y) in pred.iter().zip(label) {
        if y.abs() > 1e-9 {
            acc += ((p - y) / y).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * acc / n as f64
    }
}

/// The paper's criticality group boundaries as fractions of the endpoint
/// count: group 1 = top 5 %, group 2 = 5–40 %, group 3 = 40–70 %,
/// group 4 = rest.
pub const GROUP_BOUNDS: [f64; 3] = [0.05, 0.40, 0.70];

/// Assigns each item a criticality group (0 = most critical) from its
/// score, where **larger scores are more critical** (e.g. arrival times).
pub fn rank_groups(scores: &[f64]) -> Vec<usize> {
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let cut = |f: f64| ((n as f64) * f).ceil() as usize;
    let c1 = cut(GROUP_BOUNDS[0]).max(1);
    let c2 = cut(GROUP_BOUNDS[1]);
    let c3 = cut(GROUP_BOUNDS[2]);
    let mut groups = vec![3usize; n];
    for (rank, &idx) in order.iter().enumerate() {
        groups[idx] = if rank < c1 {
            0
        } else if rank < c2 {
            1
        } else if rank < c3 {
            2
        } else {
            3
        };
    }
    groups
}

/// Critical-level ranking coverage: mean over groups of
/// `|pred_group ∩ label_group| / |label_group|` (paper §4.2), in percent.
pub fn covr(pred_scores: &[f64], label_scores: &[f64]) -> f64 {
    assert_eq!(pred_scores.len(), label_scores.len());
    if pred_scores.is_empty() {
        return 0.0;
    }
    let pg = rank_groups(pred_scores);
    let lg = rank_groups(label_scores);
    let mut cover = 0.0;
    let mut counted = 0usize;
    for g in 0..4 {
        let label_set: Vec<usize> = (0..lg.len()).filter(|&i| lg[i] == g).collect();
        if label_set.is_empty() {
            continue;
        }
        let inter = label_set.iter().filter(|&&i| pg[i] == g).count();
        cover += inter as f64 / label_set.len() as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        100.0 * cover / counted as f64
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn r_squared_perfect() {
        let y = [1.0, 2.0, 3.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mape_basic() {
        assert!((mape(&[110.0], &[100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0, "zero labels skipped");
    }

    #[test]
    fn groups_match_paper_fractions() {
        // 100 items with distinct scores.
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let g = rank_groups(&scores);
        let count = |k: usize| g.iter().filter(|&&x| x == k).count();
        assert_eq!(count(0), 5);
        assert_eq!(count(1), 35);
        assert_eq!(count(2), 30);
        assert_eq!(count(3), 30);
        // Highest score (99) is most critical.
        assert_eq!(g[99], 0);
        assert_eq!(g[0], 3);
    }

    #[test]
    fn covr_perfect_and_degraded() {
        let labels: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!((covr(&labels, &labels) - 100.0).abs() < 1e-9);
        // Reversed prediction: top group never intersects.
        let rev: Vec<f64> = labels.iter().rev().cloned().collect();
        assert!(covr(&rev, &labels) < 40.0);
    }

    #[test]
    fn covr_tiny_design_has_nonempty_group1() {
        // 8 endpoints: ceil(0.05·8)=1 → group 1 exists.
        let labels: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let g = rank_groups(&labels);
        assert_eq!(g.iter().filter(|&&x| x == 0).count(), 1);
    }
}
