//! End-to-end pipeline: design preparation as named dataflow stages
//! ([`PrepareStages`]: compile → blast → label via synthesis → featurize),
//! model fitting, prediction, cross-validation.
//!
//! All CPU parallelism (suite preparation, cross-validation folds) runs on
//! the shared [`rtlt_runtime`] work-queue executor, and every stage output
//! is memoizable through the shared [`rtlt_store::Store`] handle threaded
//! into the `*_with` entry points (see [`crate::cache`] for the key
//! derivation). The storeless entry points delegate to the same code path
//! with a pass-through store, so cached and uncached preparation cannot
//! diverge.

use crate::bitwise::{BitModelKind, BitwiseCorpus, BitwiseModel};
use crate::cache::{modast_key, model_key, stage, PrepareKeys};
use crate::dataset::{FeaturizeScratch, VariantData};
use crate::design::{design_row, direct_wns_tns, DesignTimingModel};
use crate::ensemble::{meta_rows, meta_rows_into, EnsembleModel};
use crate::metrics;
use crate::signal::{signal_labels, signal_rows, signal_rows_into, SignalModels};
use rtlt_bog::{blast, Bog, SignalInfo};
use rtlt_liberty::{CellFunc, Drive, Library};
use rtlt_ml::FeatureMatrix;
use rtlt_store::{ContentHash, KeyBuilder, LeaseGrant, RemoteTier, Store};
use rtlt_synth::{synthesize, SynthOptions, SynthResult};
use rtlt_verilog::ast::{Module, SourceFile};
use rtlt_verilog::{modsrc, VerilogError};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Global pipeline configuration.
#[derive(Debug, Clone)]
pub struct TimerConfig {
    /// Master seed (per-design seeds derive from it and the design name).
    pub seed: u64,
    /// Synthesis effort for label generation.
    pub synth_effort: f64,
    /// Worker threads for suite preparation / cross-validation.
    pub threads: usize,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            seed: 2024,
            // Bounded default effort: the label flow leaves realistic
            // residual violations (Table 6 operates on these).
            synth_effort: 0.6,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Failure to prepare one design of a set: the design's name plus the
/// underlying frontend error.
#[derive(Debug)]
pub struct PrepareError {
    /// Name of the design that failed to prepare.
    pub design: String,
    /// The frontend error that caused the failure.
    pub source: VerilogError,
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.design, self.source)
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

pub(crate) fn design_seed(master: u64, name: &str) -> u64 {
    let mut h = master ^ 0x9e3779b97f4a7c15;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// RTL signal names of a SOG, in signal order (shared by featurization and
/// store decoding so both construct identical [`DesignData`]s).
pub(crate) fn signal_names_of(sog: &Bog) -> Arc<[String]> {
    sog.signals().iter().map(|s| s.name.clone()).collect()
}

/// A fully prepared design: featurized representations plus ground-truth
/// labels from the synthesis simulator.
#[derive(Debug, Clone)]
pub struct DesignData {
    /// Design name (top module).
    pub name: Arc<str>,
    /// Original Verilog source.
    pub source: String,
    /// SOG representation (kept for annotation/optimization/baselines).
    pub sog: Bog,
    /// Path datasets for SOG, AIG, AIMG, XAG (in [`BogVariant::ALL`] order).
    pub variant_data: Vec<VariantData>,
    /// Ground-truth arrival time per register (bit) endpoint (shared into
    /// each [`Prediction`] without copying).
    pub labels_at: Arc<[f64]>,
    /// Clock period used by the label flow (ns).
    pub clock: f64,
    /// DFF setup time (ns).
    pub setup: f64,
    /// Ground-truth design WNS (ns).
    pub wns: f64,
    /// Ground-truth design TNS (ns).
    pub tns: f64,
    /// Ground-truth area.
    pub area: f64,
    /// Ground-truth power.
    pub power: f64,
    /// AST features (ICCAD'22-style baseline input).
    pub ast_feats: Vec<f64>,
    /// Per-design seed (reused by optimization flows).
    pub synth_seed: u64,
    /// Synthesis effort used by the label flow (optimization flows scale
    /// from this).
    pub synth_effort: f64,
    /// RTL signal names, aligned with [`DesignData::signals`] (shared into
    /// each [`Prediction`] without copying).
    pub signal_names: Arc<[String]>,
    /// Content key of this preparation ([`PrepareKeys::featurize`]) —
    /// provenance, and the base key for derived memoizations such as the
    /// optimization candidate flows.
    pub prepare_key: ContentHash,
}

/// Output of [`PrepareStages::compile`]: frontend artifacts of one design.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    /// Design name (top module).
    pub name: String,
    /// Original Verilog source.
    pub source: String,
    /// AST features (ICCAD'22-style baseline input), restricted to the top
    /// module's dependency cone — the compile artifact must be a pure
    /// function of its module-granular key.
    pub ast_feats: Vec<f64>,
    /// Elaborated word-level netlist.
    pub netlist: rtlt_verilog::rtlir::Netlist,
    /// Per-module text keys of the source (`H(name, text)`, sorted by
    /// module name) — the incremental driver's dirty-module diff reads
    /// them from here instead of re-splitting the source. Text-level on
    /// purpose: the diff should name the module the designer actually
    /// touched, not everything coupled to it through a closed parent key.
    pub module_keys: Vec<(String, ContentHash)>,
}

impl CompiledDesign {
    /// Looks up one module's text key.
    pub fn module_key(&self, module: &str) -> Option<ContentHash> {
        self.module_keys
            .iter()
            .find(|(n, _)| n == module)
            .map(|(_, k)| *k)
    }
}

/// Output of [`PrepareStages::blast`]: the design plus its SOG.
#[derive(Debug, Clone)]
pub struct BlastedDesign {
    /// Frontend artifacts.
    pub compiled: CompiledDesign,
    /// Bit-blasted SOG representation.
    pub sog: Bog,
}

/// Output of [`PrepareStages::label`]: the design plus ground-truth labels
/// from the synthesis simulator.
#[derive(Debug)]
pub struct LabeledDesign {
    /// Blasted design.
    pub blasted: BlastedDesign,
    /// Synthesis-flow outcome (arrival labels, WNS/TNS, area, power).
    pub synth: SynthResult,
    /// Per-design seed used by the label flow.
    pub synth_seed: u64,
    /// DFF setup time (ns) of the label library.
    pub setup: f64,
}

/// The slice of a label flow that featurization (and therefore the cache)
/// actually needs — [`LabeledDesign`] minus the mapped netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelOutcome {
    /// Ground-truth arrival time per register endpoint (ns).
    pub endpoint_at: Vec<f64>,
    /// Ground-truth design WNS (ns).
    pub wns: f64,
    /// Ground-truth design TNS (ns).
    pub tns: f64,
    /// Ground-truth area.
    pub area: f64,
    /// Ground-truth power.
    pub power: f64,
    /// Clock period used by the label flow (ns).
    pub clock: f64,
    /// DFF setup time (ns).
    pub setup: f64,
    /// Per-design seed used by the label flow.
    pub synth_seed: u64,
}

impl LabelOutcome {
    /// Extracts the cacheable slice of a full label-stage output.
    pub fn of(labeled: &LabeledDesign) -> LabelOutcome {
        LabelOutcome {
            endpoint_at: labeled.synth.endpoint_at.clone(),
            wns: labeled.synth.wns,
            tns: labeled.synth.tns,
            area: labeled.synth.area,
            power: labeled.synth.power,
            clock: labeled.synth.clock_period,
            setup: labeled.setup,
            synth_seed: labeled.synth_seed,
        }
    }
}

/// The design-preparation dataflow, split into named, individually-callable
/// stages: `compile → blast → label → featurize`.
///
/// [`DesignData::prepare`] runs all four back to back; calling the stages
/// separately lets a driver memoize, distribute, or batch each boundary
/// independently. [`PrepareStages::run_with`] is the memoized runner: each
/// stage computes its content key and consults the given
/// [`rtlt_store::Store`] before running, so anything from a single stage to
/// the whole preparation can be skipped on a warm cache.
#[derive(Debug, Clone, Copy)]
pub struct PrepareStages<'a> {
    cfg: &'a TimerConfig,
}

impl<'a> PrepareStages<'a> {
    /// Stage runner bound to one pipeline configuration.
    pub fn new(cfg: &'a TimerConfig) -> PrepareStages<'a> {
        PrepareStages { cfg }
    }

    /// **Stage 1 — compile**: parse, extract AST features, elaborate.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (parse/elaborate failures).
    pub fn compile(&self, name: &str, source: &str) -> Result<CompiledDesign, VerilogError> {
        self.compile_modular(&Store::disabled(), name, source)
    }

    /// Parses the source module by module, memoizing each module's AST in
    /// the `modast` namespace under `H(module text)` (with lines cached
    /// relative and rebased on use, so identical module text shares one
    /// entry regardless of file position). Falls back to a whole-file parse
    /// when the source cannot be split or any module fails standalone — the
    /// fallback reproduces canonical error positions. Returns the split
    /// module sources alongside (`None` on the fallback path) so the
    /// caller does not re-split.
    fn parse_modular(
        &self,
        store: &Store,
        source: &str,
    ) -> Result<(SourceFile, Option<modsrc::ModuleSources>), VerilogError> {
        let Ok(sources) = modsrc::split_modules(source) else {
            return Ok((rtlt_verilog::parse(source)?, None));
        };
        let mut modules = Vec::with_capacity(sources.modules.len());
        for m in &sources.modules {
            let parsed: Result<Arc<Module>, VerilogError> =
                store.get_or_try_compute(stage::MODAST, modast_key(&m.text), || {
                    let file = rtlt_verilog::parse(&m.text)?;
                    let mut mods = file.modules;
                    if mods.len() == 1 && mods[0].name == m.name {
                        Ok(mods.pop().expect("one module"))
                    } else {
                        Err(VerilogError::general(
                            "module text did not parse standalone",
                        ))
                    }
                });
            match parsed {
                Ok(ast) => {
                    let mut module = (*ast).clone();
                    modsrc::shift_lines(&mut module, m.start_line - 1);
                    modules.push(module);
                }
                Err(_) => return Ok((rtlt_verilog::parse(source)?, None)),
            }
        }
        Ok((SourceFile { modules }, Some(sources)))
    }

    /// Stage 1 through the store: unchanged modules reuse their cached
    /// parse; AST features are restricted to the top's dependency cone so
    /// the artifact matches its module-granular key.
    fn compile_modular(
        &self,
        store: &Store,
        name: &str,
        source: &str,
    ) -> Result<CompiledDesign, VerilogError> {
        let (file, sources) = self.parse_modular(store, source)?;
        let cone: BTreeSet<String> = modsrc::dependency_cone(&file, name).into_iter().collect();
        let cone_file = SourceFile {
            modules: file
                .modules
                .iter()
                .filter(|m| cone.contains(&m.name))
                .cloned()
                .collect(),
        };
        let ast_feats = rtlt_verilog::astfeat::extract(&cone_file).to_vec();
        let netlist = rtlt_verilog::elaborate(&file, name)?;
        let module_keys = match &sources {
            Some(sources) => sources
                .modules
                .iter()
                .map(|m| (m.name.clone(), modsrc::text_key(&m.name, &m.text)))
                .collect(),
            None => Vec::new(),
        };
        Ok(CompiledDesign {
            name: name.to_owned(),
            source: source.to_owned(),
            ast_feats,
            netlist,
            module_keys,
        })
    }

    /// **Stage 2 — blast**: lower the word-level netlist to the bit-level
    /// SOG whose register bits are the timing endpoints.
    pub fn blast(&self, compiled: CompiledDesign) -> BlastedDesign {
        let sog = blast(&compiled.netlist);
        BlastedDesign { compiled, sog }
    }

    /// The label synthesis flow (stage 3's body, shared by the cached and
    /// uncached runners).
    fn run_label_flow(&self, blasted: &BlastedDesign) -> (SynthResult, u64, f64) {
        let lib = Library::nangate45_like();
        let seed = design_seed(self.cfg.seed, &blasted.compiled.name);
        let synth = synthesize(
            &blasted.sog,
            &lib,
            &SynthOptions {
                seed,
                effort: self.cfg.synth_effort,
                ..Default::default()
            },
        );
        let setup = lib.cell(CellFunc::Dff, Drive::X1).seq.expect("dff").setup;
        (synth, seed, setup)
    }

    /// **Stage 3 — label**: run the ground-truth synthesis flow against the
    /// NanGate45-like library.
    pub fn label(&self, blasted: BlastedDesign) -> LabeledDesign {
        let (synth, synth_seed, setup) = self.run_label_flow(&blasted);
        LabeledDesign {
            blasted,
            synth,
            synth_seed,
            setup,
        }
    }

    /// Stage 3 producing only the cacheable [`LabelOutcome`].
    fn label_outcome(&self, blasted: &BlastedDesign) -> LabelOutcome {
        let (synth, synth_seed, setup) = self.run_label_flow(blasted);
        LabelOutcome {
            endpoint_at: synth.endpoint_at,
            wns: synth.wns,
            tns: synth.tns,
            area: synth.area,
            power: synth.power,
            clock: synth.clock_period,
            setup,
            synth_seed,
        }
    }

    /// **Stage 4 — featurize**: build the path datasets of all four BOG
    /// variants against the label clock and assemble the [`DesignData`].
    pub fn featurize(&self, labeled: LabeledDesign) -> DesignData {
        let outcome = LabelOutcome::of(&labeled);
        let keys = PrepareKeys::derive(
            &labeled.blasted.compiled.name,
            &labeled.blasted.compiled.source,
            self.cfg,
        );
        self.featurize_parts(
            &Store::disabled(),
            &labeled.blasted,
            &outcome,
            keys.featurize,
        )
    }

    /// Stage 4's body: assemble a [`DesignData`] from the blasted design
    /// and the label outcome. Featurization runs through the sharded path
    /// (one memoized [`crate::dataset::ConeShard`] per signal × variant);
    /// with a pass-through store that is simply the canonical computation.
    /// `prepare_key` is the caller's already-derived featurize key (keys
    /// are derived once per preparation, not re-derived per stage).
    pub(crate) fn featurize_parts(
        &self,
        store: &Store,
        blasted: &BlastedDesign,
        label: &LabelOutcome,
        prepare_key: ContentHash,
    ) -> DesignData {
        self.featurize_parts_scratch(
            store,
            blasted,
            label,
            prepare_key,
            &mut FeaturizeScratch::new(),
        )
    }

    /// [`Self::featurize_parts`] with a caller-owned featurize scratch —
    /// the parallel prepare path passes one per worker thread so the
    /// levelized-kernel tables and merge buffers are reused across every
    /// design a worker processes.
    pub(crate) fn featurize_parts_scratch(
        &self,
        store: &Store,
        blasted: &BlastedDesign,
        label: &LabelOutcome,
        prepare_key: ContentHash,
        scratch: &mut FeaturizeScratch,
    ) -> DesignData {
        let compiled = &blasted.compiled;
        let sog = blasted.sog.clone();
        let pseudo = Library::pseudo_bog();
        let variant_data = crate::dataset::build_all_variant_data_scratch(
            store,
            &sog,
            &pseudo,
            label.clock,
            label.synth_seed,
            crate::dataset::cone_dedup_enabled(),
            scratch,
        );

        DesignData {
            name: compiled.name.as_str().into(),
            source: compiled.source.clone(),
            signal_names: signal_names_of(&sog),
            sog,
            variant_data,
            labels_at: label.endpoint_at.as_slice().into(),
            clock: label.clock,
            setup: label.setup,
            wns: label.wns,
            tns: label.tns,
            area: label.area,
            power: label.power,
            ast_feats: compiled.ast_feats.clone(),
            synth_seed: label.synth_seed,
            synth_effort: self.cfg.synth_effort,
            prepare_key,
        }
    }

    /// Runs all four stages back to back.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors from [`PrepareStages::compile`].
    pub fn run(&self, name: &str, source: &str) -> Result<DesignData, VerilogError> {
        let compiled = self.compile(name, source)?;
        Ok(self.featurize(self.label(self.blast(compiled))))
    }

    /// The blast-stage artifact through the store: consults the `blast`
    /// (and, on a miss, `compile`) namespaces before computing.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors from [`PrepareStages::compile`].
    pub fn blasted_with(
        &self,
        store: &Store,
        name: &str,
        source: &str,
    ) -> Result<Arc<BlastedDesign>, VerilogError> {
        let keys = PrepareKeys::derive(name, source, self.cfg);
        let blasted = self.blasted_with_keys(store, &keys, name, source)?;
        Ok(Self::blasted_with_live_source(blasted, source))
    }

    /// Rebinds a cached artifact's carried source to the text the caller
    /// actually passed. The module-granular keys deliberately ignore
    /// everything outside the top's dependency cone, so a cache hit can
    /// carry an older byte-variant of the file (e.g. before an unused
    /// module was appended); every computed field is identical by
    /// construction — cone module texts *and positions* are in the key —
    /// but the source must be the live one so annotation re-emits the
    /// user's current file.
    fn design_with_live_source(d: Arc<DesignData>, source: &str) -> Arc<DesignData> {
        if d.source == source {
            d
        } else {
            Arc::new(DesignData {
                source: source.to_owned(),
                ..(*d).clone()
            })
        }
    }

    /// [`Self::design_with_live_source`] for the blast-stage artifact.
    fn blasted_with_live_source(b: Arc<BlastedDesign>, source: &str) -> Arc<BlastedDesign> {
        if b.compiled.source == source {
            b
        } else {
            let mut patched = (*b).clone();
            patched.compiled.source = source.to_owned();
            Arc::new(patched)
        }
    }

    fn blasted_with_keys(
        &self,
        store: &Store,
        keys: &PrepareKeys,
        name: &str,
        source: &str,
    ) -> Result<Arc<BlastedDesign>, VerilogError> {
        store.get_or_try_compute(stage::BLAST, keys.blast, || {
            let compiled = store.get_or_try_compute(stage::COMPILE, keys.compile, || {
                self.compile_modular(store, name, source)
            })?;
            Ok(self.blast((*compiled).clone()))
        })
    }

    /// Runs all four stages through the store: each stage computes its key
    /// (see [`PrepareKeys`]) and is skipped when the store already holds
    /// its output. A fully warm cache answers from the `featurize`
    /// namespace without even parsing the source.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors from [`PrepareStages::compile`] (only
    /// successful stage outputs are ever stored).
    pub fn run_with(
        &self,
        store: &Store,
        name: &str,
        source: &str,
    ) -> Result<Arc<DesignData>, VerilogError> {
        self.run_with_scratch(store, name, source, &mut FeaturizeScratch::new())
    }

    /// [`Self::run_with`] with a caller-owned featurize scratch (reused
    /// across the designs a prepare worker processes).
    ///
    /// # Errors
    ///
    /// Propagates frontend errors from [`PrepareStages::compile`].
    pub fn run_with_scratch(
        &self,
        store: &Store,
        name: &str,
        source: &str,
        scratch: &mut FeaturizeScratch,
    ) -> Result<Arc<DesignData>, VerilogError> {
        let keys = PrepareKeys::derive(name, source, self.cfg);
        let d = store.get_or_try_compute(stage::FEATURIZE, keys.featurize, || {
            let blasted = self.blasted_with_keys(store, &keys, name, source)?;
            let label =
                store.get_or_compute(stage::LABEL, keys.label, || self.label_outcome(&blasted));
            Ok(self.featurize_parts_scratch(store, &blasted, &label, keys.featurize, scratch))
        })?;
        Ok(Self::design_with_live_source(d, source))
    }
}

impl DesignData {
    /// Compiles, labels and featurizes one design (all four
    /// [`PrepareStages`] back to back).
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (parse/elaborate failures).
    pub fn prepare(
        name: &str,
        source: &str,
        cfg: &TimerConfig,
    ) -> Result<DesignData, VerilogError> {
        PrepareStages::new(cfg).run(name, source)
    }

    /// RTL signals of the design.
    pub fn signals(&self) -> &[SignalInfo] {
        self.sog.signals()
    }

    /// Ground-truth signal-level max arrival per signal.
    pub fn signal_labels(&self) -> Vec<f64> {
        signal_labels(&self.labels_at, self.signals())
    }

    /// Operator histogram (normalized) — the SNS-style baseline input.
    pub fn op_histogram(&self) -> Vec<f64> {
        let s = self.sog.stats();
        let t = (s.comb_total + s.dff).max(1) as f64;
        vec![
            s.not as f64 / t,
            s.and2 as f64 / t,
            s.or2 as f64 / t,
            s.xor2 as f64 / t,
            s.mux2 as f64 / t,
            s.dff as f64 / t,
            (s.total_cells as f64).ln_1p(),
            s.max_level as f64,
            self.clock,
        ]
    }
}

/// Deterministic shard assignment of one design name.
///
/// Stable across processes and platforms (content-hash based, never the
/// randomly-keyed `DefaultHasher`), so N fleet workers given `i/N` specs
/// partition any design list identically without coordinating: every name
/// lands in exactly one shard for any `shard_count`. A `shard_count` of 0
/// is treated as 1.
pub fn shard_of(name: &str, shard_count: usize) -> usize {
    let count = shard_count.max(1) as u64;
    let h = KeyBuilder::new("rtlt.shard.v1").str(name).finish();
    let x = u64::from_le_bytes(h.0[..8].try_into().expect("8 bytes"));
    (x % count) as usize
}

/// An owned collection of prepared designs.
///
/// Designs are held behind `Arc` so the set, the store's in-memory tier and
/// every in-flight prediction share one copy of each preparation.
#[derive(Debug, Default)]
pub struct DesignSet {
    designs: Vec<Arc<DesignData>>,
}

impl DesignSet {
    /// Wraps prepared designs.
    pub fn new(designs: Vec<DesignData>) -> DesignSet {
        DesignSet {
            designs: designs.into_iter().map(Arc::new).collect(),
        }
    }

    /// Wraps already-shared prepared designs.
    pub fn from_shared(designs: Vec<Arc<DesignData>>) -> DesignSet {
        DesignSet { designs }
    }

    /// Prepares the full 21-design benchmark suite in parallel.
    ///
    /// # Panics
    ///
    /// Panics if any generated design fails to compile (the generator and
    /// frontend are tested together, so this indicates a bug).
    pub fn prepare_suite(cfg: &TimerConfig) -> DesignSet {
        Self::prepare_suite_with(cfg, &Store::disabled())
    }

    /// [`DesignSet::prepare_suite`] through a shared artifact store.
    ///
    /// # Panics
    ///
    /// Panics if any generated design fails to compile.
    pub fn prepare_suite_with(cfg: &TimerConfig, store: &Store) -> DesignSet {
        let sources = rtlt_designgen::generate_all();
        Self::prepare_named_with(&sources, cfg, store).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The subset of `sources` assigned to shard `shard_index` of
    /// `shard_count` by [`shard_of`] (input order preserved). The shards
    /// of any fixed `shard_count` partition the input: disjoint, and their
    /// union (over all indices) is the whole list.
    pub fn shard_sources(
        sources: &[(String, String)],
        shard_index: usize,
        shard_count: usize,
    ) -> Vec<(String, String)> {
        sources
            .iter()
            .filter(|(name, _)| shard_of(name, shard_count) == shard_index)
            .cloned()
            .collect()
    }

    /// Fleet-sharded suite preparation: prepares only the benchmark-suite
    /// designs assigned to shard `shard_index` of `shard_count`. N workers
    /// running disjoint shards against disjoint cache dirs prepare the full
    /// suite cooperatively; [`Store::merge_disk_tier`] then assembles the
    /// single warm cache, byte-identical to an unsharded cold prepare.
    ///
    /// # Panics
    ///
    /// Panics if `shard_index >= shard_count` (a misconfigured fleet spec
    /// is a driver bug, not a recoverable state) or if a generated design
    /// fails to compile.
    pub fn prepare_suite_sharded(
        cfg: &TimerConfig,
        store: &Store,
        shard_index: usize,
        shard_count: usize,
    ) -> DesignSet {
        assert!(
            shard_index < shard_count.max(1),
            "shard index {shard_index} out of range for {shard_count} shards"
        );
        let sources =
            Self::shard_sources(&rtlt_designgen::generate_all(), shard_index, shard_count);
        Self::prepare_named_with(&sources, cfg, store).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Work-stealing suite preparation over the full benchmark suite: the
    /// sources come from `rtlt_designgen::generate_all()` and the shards
    /// from the `fleet` server's planner. See [`prepare_stolen`].
    ///
    /// # Panics
    ///
    /// Panics if a generated design fails to compile.
    pub fn prepare_suite_stolen(
        cfg: &TimerConfig,
        store: &Store,
        fleet: &RemoteTier,
        steal: &StealConfig,
    ) -> Option<StolenPrepare> {
        prepare_stolen(&rtlt_designgen::generate_all(), cfg, store, fleet, steal)
    }

    /// Prepares an arbitrary list of `(name, source)` designs in parallel
    /// (work-queue scheduled on [`TimerConfig::threads`] workers).
    ///
    /// # Errors
    ///
    /// Returns the [`PrepareError`] of the first failing design (first by
    /// input order, deterministically — not by wall-clock completion).
    pub fn prepare_named(
        sources: &[(String, String)],
        cfg: &TimerConfig,
    ) -> Result<DesignSet, PrepareError> {
        Self::prepare_named_with(sources, cfg, &Store::disabled())
    }

    /// [`DesignSet::prepare_named`] through a shared artifact store: the
    /// store handle is threaded into every worker, so concurrent
    /// preparations fill (and draw from) the same two cache tiers.
    ///
    /// # Errors
    ///
    /// Returns the [`PrepareError`] of the first failing design (first by
    /// input order, deterministically — not by wall-clock completion).
    pub fn prepare_named_with(
        sources: &[(String, String)],
        cfg: &TimerConfig,
        store: &Store,
    ) -> Result<DesignSet, PrepareError> {
        Self::prepare_named_timed_with(sources, cfg, store).map(|(set, _)| set)
    }

    /// Batched read-ahead of the whole set's prepare keys through the
    /// store's remote tier (a no-op without one): one `GETM` round trip
    /// for every featurize key, then one more for the earlier-stage keys
    /// of the designs the first round could not cover — two round trips
    /// where the per-key path would pay latency per artifact.
    fn prefetch_prepare_keys(store: &Store, sources: &[(String, String)], cfg: &TimerConfig) {
        if !store.has_remote() || sources.is_empty() {
            return;
        }
        let keys: Vec<PrepareKeys> = sources
            .iter()
            .map(|(name, src)| PrepareKeys::derive(name, src, cfg))
            .collect();
        let featurize: Vec<(String, ContentHash)> = keys
            .iter()
            .map(|k| (stage::FEATURIZE.to_owned(), k.featurize))
            .collect();
        let covered = store.prefetch(&featurize);
        let mut rest = Vec::new();
        for (k, covered) in keys.iter().zip(&covered) {
            if !covered {
                // A warm featurize artifact answers the whole preparation,
                // so the earlier stages are only worth shipping for the
                // designs the first round missed.
                rest.push((stage::COMPILE.to_owned(), k.compile));
                rest.push((stage::BLAST.to_owned(), k.blast));
                rest.push((stage::LABEL.to_owned(), k.label));
            }
        }
        if !rest.is_empty() {
            store.prefetch(&rest);
        }
    }

    /// [`DesignSet::prepare_named_with`], additionally returning each
    /// design's observed prepare wall time `(name, seconds)` in input
    /// order — the cost observations that seed the fleet planner's
    /// longest-expected-first ordering on later runs.
    ///
    /// # Errors
    ///
    /// Returns the [`PrepareError`] of the first failing design (first by
    /// input order, deterministically — not by wall-clock completion).
    pub fn prepare_named_timed_with(
        sources: &[(String, String)],
        cfg: &TimerConfig,
        store: &Store,
    ) -> Result<(DesignSet, Vec<(String, f64)>), PrepareError> {
        Self::prefetch_prepare_keys(store, sources, cfg);
        let stages = PrepareStages::new(cfg);
        let prepared = rtlt_runtime::try_par_map_with(
            cfg.threads,
            sources,
            FeaturizeScratch::new,
            |scratch, _, (name, src)| {
                let t = Instant::now();
                stages
                    .run_with_scratch(store, name, src, scratch)
                    .map(|d| (d, t.elapsed().as_secs_f64()))
                    .map_err(|e| PrepareError {
                        design: name.clone(),
                        source: e,
                    })
            },
        );
        // Prefetched payloads the run never consumed (e.g. a compile
        // artifact short-circuited by a blast hit) must not outlive the
        // preparation they were staged for.
        store.drop_staged();
        // Drain fire-and-forget remote writes: the suite's artifacts are
        // in the server's custody before the prepare reports done, so a
        // subsequent fleet warm run (or the round-trip counters a bench
        // samples here) see a settled store.
        store.flush();
        let prepared = prepared?;
        let mut designs = Vec::with_capacity(prepared.len());
        let mut seconds = Vec::with_capacity(prepared.len());
        for (d, s) in prepared {
            seconds.push((d.name.to_string(), s));
            designs.push(d);
        }
        Ok((DesignSet { designs }, seconds))
    }

    /// [`DesignSet::prepare_named`], panicking on failure — for bench
    /// binaries and tests where a frontend error is a bug.
    ///
    /// # Panics
    ///
    /// Panics with the failing design's name if a source fails to compile.
    pub fn prepare_named_or_panic(sources: &[(String, String)], cfg: &TimerConfig) -> DesignSet {
        Self::prepare_named(sources, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The prepared designs.
    pub fn designs(&self) -> &[Arc<DesignData>] {
        &self.designs
    }

    /// Finds a design by name.
    pub fn get(&self, name: &str) -> Option<&DesignData> {
        self.designs.iter().find(|d| &*d.name == name).map(|d| &**d)
    }

    /// Splits into `(train, test)` by test-design names.
    pub fn split<'a>(&'a self, test_names: &[&str]) -> (Vec<&'a DesignData>, Vec<&'a DesignData>) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for d in &self.designs {
            if test_names.contains(&&*d.name) {
                test.push(&**d);
            } else {
                train.push(&**d);
            }
        }
        (train, test)
    }

    /// Content digest of the prepared set: a stable hash over every
    /// design's name, prepare key, ground-truth outputs (labels, WNS/TNS,
    /// area, power, clock), AST features and the full featurized
    /// `variant_data` (through its canonical codec encoding — the bulk of
    /// what the cache tiers actually serve), order-independent (sorted by
    /// name). The carried `source` text is deliberately excluded: cache
    /// hits rebind it to the caller's live file, which may legitimately
    /// differ outside the top module's dependency cone.
    ///
    /// Two preparations that took different routes to the same artifacts —
    /// cold vs. warm, unsharded vs. shard-and-merge, local vs. remote tier
    /// — digest identically iff they produced identical results; the CI
    /// fleet jobs assert exactly that, so a tier bug serving a
    /// wrong-but-well-formed payload shows up here.
    pub fn content_digest(&self) -> ContentHash {
        let mut sorted: Vec<&Arc<DesignData>> = self.designs.iter().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let mut kb = KeyBuilder::new("rtlt.suite.digest.v2").u64(sorted.len() as u64);
        for d in sorted {
            kb = kb.str(&d.name).key(&d.prepare_key);
            kb = kb.u64(d.labels_at.len() as u64);
            for &l in d.labels_at.iter() {
                kb = kb.f64(l);
            }
            kb = kb
                .f64(d.clock)
                .f64(d.setup)
                .f64(d.wns)
                .f64(d.tns)
                .f64(d.area)
                .f64(d.power)
                .codec(&d.ast_feats)
                .codec(&d.variant_data)
                .u64(d.signal_names.len() as u64);
        }
        kb.finish()
    }

    /// Deterministic k-fold partition of design names (round-robin after a
    /// stable ordering). Names are shared, not copied.
    pub fn folds(&self, k: usize) -> Vec<Vec<Arc<str>>> {
        let mut names: Vec<Arc<str>> = self.designs.iter().map(|d| d.name.clone()).collect();
        names.sort();
        let mut folds = vec![Vec::new(); k.max(1)];
        for (i, n) in names.into_iter().enumerate() {
            folds[i % k.max(1)].push(n);
        }
        folds
    }
}

/// Configuration of one work-stealing fleet worker (see
/// [`prepare_stolen`]).
#[derive(Debug, Clone)]
pub struct StealConfig {
    /// Stable worker identity (the server's lease bookkeeping keys on it).
    pub worker: String,
    /// Wait between lease retries while other workers still hold leases —
    /// the cadence at which an expired lease gets stolen.
    pub poll: Duration,
    /// Artificial delay after every granted lease, before preparing.
    /// [`Duration::ZERO`] in production; CI's fleet-steal smoke sets it on
    /// one worker to force a deterministic lease expiry (the "handicapped
    /// worker" whose design the fast worker must steal).
    pub stall_after_lease: Duration,
    /// Static `(index, count)` shard this worker degrades to when the
    /// server vanishes mid-run; `None` degrades to the full design list.
    pub fallback_shard: Option<(usize, usize)>,
    /// Expected prepare cost per design, seconds (e.g. the
    /// `design_seconds` of a prior `BENCH_runtime.json`). Designs without
    /// a prior are ordered by source length — a crude but deterministic
    /// size proxy.
    pub cost_priors: Vec<(String, f64)>,
}

impl StealConfig {
    /// A worker with sane production defaults: 100 ms lease polling, no
    /// stall, full-list fallback, no priors.
    pub fn new(worker: impl Into<String>) -> StealConfig {
        StealConfig {
            worker: worker.into(),
            poll: Duration::from_millis(100),
            stall_after_lease: Duration::ZERO,
            fallback_shard: None,
            cost_priors: Vec::new(),
        }
    }
}

/// Outcome of one worker's [`prepare_stolen`] run.
#[derive(Debug)]
pub struct StolenPrepare {
    /// The designs this worker prepared (lease order).
    pub set: DesignSet,
    /// Observed prepare wall time per design this worker prepared.
    pub design_seconds: Vec<(String, f64)>,
    /// Leases this worker was granted (= designs it prepared, unless the
    /// server died mid-run).
    pub leases: u64,
    /// Whether the server vanished mid-run and the worker degraded to its
    /// static-shard fallback for the remainder.
    pub fell_back: bool,
}

/// Work-stealing fleet preparation: instead of a static `I/N` split, this
/// worker leases design names one at a time from the `fleet` server's
/// [`rtlt_store::Planner`], prepares each through the `store`, and reports
/// the observed cost back. The server hands out pending designs
/// longest-expected-first and re-queues any lease whose worker goes silent
/// past the lease deadline — so a slow worker's design is *stolen* by a
/// faster one instead of gating the merge.
///
/// Degradation mirrors the rest of the store: if the server is
/// unreachable before any lease is granted the function returns `None`
/// and the caller runs the static-shard path; if it vanishes mid-run the
/// worker keeps what it prepared and falls back to the unprepared
/// remainder of [`StealConfig::fallback_shard`] (or of the full list) —
/// either way every artifact is byte-identical to a cold prepare, because
/// the planner only ever decides *who* computes, never *what*.
///
/// # Panics
///
/// Panics if a leased design fails to compile (matching
/// [`DesignSet::prepare_suite_sharded`]: the suite generator and frontend
/// are tested together). The unfinished lease then expires on the server
/// and re-queues — a crashing worker is just a silent one.
/// Content epoch of one fleet run: a stable hash over every design's
/// featurize key (so it moves with any source, seed, or effort change).
/// Workers of one run derive identical epochs from identical inputs; a
/// long-lived `rtlt-stored` uses the epoch to tell a *new* run (reset the
/// plan) from another worker of the *current* one (idempotent union).
pub fn steal_plan_epoch(sources: &[(String, String)], cfg: &TimerConfig) -> u64 {
    let mut keyed: Vec<(String, ContentHash)> = sources
        .iter()
        .map(|(name, src)| (name.clone(), PrepareKeys::derive(name, src, cfg).featurize))
        .collect();
    keyed.sort();
    let mut kb = KeyBuilder::new("rtlt.steal.epoch.v1").u64(keyed.len() as u64);
    for (name, key) in &keyed {
        kb = kb.str(name).key(key);
    }
    let h = kb.finish();
    u64::from_le_bytes(h.0[..8].try_into().expect("8 bytes"))
}

pub fn prepare_stolen(
    sources: &[(String, String)],
    cfg: &TimerConfig,
    store: &Store,
    fleet: &RemoteTier,
    steal: &StealConfig,
) -> Option<StolenPrepare> {
    let by_name: HashMap<&str, &str> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let priors: HashMap<&str, f64> = steal
        .cost_priors
        .iter()
        .map(|(n, c)| (n.as_str(), *c))
        .collect();
    let plan: Vec<(String, f64)> = sources
        .iter()
        .map(|(name, src)| {
            let cost = priors
                .get(name.as_str())
                .copied()
                // No prior: order by source size, scaled well below any
                // real observation so measured costs dominate mixed plans.
                .unwrap_or(src.len() as f64 * 1e-9);
            (name.clone(), cost)
        })
        .collect();
    if !fleet.plan_remote(steal_plan_epoch(sources, cfg), &plan) {
        return None; // server unreachable/too old: static path
    }

    let mut prepared: Vec<Arc<DesignData>> = Vec::new();
    let mut done_names: BTreeSet<String> = BTreeSet::new();
    let mut design_seconds: Vec<(String, f64)> = Vec::new();
    let mut leases = 0u64;
    let mut fell_back = false;
    let mut server_lost = false;
    loop {
        // Collect up to `cfg.threads` grants per round, so one worker's
        // in-design preparation parallelism matches the static shard path
        // instead of serializing one design per lease exchange.
        let mut batch: Vec<(String, String)> = Vec::new();
        let mut drained_done = false;
        while batch.len() < cfg.threads.max(1) {
            match fleet.lease_remote(&steal.worker) {
                Some(LeaseGrant::Granted { design }) => {
                    leases += 1;
                    if !steal.stall_after_lease.is_zero() {
                        std::thread::sleep(steal.stall_after_lease);
                    }
                    if done_names.contains(&design) {
                        // Re-granted a design we already prepared — its
                        // earlier DONE report was lost in transit and the
                        // lease expired. Re-report instead of preparing a
                        // duplicate into the set.
                        fleet.report_remote(&steal.worker, &design, 0.0, true);
                        continue;
                    }
                    if batch.iter().any(|(name, _)| name == &design) {
                        // Already collected this round: our own lease
                        // expired mid-collection (e.g. a stall straddling
                        // the deadline) and the planner handed it back to
                        // us. One copy in the batch is enough.
                        continue;
                    }
                    match by_name.get(design.as_str()) {
                        Some(src) => batch.push((design, (*src).to_owned())),
                        None => {
                            // The server knows a design we do not
                            // (version skew): hand it back for a worker
                            // that does.
                            fleet.report_remote(&steal.worker, &design, 0.0, false);
                        }
                    }
                }
                Some(LeaseGrant::Drained { outstanding: 0 }) => {
                    drained_done = true;
                    break;
                }
                Some(LeaseGrant::Drained { .. }) => break,
                None => {
                    server_lost = true;
                    break;
                }
            }
        }
        if !batch.is_empty() {
            let (set, timed) = DesignSet::prepare_named_timed_with(&batch, cfg, store)
                .unwrap_or_else(|e| panic!("{e}"));
            for (design, seconds) in &timed {
                if !server_lost {
                    fleet.report_remote(&steal.worker, design, *seconds, true);
                }
                done_names.insert(design.clone());
            }
            prepared.extend(set.designs.iter().cloned());
            design_seconds.extend(timed);
        }
        if server_lost {
            // Mid-run server loss: keep what we have, prepare the
            // unprepared remainder of our static fallback share, and
            // stop pretending to coordinate.
            fell_back = true;
            let remainder: Vec<(String, String)> = match steal.fallback_shard {
                Some((index, count)) => DesignSet::shard_sources(sources, index, count),
                None => sources.to_vec(),
            }
            .into_iter()
            .filter(|(name, _)| !done_names.contains(name))
            .collect();
            let (set, timed) = DesignSet::prepare_named_timed_with(&remainder, cfg, store)
                .unwrap_or_else(|e| panic!("{e}"));
            prepared.extend(set.designs.iter().cloned());
            design_seconds.extend(timed);
            break;
        }
        if drained_done {
            break;
        }
        if batch.is_empty() {
            // Others still hold leases: wait one poll interval for a
            // deadline expiry to make something stealable.
            std::thread::sleep(steal.poll);
        }
    }
    Some(StolenPrepare {
        set: DesignSet { designs: prepared },
        design_seconds,
        leases,
        fell_back,
    })
}

/// The fitted RTL-Timer model stack.
#[derive(Debug)]
pub struct RtlTimer {
    pub(crate) bitwise: Vec<BitwiseModel>,
    pub(crate) ensemble: EnsembleModel,
    pub(crate) signal: SignalModels,
    pub(crate) design_timing: DesignTimingModel,
}

impl RtlTimer {
    /// Fits the full stack on the given training designs.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &[&DesignData], cfg: &TimerConfig) -> RtlTimer {
        assert!(!train.is_empty(), "RtlTimer::fit needs at least one design");
        // 1. Four per-representation bit-wise models (grouped max-loss).
        let bitwise: Vec<BitwiseModel> = (0..4)
            .map(|v| {
                let corpus = BitwiseCorpus {
                    designs: train
                        .iter()
                        .map(|d| (&d.variant_data[v], &d.labels_at[..]))
                        .collect(),
                };
                BitwiseModel::fit(BitModelKind::TreeMax, &corpus, cfg.seed ^ (v as u64))
            })
            .collect();

        // 2. Ensemble meta-model over the per-variant predictions.
        let mut scratch = PredictScratch::default();
        let mut meta_feat = FeatureMatrix::new(crate::ensemble::META_FEATURE_NAMES.len());
        let mut meta_label = Vec::new();
        let mut per_design_bits: Vec<Vec<f64>> = Vec::new();
        for d in train {
            let preds: Vec<Vec<f64>> = (0..4)
                .map(|v| {
                    bitwise[v].predict_endpoints_with(
                        &d.variant_data[v],
                        &mut scratch.paths,
                        &mut scratch.path_preds,
                    )
                })
                .collect();
            meta_rows_into(&preds, &d.variant_data[0], &mut scratch.meta);
            for (e, row) in scratch.meta.rows().enumerate() {
                if d.labels_at[e].is_finite() {
                    meta_feat.push_row(row);
                    meta_label.push(d.labels_at[e]);
                }
            }
            per_design_bits.push(preds.into_iter().next().expect("sog preds"));
        }
        let ensemble = EnsembleModel::fit(&meta_feat, &meta_label, cfg.seed ^ 0xE);

        // 3. Signal-level models on the ensembled bit predictions.
        let mut per_design_signal = Vec::new();
        let mut design_rows_v = FeatureMatrix::new(crate::design::DESIGN_ROW_NAMES.len());
        let mut wns_labels = Vec::new();
        let mut tns_labels = Vec::new();
        let mut ep_counts = Vec::new();
        for d in train {
            let bits = Self::ensemble_bits(&bitwise, &ensemble, d);
            let srows = signal_rows(
                &bits,
                &d.variant_data[0].endpoint_sta_at,
                d.signals(),
                &d.variant_data[0].design_feats,
            );
            let slabels = d.signal_labels();
            per_design_signal.push((srows, slabels));

            design_rows_v.push_row(&design_row(
                &bits,
                d.clock,
                d.setup,
                &d.variant_data[0].design_feats,
            ));
            wns_labels.push(d.wns);
            tns_labels.push(d.tns);
            ep_counts.push(d.labels_at.iter().filter(|l| l.is_finite()).count() as f64);
        }
        let signal = SignalModels::fit(&per_design_signal, cfg.seed ^ 0x5);
        let design_timing = DesignTimingModel::fit(
            &design_rows_v,
            &wns_labels,
            &tns_labels,
            &ep_counts,
            cfg.seed ^ 0xD,
        );

        RtlTimer {
            bitwise,
            ensemble,
            signal,
            design_timing,
        }
    }

    /// [`RtlTimer::fit`] through the store: the fitted stack is memoized
    /// under `H(sorted train prepare_keys, cfg.seed)` (see
    /// [`crate::cache::model_key`]), so re-running a fold — or re-opening
    /// an incremental annotation session — with unchanged training
    /// preparations deserializes the GBDT ensembles instead of refitting.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit_with(store: &Store, train: &[&DesignData], cfg: &TimerConfig) -> Arc<RtlTimer> {
        let key = model_key(train, cfg);
        store.get_or_compute(stage::MODEL, key, || Self::fit(train, cfg))
    }

    fn ensemble_bits(
        bitwise: &[BitwiseModel],
        ensemble: &EnsembleModel,
        d: &DesignData,
    ) -> Vec<f64> {
        let preds: Vec<Vec<f64>> = (0..4)
            .map(|v| bitwise[v].predict_endpoints(&d.variant_data[v]))
            .collect();
        let rows = meta_rows(&preds, &d.variant_data[0]);
        ensemble.predict(&rows)
    }

    /// Per-variant bit-wise predictions (diagnostics / Table 5).
    pub fn variant_bit_predictions(&self, d: &DesignData) -> Vec<Vec<f64>> {
        (0..4)
            .map(|v| self.bitwise[v].predict_endpoints(&d.variant_data[v]))
            .collect()
    }

    /// Runs the full prediction stack on one (unseen) design.
    pub fn predict(&self, d: &DesignData) -> Prediction {
        let mut scratch = PredictScratch::default();
        self.predict_with(d, &mut scratch)
    }

    /// [`RtlTimer::predict`] with caller-owned scratch, so per-design
    /// prediction loops (cross-validation folds, table6 what-if sweeps)
    /// reuse one set of feature-matrix buffers instead of reallocating
    /// them per call.
    pub fn predict_with(&self, d: &DesignData, scratch: &mut PredictScratch) -> Prediction {
        let trace = predict_trace_enabled();
        let t0 = std::time::Instant::now();
        let variant_bit_preds: Vec<Vec<f64>> = (0..4)
            .map(|v| {
                self.bitwise[v].predict_endpoints_with(
                    &d.variant_data[v],
                    &mut scratch.paths,
                    &mut scratch.path_preds,
                )
            })
            .collect();
        let t_bit = t0.elapsed();
        let t0 = std::time::Instant::now();
        meta_rows_into(&variant_bit_preds, &d.variant_data[0], &mut scratch.meta);
        let bit_pred = self.ensemble.predict(&scratch.meta);
        let t_ens = t0.elapsed();

        let t0 = std::time::Instant::now();
        signal_rows_into(
            &bit_pred,
            &d.variant_data[0].endpoint_sta_at,
            d.signals(),
            &d.variant_data[0].design_feats,
            &mut scratch.signals,
        );
        let (signal_pred, signal_rank_score) = self.signal.predict(&scratch.signals);
        let t_sig = t0.elapsed();
        if trace {
            eprintln!(
                "[predict-trace] {}: bitwise {:.2}ms ensemble {:.2}ms signal {:.2}ms (rows {})",
                d.name,
                t_bit.as_secs_f64() * 1e3,
                t_ens.as_secs_f64() * 1e3,
                t_sig.as_secs_f64() * 1e3,
                scratch.paths.n_rows(),
            );
        }

        let drow = design_row(&bit_pred, d.clock, d.setup, &d.variant_data[0].design_feats);
        let n_eps = d.labels_at.iter().filter(|l| l.is_finite()).count() as f64;
        let (wns_pred, tns_pred) = self.design_timing.predict(&drow, n_eps);
        let (wns_direct, tns_direct) = direct_wns_tns(&bit_pred, d.clock, d.setup);

        Prediction {
            design: d.name.clone(),
            bit_pred,
            bit_label: d.labels_at.clone(),
            variant_bit_preds,
            signal_pred,
            signal_rank_score,
            signal_label: d.signal_labels(),
            signal_names: d.signal_names.clone(),
            wns_pred,
            tns_pred,
            wns_direct,
            tns_direct,
            wns_label: d.wns,
            tns_label: d.tns,
            clock: d.clock,
            setup: d.setup,
        }
    }
}

/// Whether [`RtlTimer::predict_with`] prints a per-stage wall-time
/// breakdown to stderr (`RTLT_PREDICT_TRACE=1`) — the profiling hook for
/// bisecting inference regressions between the bitwise, ensemble and
/// signal stages.
fn predict_trace_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("RTLT_PREDICT_TRACE")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Reusable buffers for [`RtlTimer::predict_with`]: one path-row matrix,
/// one path-prediction vector, one meta-row matrix and one signal-row
/// matrix, all retained across designs.
#[derive(Debug, Default)]
pub struct PredictScratch {
    pub(crate) paths: FeatureMatrix,
    pub(crate) path_preds: Vec<f64>,
    pub(crate) meta: FeatureMatrix,
    pub(crate) signals: FeatureMatrix,
}

/// Prediction output for one design, bundled with labels for evaluation.
///
/// Label and name vectors are `Arc`-shared with the [`DesignData`] they
/// came from — constructing a `Prediction` copies none of them.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Design name.
    pub design: Arc<str>,
    /// Ensembled bit-wise arrival predictions.
    pub bit_pred: Vec<f64>,
    /// Ground-truth bit-wise arrivals (shared with the design).
    pub bit_label: Arc<[f64]>,
    /// Per-variant bit-wise predictions (SOG, AIG, AIMG, XAG).
    pub variant_bit_preds: Vec<Vec<f64>>,
    /// Signal-wise max-arrival regression predictions.
    pub signal_pred: Vec<f64>,
    /// Signal-wise LTR criticality scores (higher = more critical).
    pub signal_rank_score: Vec<f64>,
    /// Ground-truth signal max arrivals.
    pub signal_label: Vec<f64>,
    /// Signal names (aligned with the signal vectors, shared with the
    /// design).
    pub signal_names: Arc<[String]>,
    /// Model-predicted WNS.
    pub wns_pred: f64,
    /// Model-predicted TNS.
    pub tns_pred: f64,
    /// Direct WNS from predicted slacks.
    pub wns_direct: f64,
    /// Direct TNS from predicted slacks.
    pub tns_direct: f64,
    /// Ground-truth WNS.
    pub wns_label: f64,
    /// Ground-truth TNS.
    pub tns_label: f64,
    /// Clock period (ns).
    pub clock: f64,
    /// DFF setup (ns).
    pub setup: f64,
}

impl Prediction {
    fn finite_pairs(pred: &[f64], label: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut p = Vec::new();
        let mut l = Vec::new();
        for (&a, &b) in pred.iter().zip(label) {
            if a.is_finite() && b.is_finite() {
                p.push(a);
                l.push(b);
            }
        }
        (p, l)
    }

    /// Pearson R of the bit-wise predictions.
    pub fn bit_r(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.bit_pred, &self.bit_label);
        metrics::pearson(&p, &l)
    }

    /// MAPE (%) of the bit-wise predictions.
    pub fn bit_mape(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.bit_pred, &self.bit_label);
        metrics::mape(&p, &l)
    }

    /// COVR (%) of bit-wise criticality groups.
    pub fn bit_covr(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.bit_pred, &self.bit_label);
        metrics::covr(&p, &l)
    }

    /// Pearson R of one representation's bit predictions.
    pub fn variant_bit_r(&self, v: usize) -> f64 {
        let (p, l) = Self::finite_pairs(&self.variant_bit_preds[v], &self.bit_label);
        metrics::pearson(&p, &l)
    }

    /// Pearson R of the signal-wise regression.
    pub fn signal_r(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_pred, &self.signal_label);
        metrics::pearson(&p, &l)
    }

    /// MAPE (%) of the signal-wise regression.
    pub fn signal_mape(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_pred, &self.signal_label);
        metrics::mape(&p, &l)
    }

    /// COVR (%) using the regression predictions for grouping.
    pub fn signal_covr_regression(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_pred, &self.signal_label);
        metrics::covr(&p, &l)
    }

    /// COVR (%) using the LTR scores for grouping (the paper's headline
    /// ranking metric).
    pub fn signal_covr_ranking(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_rank_score, &self.signal_label);
        metrics::covr(&p, &l)
    }

    /// Predicted signal slack (ns): `clock − setup − predicted arrival`.
    pub fn signal_slack(&self) -> Vec<f64> {
        self.signal_pred
            .iter()
            .map(|at| self.clock - self.setup - at)
            .collect()
    }
}

/// Runs k-fold cross-validation (train/test splits are disjoint by design,
/// as in the paper) and returns one [`Prediction`] per design.
pub fn cross_validate(set: &DesignSet, k: usize, cfg: &TimerConfig) -> Vec<Prediction> {
    cross_validate_with(set, k, cfg, &Store::disabled())
}

/// [`cross_validate`] through a shared artifact store: every fold's fitted
/// model is memoized (see [`RtlTimer::fit_with`]), so a warm second run of
/// any cross-validating bench binary skips model fitting entirely.
pub fn cross_validate_with(
    set: &DesignSet,
    k: usize,
    cfg: &TimerConfig,
    store: &Store,
) -> Vec<Prediction> {
    let folds = set.folds(k);
    let results: Vec<Vec<Prediction>> = rtlt_runtime::par_map(cfg.threads, &folds, |fold| {
        let names: Vec<&str> = fold.iter().map(|s| &**s).collect();
        let (train, test) = set.split(&names);
        if test.is_empty() {
            return Vec::new();
        }
        let model = RtlTimer::fit_with(store, &train, cfg);
        let mut scratch = PredictScratch::default();
        test.iter()
            .map(|d| model.predict_with(d, &mut scratch))
            .collect()
    });
    let mut out: Vec<Prediction> = results.into_iter().flatten().collect();
    out.sort_by(|a, b| a.design.cmp(&b.design));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sources() -> Vec<(String, String)> {
        let mk = |name: &str, w: u32, extra: &str| {
            (
                name.to_owned(),
                format!(
                    "module {name}(input clk, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
                       reg [{x}:0] r;
                       reg [{x}:0] s;
                       always @(posedge clk) begin
                         r <= a + b;
                         s <= s ^ (r {extra});
                       end
                       assign q = s;
                     endmodule",
                    x = w - 1,
                ),
            )
        };
        vec![
            mk("d0", 8, "+ a"),
            mk("d1", 10, "- b"),
            mk("d2", 12, "& a"),
            mk("d3", 9, "| b"),
        ]
    }

    #[test]
    fn prepare_builds_labels_and_features() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let (name, src) = &tiny_sources()[0];
        let d = DesignData::prepare(name, src, &cfg).unwrap();
        assert_eq!(d.variant_data.len(), 4);
        assert_eq!(d.labels_at.len(), d.sog.regs().len());
        assert!(d.labels_at.iter().all(|l| l.is_finite()));
        assert!(d.clock > 0.0 && d.area > 0.0);
        assert_eq!(d.signal_names.len(), d.signals().len());
    }

    #[test]
    fn default_config_has_workers() {
        assert!(TimerConfig::default().threads >= 1);
    }

    #[test]
    fn staged_preparation_matches_monolithic() {
        let cfg = TimerConfig {
            threads: 1,
            ..Default::default()
        };
        let (name, src) = &tiny_sources()[1];
        let stages = PrepareStages::new(&cfg);
        let staged = stages
            .featurize(stages.label(stages.blast(stages.compile(name, src).expect("compiles"))));
        let monolithic = DesignData::prepare(name, src, &cfg).unwrap();
        assert_eq!(staged.labels_at, monolithic.labels_at);
        assert_eq!(staged.wns, monolithic.wns);
        assert_eq!(staged.clock, monolithic.clock);
        assert_eq!(staged.ast_feats, monolithic.ast_feats);
        assert_eq!(staged.variant_data.len(), monolithic.variant_data.len());
        assert_eq!(staged.prepare_key, monolithic.prepare_key);
    }

    #[test]
    fn cached_preparation_matches_uncached() {
        let cfg = TimerConfig {
            threads: 1,
            ..Default::default()
        };
        let (name, src) = &tiny_sources()[2];
        let store = Store::in_memory();
        let stages = PrepareStages::new(&cfg);
        let cached = stages.run_with(&store, name, src).expect("compiles");
        let plain = DesignData::prepare(name, src, &cfg).unwrap();
        assert_eq!(cached.labels_at, plain.labels_at);
        assert_eq!(cached.wns, plain.wns);
        assert_eq!(cached.clock, plain.clock);
        assert_eq!(cached.prepare_key, plain.prepare_key);

        // Second run answers straight from the featurize namespace.
        let again = stages.run_with(&store, name, src).expect("compiles");
        assert!(Arc::ptr_eq(&cached, &again));
        let s = store.stats();
        assert_eq!(s.namespace(stage::FEATURIZE).mem_hits, 1);
        assert_eq!(s.namespace(stage::FEATURIZE).misses, 1);
    }

    #[test]
    fn warm_store_prepares_suite_without_misses() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let sources = tiny_sources();
        let store = Store::in_memory();
        let cold = DesignSet::prepare_named_with(&sources, &cfg, &store).unwrap();
        let cold_misses = store.stats().aggregate(stage::PREPARE).misses;
        let warm = DesignSet::prepare_named_with(&sources, &cfg, &store).unwrap();
        let s = store.stats().aggregate(stage::PREPARE);
        assert_eq!(s.misses, cold_misses, "warm run added no misses");
        assert_eq!(
            store.stats().namespace(stage::FEATURIZE).mem_hits,
            sources.len() as u64
        );
        for (a, b) in cold.designs().iter().zip(warm.designs()) {
            assert!(Arc::ptr_eq(a, b), "warm run shares the cold artifacts");
        }
    }

    #[test]
    fn prepare_named_surfaces_failing_design_by_name() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let mut sources = tiny_sources();
        sources.insert(
            1,
            (
                "broken".to_owned(),
                "module broken(input clk; endmodule".to_owned(),
            ),
        );
        let err = DesignSet::prepare_named(&sources, &cfg).unwrap_err();
        assert_eq!(err.design, "broken");
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn fit_predict_round_trip() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let set = DesignSet::prepare_named_or_panic(&tiny_sources(), &cfg);
        let (train, test) = set.split(&["d3"]);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        let model = RtlTimer::fit(&train, &cfg);
        let pred = model.predict(test[0]);
        assert_eq!(pred.bit_pred.len(), test[0].labels_at.len());
        assert_eq!(pred.signal_pred.len(), test[0].signals().len());
        assert!(pred.bit_r().is_finite());
        // Cross-design generalization on closely-related designs should be
        // clearly positive.
        assert!(pred.bit_r() > 0.3, "bit R = {}", pred.bit_r());
        assert!(pred.wns_pred <= 0.0 && pred.tns_pred <= pred.wns_pred + 1e-12);
    }

    #[test]
    fn cache_hits_carry_the_live_source() {
        let cfg = TimerConfig {
            threads: 1,
            ..Default::default()
        };
        let src = "module leaf(input clk, input [3:0] a, output [3:0] y);
  reg [3:0] r;
  always @(posedge clk) r <= a + 4'd1;
  assign y = r;
endmodule
module top(input clk, input [3:0] x, output [3:0] z);
  wire [3:0] t;
  leaf u0 (.clk(clk), .a(x), .y(t));
  reg [3:0] out_r;
  always @(posedge clk) out_r <= t;
  assign z = out_r;
endmodule";
        let store = Store::in_memory();
        let stages = PrepareStages::new(&cfg);
        let a = stages.run_with(&store, "top", src).expect("compiles");

        // Appending a module below the top's cone hits the same featurize
        // key — but the returned artifact must carry the *new* source, or
        // annotation would silently emit the old file.
        let appended =
            format!("{src}\nmodule unused(input a, output y);\n  assign y = a;\nendmodule\n");
        let b = stages.run_with(&store, "top", &appended).expect("compiles");
        assert_eq!(a.prepare_key, b.prepare_key, "cone key unchanged");
        assert_eq!(store.stats().namespace(stage::FEATURIZE).mem_hits, 1);
        assert_eq!(b.source, appended, "cache hit rebinds the live source");
        assert_eq!(a.labels_at, b.labels_at);
        let blasted = stages
            .blasted_with(&store, "top", &appended)
            .expect("compiles");
        assert_eq!(blasted.compiled.source, appended);

        // Moving the cone (a leading line) shifts declaration lines and
        // must be a different preparation, not a patched hit.
        let shifted = format!("// header\n{src}");
        let c = stages.run_with(&store, "top", &shifted).expect("compiles");
        assert_ne!(a.prepare_key, c.prepare_key);
        let decl = |d: &DesignData| d.signals()[0].decl_line;
        assert_eq!(decl(&c), decl(&a) + 1);
    }

    #[test]
    fn fit_with_memoizes_and_round_trips_the_model_stack() {
        use rtlt_store::Codec;
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let set = DesignSet::prepare_named_or_panic(&tiny_sources(), &cfg);
        let (train, test) = set.split(&["d3"]);
        let store = Store::in_memory();
        let m1 = RtlTimer::fit_with(&store, &train, &cfg);
        let m2 = RtlTimer::fit_with(&store, &train, &cfg);
        assert!(Arc::ptr_eq(&m1, &m2), "second fit served from the store");
        let s = store.stats().namespace(stage::MODEL);
        assert_eq!((s.misses, s.mem_hits), (1, 1));

        // A decoded stack predicts bit-identically (the disk-tier path).
        let decoded = RtlTimer::from_bytes(&m1.to_bytes()).expect("model round trip");
        let a = m1.predict(test[0]);
        let b = decoded.predict(test[0]);
        assert_eq!(a.bit_pred, b.bit_pred);
        assert_eq!(a.signal_pred, b.signal_pred);
        assert_eq!(a.signal_rank_score, b.signal_rank_score);
        assert_eq!((a.wns_pred, a.tns_pred), (b.wns_pred, b.tns_pred));

        // Different train sets / seeds key differently; order does not.
        let (train_b, _) = set.split(&["d0"]);
        assert_ne!(
            crate::cache::model_key(&train, &cfg),
            crate::cache::model_key(&train_b, &cfg)
        );
        let mut rev = train.clone();
        rev.reverse();
        assert_eq!(
            crate::cache::model_key(&train, &cfg),
            crate::cache::model_key(&rev, &cfg)
        );
        let other_seed = TimerConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        assert_ne!(
            crate::cache::model_key(&train, &cfg),
            crate::cache::model_key(&train, &other_seed)
        );
    }

    #[test]
    fn shard_sources_partition_for_any_count() {
        let sources = tiny_sources();
        for count in 1..=6 {
            let shards: Vec<_> = (0..count)
                .map(|i| DesignSet::shard_sources(&sources, i, count))
                .collect();
            // Every design lands in exactly one shard.
            let total: usize = shards.iter().map(|s| s.len()).sum();
            assert_eq!(total, sources.len(), "count {count}");
            let mut seen: Vec<&str> = shards
                .iter()
                .flatten()
                .map(|(name, _)| name.as_str())
                .collect();
            seen.sort_unstable();
            let mut expect: Vec<&str> = sources.iter().map(|(n, _)| n.as_str()).collect();
            expect.sort_unstable();
            assert_eq!(seen, expect, "count {count}");
            // And the assignment is the pure function it claims to be.
            for (i, shard) in shards.iter().enumerate() {
                for (name, _) in shard {
                    assert_eq!(shard_of(name, count), i);
                }
            }
        }
        // Degenerate count behaves like 1.
        assert_eq!(shard_of("d0", 0), 0);
    }

    #[test]
    fn content_digest_is_order_independent_and_content_sensitive() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let sources = tiny_sources();
        let set = DesignSet::prepare_named_or_panic(&sources[..2], &cfg);
        let mut reversed_sources = sources[..2].to_vec();
        reversed_sources.reverse();
        let reversed = DesignSet::prepare_named_or_panic(&reversed_sources, &cfg);
        assert_eq!(set.content_digest(), reversed.content_digest());
        // A different design subset digests differently.
        let other = DesignSet::prepare_named_or_panic(&sources[..3], &cfg);
        assert_ne!(set.content_digest(), other.content_digest());
    }

    #[test]
    fn folds_partition_all_designs() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let set = DesignSet::prepare_named_or_panic(&tiny_sources()[..2], &cfg);
        let folds = set.folds(2);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 2);
    }
}
