//! End-to-end pipeline: design preparation as named dataflow stages
//! ([`PrepareStages`]: compile → blast → label via synthesis → featurize),
//! model fitting, prediction, cross-validation.
//!
//! All CPU parallelism (suite preparation, cross-validation folds) runs on
//! the shared [`rtlt_runtime`] work-queue executor.

use crate::bitwise::{BitModelKind, BitwiseCorpus, BitwiseModel};
use crate::dataset::{build_variant_data, VariantData};
use crate::design::{design_row, direct_wns_tns, DesignTimingModel};
use crate::ensemble::{meta_rows, EnsembleModel};
use crate::metrics;
use crate::signal::{signal_labels, signal_rows, SignalModels};
use rtlt_bog::{blast, Bog, BogVariant, SignalInfo};
use rtlt_liberty::{CellFunc, Drive, Library};
use rtlt_synth::{synthesize, SynthOptions};
use rtlt_verilog::VerilogError;

/// Global pipeline configuration.
#[derive(Debug, Clone)]
pub struct TimerConfig {
    /// Master seed (per-design seeds derive from it and the design name).
    pub seed: u64,
    /// Synthesis effort for label generation.
    pub synth_effort: f64,
    /// Worker threads for suite preparation / cross-validation.
    pub threads: usize,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            seed: 2024,
            // Bounded default effort: the label flow leaves realistic
            // residual violations (Table 6 operates on these).
            synth_effort: 0.6,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Failure to prepare one design of a set: the design's name plus the
/// underlying frontend error.
#[derive(Debug)]
pub struct PrepareError {
    /// Name of the design that failed to prepare.
    pub design: String,
    /// The frontend error that caused the failure.
    pub source: VerilogError,
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.design, self.source)
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

fn design_seed(master: u64, name: &str) -> u64 {
    let mut h = master ^ 0x9e3779b97f4a7c15;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fully prepared design: featurized representations plus ground-truth
/// labels from the synthesis simulator.
#[derive(Debug)]
pub struct DesignData {
    /// Design name (top module).
    pub name: String,
    /// Original Verilog source.
    pub source: String,
    /// SOG representation (kept for annotation/optimization/baselines).
    pub sog: Bog,
    /// Path datasets for SOG, AIG, AIMG, XAG (in [`BogVariant::ALL`] order).
    pub variant_data: Vec<VariantData>,
    /// Ground-truth arrival time per register (bit) endpoint.
    pub labels_at: Vec<f64>,
    /// Clock period used by the label flow (ns).
    pub clock: f64,
    /// DFF setup time (ns).
    pub setup: f64,
    /// Ground-truth design WNS (ns).
    pub wns: f64,
    /// Ground-truth design TNS (ns).
    pub tns: f64,
    /// Ground-truth area.
    pub area: f64,
    /// Ground-truth power.
    pub power: f64,
    /// AST features (ICCAD'22-style baseline input).
    pub ast_feats: Vec<f64>,
    /// Per-design seed (reused by optimization flows).
    pub synth_seed: u64,
    /// Synthesis effort used by the label flow (optimization flows scale
    /// from this).
    pub synth_effort: f64,
}

/// Output of [`PrepareStages::compile`]: frontend artifacts of one design.
#[derive(Debug)]
pub struct CompiledDesign {
    /// Design name (top module).
    pub name: String,
    /// Original Verilog source.
    pub source: String,
    /// AST features (ICCAD'22-style baseline input).
    pub ast_feats: Vec<f64>,
    /// Elaborated word-level netlist.
    pub netlist: rtlt_verilog::rtlir::Netlist,
}

/// Output of [`PrepareStages::blast`]: the design plus its SOG.
#[derive(Debug)]
pub struct BlastedDesign {
    /// Frontend artifacts.
    pub compiled: CompiledDesign,
    /// Bit-blasted SOG representation.
    pub sog: Bog,
}

/// Output of [`PrepareStages::label`]: the design plus ground-truth labels
/// from the synthesis simulator.
#[derive(Debug)]
pub struct LabeledDesign {
    /// Blasted design.
    pub blasted: BlastedDesign,
    /// Synthesis-flow outcome (arrival labels, WNS/TNS, area, power).
    pub synth: rtlt_synth::SynthResult,
    /// Per-design seed used by the label flow.
    pub synth_seed: u64,
    /// DFF setup time (ns) of the label library.
    pub setup: f64,
}

/// The design-preparation dataflow, split into named, individually-callable
/// stages: `compile → blast → label → featurize`.
///
/// [`DesignData::prepare`] runs all four back to back; calling the stages
/// separately lets a driver memoize, distribute, or batch each boundary
/// independently (e.g. cache [`BlastedDesign`]s across label-effort sweeps,
/// or ship [`LabeledDesign`]s to a remote featurizer).
#[derive(Debug, Clone, Copy)]
pub struct PrepareStages<'a> {
    cfg: &'a TimerConfig,
}

impl<'a> PrepareStages<'a> {
    /// Stage runner bound to one pipeline configuration.
    pub fn new(cfg: &'a TimerConfig) -> PrepareStages<'a> {
        PrepareStages { cfg }
    }

    /// **Stage 1 — compile**: parse, extract AST features, elaborate.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (parse/elaborate failures).
    pub fn compile(&self, name: &str, source: &str) -> Result<CompiledDesign, VerilogError> {
        let file = rtlt_verilog::parse(source)?;
        let ast_feats = rtlt_verilog::astfeat::extract(&file).to_vec();
        let netlist = rtlt_verilog::elaborate(&file, name)?;
        Ok(CompiledDesign {
            name: name.to_owned(),
            source: source.to_owned(),
            ast_feats,
            netlist,
        })
    }

    /// **Stage 2 — blast**: lower the word-level netlist to the bit-level
    /// SOG whose register bits are the timing endpoints.
    pub fn blast(&self, compiled: CompiledDesign) -> BlastedDesign {
        let sog = blast(&compiled.netlist);
        BlastedDesign { compiled, sog }
    }

    /// **Stage 3 — label**: run the ground-truth synthesis flow against the
    /// NanGate45-like library.
    pub fn label(&self, blasted: BlastedDesign) -> LabeledDesign {
        let lib = Library::nangate45_like();
        let seed = design_seed(self.cfg.seed, &blasted.compiled.name);
        let synth = synthesize(
            &blasted.sog,
            &lib,
            &SynthOptions {
                seed,
                effort: self.cfg.synth_effort,
                ..Default::default()
            },
        );
        let setup = lib.cell(CellFunc::Dff, Drive::X1).seq.expect("dff").setup;
        LabeledDesign {
            blasted,
            synth,
            synth_seed: seed,
            setup,
        }
    }

    /// **Stage 4 — featurize**: build the path datasets of all four BOG
    /// variants against the label clock and assemble the [`DesignData`].
    pub fn featurize(&self, labeled: LabeledDesign) -> DesignData {
        let LabeledDesign {
            blasted,
            synth,
            synth_seed,
            setup,
        } = labeled;
        let BlastedDesign { compiled, sog } = blasted;
        let pseudo = Library::pseudo_bog();
        let variant_data: Vec<VariantData> = BogVariant::ALL
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let g = sog.to_variant(v);
                build_variant_data(&g, &pseudo, synth.clock_period, synth_seed ^ (i as u64 + 1))
            })
            .collect();

        DesignData {
            name: compiled.name,
            source: compiled.source,
            sog,
            variant_data,
            labels_at: synth.endpoint_at,
            clock: synth.clock_period,
            setup,
            wns: synth.wns,
            tns: synth.tns,
            area: synth.area,
            power: synth.power,
            ast_feats: compiled.ast_feats,
            synth_seed,
            synth_effort: self.cfg.synth_effort,
        }
    }

    /// Runs all four stages back to back.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors from [`PrepareStages::compile`].
    pub fn run(&self, name: &str, source: &str) -> Result<DesignData, VerilogError> {
        let compiled = self.compile(name, source)?;
        Ok(self.featurize(self.label(self.blast(compiled))))
    }
}

impl DesignData {
    /// Compiles, labels and featurizes one design (all four
    /// [`PrepareStages`] back to back).
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (parse/elaborate failures).
    pub fn prepare(
        name: &str,
        source: &str,
        cfg: &TimerConfig,
    ) -> Result<DesignData, VerilogError> {
        PrepareStages::new(cfg).run(name, source)
    }

    /// RTL signals of the design.
    pub fn signals(&self) -> &[SignalInfo] {
        self.sog.signals()
    }

    /// Ground-truth signal-level max arrival per signal.
    pub fn signal_labels(&self) -> Vec<f64> {
        signal_labels(&self.labels_at, self.signals())
    }

    /// Operator histogram (normalized) — the SNS-style baseline input.
    pub fn op_histogram(&self) -> Vec<f64> {
        let s = self.sog.stats();
        let t = (s.comb_total + s.dff).max(1) as f64;
        vec![
            s.not as f64 / t,
            s.and2 as f64 / t,
            s.or2 as f64 / t,
            s.xor2 as f64 / t,
            s.mux2 as f64 / t,
            s.dff as f64 / t,
            (s.total_cells as f64).ln_1p(),
            s.max_level as f64,
            self.clock,
        ]
    }
}

/// An owned collection of prepared designs.
#[derive(Debug, Default)]
pub struct DesignSet {
    designs: Vec<DesignData>,
}

impl DesignSet {
    /// Wraps prepared designs.
    pub fn new(designs: Vec<DesignData>) -> DesignSet {
        DesignSet { designs }
    }

    /// Prepares the full 21-design benchmark suite in parallel.
    ///
    /// # Panics
    ///
    /// Panics if any generated design fails to compile (the generator and
    /// frontend are tested together, so this indicates a bug).
    pub fn prepare_suite(cfg: &TimerConfig) -> DesignSet {
        let sources = rtlt_designgen::generate_all();
        Self::prepare_named_or_panic(&sources, cfg)
    }

    /// Prepares an arbitrary list of `(name, source)` designs in parallel
    /// (work-queue scheduled on [`TimerConfig::threads`] workers).
    ///
    /// # Errors
    ///
    /// Returns the [`PrepareError`] of the first failing design (first by
    /// input order, deterministically — not by wall-clock completion).
    pub fn prepare_named(
        sources: &[(String, String)],
        cfg: &TimerConfig,
    ) -> Result<DesignSet, PrepareError> {
        let designs = rtlt_runtime::try_par_map(cfg.threads, sources, |(name, src)| {
            DesignData::prepare(name, src, cfg).map_err(|e| PrepareError {
                design: name.clone(),
                source: e,
            })
        })?;
        Ok(DesignSet { designs })
    }

    /// [`DesignSet::prepare_named`], panicking on failure — for bench
    /// binaries and tests where a frontend error is a bug.
    ///
    /// # Panics
    ///
    /// Panics with the failing design's name if a source fails to compile.
    pub fn prepare_named_or_panic(sources: &[(String, String)], cfg: &TimerConfig) -> DesignSet {
        Self::prepare_named(sources, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The prepared designs.
    pub fn designs(&self) -> &[DesignData] {
        &self.designs
    }

    /// Finds a design by name.
    pub fn get(&self, name: &str) -> Option<&DesignData> {
        self.designs.iter().find(|d| d.name == name)
    }

    /// Splits into `(train, test)` by test-design names.
    pub fn split<'a>(&'a self, test_names: &[&str]) -> (Vec<&'a DesignData>, Vec<&'a DesignData>) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for d in &self.designs {
            if test_names.contains(&d.name.as_str()) {
                test.push(d);
            } else {
                train.push(d);
            }
        }
        (train, test)
    }

    /// Deterministic k-fold partition of design names (round-robin after a
    /// stable ordering).
    pub fn folds(&self, k: usize) -> Vec<Vec<String>> {
        let mut names: Vec<String> = self.designs.iter().map(|d| d.name.clone()).collect();
        names.sort();
        let mut folds = vec![Vec::new(); k.max(1)];
        for (i, n) in names.into_iter().enumerate() {
            folds[i % k.max(1)].push(n);
        }
        folds
    }
}

/// The fitted RTL-Timer model stack.
#[derive(Debug)]
pub struct RtlTimer {
    bitwise: Vec<BitwiseModel>,
    ensemble: EnsembleModel,
    signal: SignalModels,
    design_timing: DesignTimingModel,
}

impl RtlTimer {
    /// Fits the full stack on the given training designs.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &[&DesignData], cfg: &TimerConfig) -> RtlTimer {
        assert!(!train.is_empty(), "RtlTimer::fit needs at least one design");
        // 1. Four per-representation bit-wise models (grouped max-loss).
        let bitwise: Vec<BitwiseModel> = (0..4)
            .map(|v| {
                let corpus = BitwiseCorpus {
                    designs: train
                        .iter()
                        .map(|d| (&d.variant_data[v], d.labels_at.as_slice()))
                        .collect(),
                };
                BitwiseModel::fit(BitModelKind::TreeMax, &corpus, cfg.seed ^ (v as u64))
            })
            .collect();

        // 2. Ensemble meta-model over the per-variant predictions.
        let mut meta_feat = Vec::new();
        let mut meta_label = Vec::new();
        let mut per_design_bits: Vec<Vec<f64>> = Vec::new();
        for d in train {
            let preds: Vec<Vec<f64>> = (0..4)
                .map(|v| bitwise[v].predict_endpoints(&d.variant_data[v]))
                .collect();
            let rows = meta_rows(&preds, &d.variant_data[0]);
            for (e, row) in rows.into_iter().enumerate() {
                if d.labels_at[e].is_finite() {
                    meta_feat.push(row);
                    meta_label.push(d.labels_at[e]);
                }
            }
            per_design_bits.push(preds.into_iter().next().expect("sog preds"));
        }
        let ensemble = EnsembleModel::fit(&meta_feat, &meta_label, cfg.seed ^ 0xE);

        // 3. Signal-level models on the ensembled bit predictions.
        let mut per_design_signal = Vec::new();
        let mut design_rows_v = Vec::new();
        let mut wns_labels = Vec::new();
        let mut tns_labels = Vec::new();
        let mut ep_counts = Vec::new();
        for d in train {
            let bits = Self::ensemble_bits(&bitwise, &ensemble, d);
            let srows = signal_rows(
                &bits,
                &d.variant_data[0].endpoint_sta_at,
                d.signals(),
                &d.variant_data[0].design_feats,
            );
            let slabels = d.signal_labels();
            per_design_signal.push((srows, slabels));

            design_rows_v.push(design_row(
                &bits,
                d.clock,
                d.setup,
                &d.variant_data[0].design_feats,
            ));
            wns_labels.push(d.wns);
            tns_labels.push(d.tns);
            ep_counts.push(d.labels_at.iter().filter(|l| l.is_finite()).count() as f64);
        }
        let signal = SignalModels::fit(&per_design_signal, cfg.seed ^ 0x5);
        let design_timing = DesignTimingModel::fit(
            &design_rows_v,
            &wns_labels,
            &tns_labels,
            &ep_counts,
            cfg.seed ^ 0xD,
        );

        RtlTimer {
            bitwise,
            ensemble,
            signal,
            design_timing,
        }
    }

    fn ensemble_bits(
        bitwise: &[BitwiseModel],
        ensemble: &EnsembleModel,
        d: &DesignData,
    ) -> Vec<f64> {
        let preds: Vec<Vec<f64>> = (0..4)
            .map(|v| bitwise[v].predict_endpoints(&d.variant_data[v]))
            .collect();
        let rows = meta_rows(&preds, &d.variant_data[0]);
        ensemble.predict(&rows)
    }

    /// Per-variant bit-wise predictions (diagnostics / Table 5).
    pub fn variant_bit_predictions(&self, d: &DesignData) -> Vec<Vec<f64>> {
        (0..4)
            .map(|v| self.bitwise[v].predict_endpoints(&d.variant_data[v]))
            .collect()
    }

    /// Runs the full prediction stack on one (unseen) design.
    pub fn predict(&self, d: &DesignData) -> Prediction {
        let variant_bit_preds = self.variant_bit_predictions(d);
        let rows = meta_rows(&variant_bit_preds, &d.variant_data[0]);
        let bit_pred = self.ensemble.predict(&rows);

        let srows = signal_rows(
            &bit_pred,
            &d.variant_data[0].endpoint_sta_at,
            d.signals(),
            &d.variant_data[0].design_feats,
        );
        let (signal_pred, signal_rank_score) = self.signal.predict(&srows);

        let drow = design_row(&bit_pred, d.clock, d.setup, &d.variant_data[0].design_feats);
        let n_eps = d.labels_at.iter().filter(|l| l.is_finite()).count() as f64;
        let (wns_pred, tns_pred) = self.design_timing.predict(&drow, n_eps);
        let (wns_direct, tns_direct) = direct_wns_tns(&bit_pred, d.clock, d.setup);

        Prediction {
            design: d.name.clone(),
            bit_pred,
            bit_label: d.labels_at.clone(),
            variant_bit_preds,
            signal_pred,
            signal_rank_score,
            signal_label: d.signal_labels(),
            signal_names: d.signals().iter().map(|s| s.name.clone()).collect(),
            wns_pred,
            tns_pred,
            wns_direct,
            tns_direct,
            wns_label: d.wns,
            tns_label: d.tns,
            clock: d.clock,
            setup: d.setup,
        }
    }
}

/// Prediction output for one design, bundled with labels for evaluation.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Design name.
    pub design: String,
    /// Ensembled bit-wise arrival predictions.
    pub bit_pred: Vec<f64>,
    /// Ground-truth bit-wise arrivals.
    pub bit_label: Vec<f64>,
    /// Per-variant bit-wise predictions (SOG, AIG, AIMG, XAG).
    pub variant_bit_preds: Vec<Vec<f64>>,
    /// Signal-wise max-arrival regression predictions.
    pub signal_pred: Vec<f64>,
    /// Signal-wise LTR criticality scores (higher = more critical).
    pub signal_rank_score: Vec<f64>,
    /// Ground-truth signal max arrivals.
    pub signal_label: Vec<f64>,
    /// Signal names (aligned with the signal vectors).
    pub signal_names: Vec<String>,
    /// Model-predicted WNS.
    pub wns_pred: f64,
    /// Model-predicted TNS.
    pub tns_pred: f64,
    /// Direct WNS from predicted slacks.
    pub wns_direct: f64,
    /// Direct TNS from predicted slacks.
    pub tns_direct: f64,
    /// Ground-truth WNS.
    pub wns_label: f64,
    /// Ground-truth TNS.
    pub tns_label: f64,
    /// Clock period (ns).
    pub clock: f64,
    /// DFF setup (ns).
    pub setup: f64,
}

impl Prediction {
    fn finite_pairs(pred: &[f64], label: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut p = Vec::new();
        let mut l = Vec::new();
        for (&a, &b) in pred.iter().zip(label) {
            if a.is_finite() && b.is_finite() {
                p.push(a);
                l.push(b);
            }
        }
        (p, l)
    }

    /// Pearson R of the bit-wise predictions.
    pub fn bit_r(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.bit_pred, &self.bit_label);
        metrics::pearson(&p, &l)
    }

    /// MAPE (%) of the bit-wise predictions.
    pub fn bit_mape(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.bit_pred, &self.bit_label);
        metrics::mape(&p, &l)
    }

    /// COVR (%) of bit-wise criticality groups.
    pub fn bit_covr(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.bit_pred, &self.bit_label);
        metrics::covr(&p, &l)
    }

    /// Pearson R of one representation's bit predictions.
    pub fn variant_bit_r(&self, v: usize) -> f64 {
        let (p, l) = Self::finite_pairs(&self.variant_bit_preds[v], &self.bit_label);
        metrics::pearson(&p, &l)
    }

    /// Pearson R of the signal-wise regression.
    pub fn signal_r(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_pred, &self.signal_label);
        metrics::pearson(&p, &l)
    }

    /// MAPE (%) of the signal-wise regression.
    pub fn signal_mape(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_pred, &self.signal_label);
        metrics::mape(&p, &l)
    }

    /// COVR (%) using the regression predictions for grouping.
    pub fn signal_covr_regression(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_pred, &self.signal_label);
        metrics::covr(&p, &l)
    }

    /// COVR (%) using the LTR scores for grouping (the paper's headline
    /// ranking metric).
    pub fn signal_covr_ranking(&self) -> f64 {
        let (p, l) = Self::finite_pairs(&self.signal_rank_score, &self.signal_label);
        metrics::covr(&p, &l)
    }

    /// Predicted signal slack (ns): `clock − setup − predicted arrival`.
    pub fn signal_slack(&self) -> Vec<f64> {
        self.signal_pred
            .iter()
            .map(|at| self.clock - self.setup - at)
            .collect()
    }
}

/// Runs k-fold cross-validation (train/test splits are disjoint by design,
/// as in the paper) and returns one [`Prediction`] per design.
pub fn cross_validate(set: &DesignSet, k: usize, cfg: &TimerConfig) -> Vec<Prediction> {
    let folds = set.folds(k);
    let results: Vec<Vec<Prediction>> = rtlt_runtime::par_map(cfg.threads, &folds, |fold| {
        let names: Vec<&str> = fold.iter().map(|s| s.as_str()).collect();
        let (train, test) = set.split(&names);
        if test.is_empty() {
            return Vec::new();
        }
        let model = RtlTimer::fit(&train, cfg);
        test.iter().map(|d| model.predict(d)).collect()
    });
    let mut out: Vec<Prediction> = results.into_iter().flatten().collect();
    out.sort_by(|a, b| a.design.cmp(&b.design));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sources() -> Vec<(String, String)> {
        let mk = |name: &str, w: u32, extra: &str| {
            (
                name.to_owned(),
                format!(
                    "module {name}(input clk, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
                       reg [{x}:0] r;
                       reg [{x}:0] s;
                       always @(posedge clk) begin
                         r <= a + b;
                         s <= s ^ (r {extra});
                       end
                       assign q = s;
                     endmodule",
                    x = w - 1,
                ),
            )
        };
        vec![
            mk("d0", 8, "+ a"),
            mk("d1", 10, "- b"),
            mk("d2", 12, "& a"),
            mk("d3", 9, "| b"),
        ]
    }

    #[test]
    fn prepare_builds_labels_and_features() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let (name, src) = &tiny_sources()[0];
        let d = DesignData::prepare(name, src, &cfg).unwrap();
        assert_eq!(d.variant_data.len(), 4);
        assert_eq!(d.labels_at.len(), d.sog.regs().len());
        assert!(d.labels_at.iter().all(|l| l.is_finite()));
        assert!(d.clock > 0.0 && d.area > 0.0);
    }

    #[test]
    fn default_config_has_workers() {
        assert!(TimerConfig::default().threads >= 1);
    }

    #[test]
    fn staged_preparation_matches_monolithic() {
        let cfg = TimerConfig {
            threads: 1,
            ..Default::default()
        };
        let (name, src) = &tiny_sources()[1];
        let stages = PrepareStages::new(&cfg);
        let staged = stages
            .featurize(stages.label(stages.blast(stages.compile(name, src).expect("compiles"))));
        let monolithic = DesignData::prepare(name, src, &cfg).unwrap();
        assert_eq!(staged.labels_at, monolithic.labels_at);
        assert_eq!(staged.wns, monolithic.wns);
        assert_eq!(staged.clock, monolithic.clock);
        assert_eq!(staged.ast_feats, monolithic.ast_feats);
        assert_eq!(staged.variant_data.len(), monolithic.variant_data.len());
    }

    #[test]
    fn prepare_named_surfaces_failing_design_by_name() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let mut sources = tiny_sources();
        sources.insert(
            1,
            (
                "broken".to_owned(),
                "module broken(input clk; endmodule".to_owned(),
            ),
        );
        let err = DesignSet::prepare_named(&sources, &cfg).unwrap_err();
        assert_eq!(err.design, "broken");
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn fit_predict_round_trip() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let set = DesignSet::prepare_named_or_panic(&tiny_sources(), &cfg);
        let (train, test) = set.split(&["d3"]);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        let model = RtlTimer::fit(&train, &cfg);
        let pred = model.predict(test[0]);
        assert_eq!(pred.bit_pred.len(), test[0].labels_at.len());
        assert_eq!(pred.signal_pred.len(), test[0].signals().len());
        assert!(pred.bit_r().is_finite());
        // Cross-design generalization on closely-related designs should be
        // clearly positive.
        assert!(pred.bit_r() > 0.3, "bit R = {}", pred.bit_r());
        assert!(pred.wns_pred <= 0.0 && pred.tns_pred <= pred.wns_pred + 1e-12);
    }

    #[test]
    fn folds_partition_all_designs() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let set = DesignSet::prepare_named_or_panic(&tiny_sources()[..2], &cfg);
        let folds = set.folds(2);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 2);
    }
}
