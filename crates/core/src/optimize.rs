//! Prediction-guided synthesis optimization (paper §3.5.2 / Table 6):
//! `group_path` effort across four predicted criticality groups plus
//! `retime` on the top-5 % predicted-critical endpoints, compared against
//! the same flow driven by ground-truth rankings.

use crate::cache::{opt_flow_key, stage};
use crate::metrics::{rank_groups, GROUP_BOUNDS};
use crate::pipeline::{DesignData, Prediction};
use rtlt_liberty::Library;
use rtlt_store::Store;
use rtlt_synth::{synthesize, PathGroups, SynthOptions};

/// Quality metrics of one synthesis flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMetrics {
    /// Worst negative slack (ns).
    pub wns: f64,
    /// Total negative slack (ns).
    pub tns: f64,
    /// Power estimate.
    pub power: f64,
    /// Cell area.
    pub area: f64,
}

impl FlowMetrics {
    /// Percentage deltas vs a baseline, with the paper's sign convention:
    /// negative WNS/TNS deltas are improvements (violation magnitude
    /// shrank); power/area deltas are plain relative changes.
    pub fn delta_pct(&self, base: &FlowMetrics) -> FlowMetrics {
        let mag = |x: f64, b: f64| {
            if b.abs() < 1e-9 {
                0.0
            } else {
                100.0 * (x.abs() - b.abs()) / b.abs()
            }
        };
        let rel = |x: f64, b: f64| {
            if b.abs() < 1e-9 {
                0.0
            } else {
                100.0 * (x - b) / b.abs()
            }
        };
        FlowMetrics {
            wns: mag(self.wns, base.wns),
            tns: mag(self.tns, base.tns),
            power: rel(self.power, base.power),
            area: rel(self.area, base.area),
        }
    }
}

/// Outcome of the Table-6 experiment on one design.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// Design name.
    pub design: String,
    /// Default synthesis flow.
    pub default: FlowMetrics,
    /// Optimized flow driven by **predicted** rankings.
    pub with_pred: FlowMetrics,
    /// Optimized flow driven by **ground-truth** rankings.
    pub with_real: FlowMetrics,
}

/// Builds the four `group_path` endpoint groups (BOG register indices) from
/// per-bit criticality scores (higher = more critical).
pub fn path_groups_from_scores(scores: &[f64]) -> PathGroups {
    let g = rank_groups(scores);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); 4];
    for (i, &gi) in g.iter().enumerate() {
        groups[gi].push(i as u32);
    }
    PathGroups {
        groups,
        weights: vec![0.4, 0.3, 0.2, 0.1],
    }
}

/// Top-5 % most critical endpoints by score (the paper's retime set).
pub fn retime_set_from_scores(scores: &[f64]) -> Vec<u32> {
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite"));
    let k = (((n as f64) * GROUP_BOUNDS[0]).ceil() as usize).max(1);
    order.into_iter().take(k).map(|i| i as u32).collect()
}

fn run_opt_flow(d: &DesignData, scores: &[f64], lib: &Library, store: &Store) -> FlowMetrics {
    // A candidate flow is a pure function of the prepared design and the
    // scores driving its options (seed, clock and base effort are functions
    // of the preparation), so it is memoized under the design's content key
    // — across candidates within a run via the memory tier, and across
    // bench invocations via the disk tier.
    let key = opt_flow_key(&d.prepare_key, scores);
    *store.get_or_compute(stage::OPT_FLOW, key, || {
        let res = synthesize(
            &d.sog,
            lib,
            &SynthOptions {
                seed: d.synth_seed,
                clock_period: Some(d.clock),
                // The paper reports ~45 % extra synthesis runtime for the
                // optimization flow; we grant the same relative effort.
                effort: d.synth_effort * 1.45,
                path_groups: Some(path_groups_from_scores(scores)),
                retime_endpoints: retime_set_from_scores(scores),
            },
        );
        FlowMetrics {
            wns: res.wns,
            tns: res.tns,
            power: res.power,
            area: res.area,
        }
    })
}

/// [`optimize_design`] without a store (every candidate flow recomputes).
pub fn optimize_design(d: &DesignData, pred: &Prediction) -> OptimizationOutcome {
    optimize_design_with(d, pred, &Store::disabled())
}

/// Runs default / predicted-ranking / real-ranking flows for one design,
/// memoizing each candidate flow in `store`.
///
/// Bit-level criticality scores are the predicted (resp. ground-truth)
/// arrival times — later arrivals are more critical at a fixed clock.
pub fn optimize_design_with(
    d: &DesignData,
    pred: &Prediction,
    store: &Store,
) -> OptimizationOutcome {
    let lib = Library::nangate45_like();
    let default = FlowMetrics {
        wns: d.wns,
        tns: d.tns,
        power: d.power,
        area: d.area,
    };
    // Ground-truth scores: NaN-labeled endpoints (none in the default label
    // flow) fall back to the prediction.
    let real_scores: Vec<f64> = d
        .labels_at
        .iter()
        .zip(&pred.bit_pred)
        .map(|(&l, &p)| if l.is_finite() { l } else { p })
        .collect();
    OptimizationOutcome {
        design: d.name.to_string(),
        default,
        with_pred: run_opt_flow(d, &pred.bit_pred, &lib, store),
        with_real: run_opt_flow(d, &real_scores, &lib, store),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_endpoints() {
        let scores: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let pg = path_groups_from_scores(&scores);
        let total: usize = pg.groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 40);
        assert_eq!(pg.groups.len(), 4);
        assert_eq!(pg.weights.len(), 4);
        // Most critical group contains the highest scores.
        assert!(pg.groups[0].contains(&39));
    }

    #[test]
    fn retime_set_is_top_5_percent() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let set = retime_set_from_scores(&scores);
        assert_eq!(set.len(), 5);
        assert!(set.contains(&99) && set.contains(&95));
    }

    #[test]
    fn delta_sign_convention() {
        let base = FlowMetrics {
            wns: -1.0,
            tns: -10.0,
            power: 100.0,
            area: 50.0,
        };
        let better = FlowMetrics {
            wns: -0.8,
            tns: -7.0,
            power: 103.0,
            area: 49.0,
        };
        let d = better.delta_pct(&base);
        assert!((d.wns + 20.0).abs() < 1e-9, "WNS improved 20%: {}", d.wns);
        assert!((d.tns + 30.0).abs() < 1e-9);
        assert!((d.power - 3.0).abs() < 1e-9);
        assert!((d.area + 2.0).abs() < 1e-9);
    }
}
