//! Feature extraction (paper Table 2): design-, cone- and path-level.

use rtlt_bog::{Bog, BogOp, ConeInfo};
use rtlt_sta::{Sta, TimingPath};

/// Names of the per-path feature vector, in order.
pub const PATH_FEATURE_NAMES: [&str; 23] = [
    // Design-level.
    "rank_pct", // endpoint's pseudo-STA AT percentile within design
    "log_seq_cells",
    "log_comb_cells",
    "log_total_cells",
    // Cone-level.
    "log_driving_regs",
    "log_cone_size",
    "cone_depth",
    // Path-level.
    "path_arrival", // AT by STA on R along this path
    "path_levels",  // number of operators on the path
    "n_inv",
    "n_and",
    "n_or",
    "n_xor",
    "n_mux",
    "fanout_sum",
    "fanout_avg",
    "fanout_max",
    "load_sum",
    "load_avg",
    "load_max",
    "slew_avg",
    "slew_max",
    "launch_at", // source arrival (clk→Q or input delay)
];

/// Design-level feature vector of a BOG (log-scaled cell counts).
pub fn design_features(bog: &Bog) -> Vec<f64> {
    let s = bog.stats();
    vec![
        (s.dff as f64).ln_1p(),
        (s.comb_total as f64).ln_1p(),
        (s.total_cells as f64).ln_1p(),
        s.max_level as f64,
    ]
}

/// Number of design-level features produced by [`design_features`].
pub const N_DESIGN_FEATURES: usize = 4;

/// Operator class index for token sequences (transformer input).
pub fn op_class(op: BogOp) -> usize {
    match op {
        BogOp::Input => 0,
        BogOp::Const0 | BogOp::Const1 => 1,
        BogOp::Not => 2,
        BogOp::And2 => 3,
        BogOp::Or2 => 4,
        BogOp::Xor2 => 5,
        BogOp::Mux2 => 6,
        BogOp::Dff => 7,
    }
}

/// Number of operator classes.
pub const N_OP_CLASSES: usize = 8;

/// Extracts the full per-path feature vector.
///
/// `rank_pct` is the endpoint's pseudo-STA arrival percentile within its
/// design (0 = earliest, 1 = latest); `fanout` is the precomputed per-node
/// fanout table; `design` is [`design_features`] of `bog`, passed in
/// because it is per-graph constant and costs two full node passes — the
/// callers featurize many paths per graph and recomputing it per row
/// dominated the cold featurize profile.
pub fn path_features(
    sta: &Sta<'_>,
    bog: &Bog,
    path: &TimingPath,
    cone: &ConeInfo,
    rank_pct: f64,
    fanout: &[u32],
    design: &[f64],
) -> Vec<f64> {
    let res = sta.result();
    let mut n_inv = 0.0;
    let mut n_and = 0.0;
    let mut n_or = 0.0;
    let mut n_xor = 0.0;
    let mut n_mux = 0.0;
    let mut fo_sum = 0.0;
    let mut fo_max: f64 = 0.0;
    let mut load_sum = 0.0;
    let mut load_max: f64 = 0.0;
    let mut slew_sum = 0.0;
    let mut slew_max: f64 = 0.0;
    let mut levels = 0.0;
    for &n in &path.nodes {
        let node = bog.node(n);
        if node.op.is_comb() {
            levels += 1.0;
            match node.op {
                BogOp::Not => n_inv += 1.0,
                BogOp::And2 => n_and += 1.0,
                BogOp::Or2 => n_or += 1.0,
                BogOp::Xor2 => n_xor += 1.0,
                BogOp::Mux2 => n_mux += 1.0,
                _ => {}
            }
        }
        let fo = fanout[n as usize] as f64;
        fo_sum += fo;
        fo_max = fo_max.max(fo);
        let ld = res.load[n as usize];
        load_sum += ld;
        load_max = load_max.max(ld);
        let sl = res.slew[n as usize];
        slew_sum += sl;
        slew_max = slew_max.max(sl);
    }
    let len = path.nodes.len().max(1) as f64;
    let launch = res.arrival[path.nodes[0] as usize];
    vec![
        rank_pct,
        design[0],
        design[1],
        design[2],
        (cone.driving_regs as f64).ln_1p(),
        (cone.size as f64).ln_1p(),
        cone.depth as f64,
        path.arrival,
        levels,
        n_inv,
        n_and,
        n_or,
        n_xor,
        n_mux,
        fo_sum,
        fo_sum / len,
        fo_max,
        load_sum,
        load_sum / len,
        load_max,
        slew_sum / len,
        slew_max,
        launch,
    ]
}

/// Token features per path node (for the transformer): fanout, load, and a
/// normalized position estimate.
pub fn token_features(sta: &Sta<'_>, path: &TimingPath, fanout: &[u32]) -> Vec<Vec<f64>> {
    let res = sta.result();
    path.nodes
        .iter()
        .map(|&n| {
            vec![
                (fanout[n as usize] as f64).ln_1p(),
                res.load[n as usize],
                res.arrival[n as usize],
            ]
        })
        .collect()
}

/// Number of per-token features produced by [`token_features`].
pub const N_TOKEN_FEATURES: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_bog::{blast, input_cone};
    use rtlt_liberty::Library;
    use rtlt_sta::StaConfig;
    use rtlt_verilog::compile;

    #[test]
    fn feature_vector_matches_names() {
        let bog = blast(
            &compile(
                "module m(input clk, input [7:0] a, output [7:0] q);
                   reg [7:0] r;
                   always @(posedge clk) r <= r + a;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let lib = Library::pseudo_bog();
        let sta = Sta::run(&bog, &lib, StaConfig::default());
        let fanout = bog.fanout_counts();
        let ep = rtlt_bog::Endpoint::Reg(7);
        let path = sta.critical_path(ep);
        let cone = input_cone(&bog, bog.endpoint_node(ep));
        let design = design_features(&bog);
        let f = path_features(&sta, &bog, &path, &cone, 0.9, &fanout, &design);
        assert_eq!(f.len(), PATH_FEATURE_NAMES.len());
        assert!(f.iter().all(|v| v.is_finite()));
        // Arrival equals endpoint AT for the critical path.
        let i = f.iter().position(|_| true).unwrap();
        let _ = i;
        assert!(f[7] > 0.0, "path arrival positive");
        assert!(f[8] >= 1.0, "levels counted");
    }

    #[test]
    fn token_features_per_node() {
        let bog = blast(
            &compile(
                "module m(input clk, input a, input b, output q);
                   reg r;
                   always @(posedge clk) r <= a ^ b;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let lib = Library::pseudo_bog();
        let sta = Sta::run(&bog, &lib, StaConfig::default());
        let fanout = bog.fanout_counts();
        let path = sta.critical_path(rtlt_bog::Endpoint::Reg(0));
        let toks = token_features(&sta, &path, &fanout);
        assert_eq!(toks.len(), path.nodes.len());
        assert!(toks.iter().all(|t| t.len() == N_TOKEN_FEATURES));
    }
}
