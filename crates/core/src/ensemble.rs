//! Representation ensemble (paper §3.1/§3.3): combine the four per-variant
//! bit-wise predictions — "supplemented by statistics such as the maximum,
//! minimum, and average of these predictions" plus cone and design features
//! — through a tree-based meta-model.

use crate::dataset::VariantData;
use rtlt_ml::{FeatureMatrix, Gbdt, GbdtParams, SquaredObjective};

/// Names of the ensemble meta-features.
pub const META_FEATURE_NAMES: [&str; 15] = [
    "pred_sog",
    "pred_aig",
    "pred_aimg",
    "pred_xag",
    "pred_mean",
    "pred_min",
    "pred_max",
    "pred_std",
    "sog_sta_at",
    "rank_pct",
    "log_driving_regs",
    "log_seq_cells",
    "log_comb_cells",
    "log_total_cells",
    "max_level",
];

/// Builds per-endpoint meta-feature rows from the four variant predictions
/// (ordered SOG, AIG, AIMG, XAG) and the SOG dataset.
pub fn meta_rows(variant_preds: &[Vec<f64>], sog: &VariantData) -> FeatureMatrix {
    let mut out = FeatureMatrix::new(META_FEATURE_NAMES.len());
    meta_rows_into(variant_preds, sog, &mut out);
    out
}

/// [`meta_rows`] into a caller-owned scratch matrix (cleared first).
pub fn meta_rows_into(variant_preds: &[Vec<f64>], sog: &VariantData, out: &mut FeatureMatrix) {
    assert_eq!(variant_preds.len(), 4, "four representations expected");
    let n = sog.endpoint_sta_at.len();
    out.reset(META_FEATURE_NAMES.len());
    // Rank percentile of each endpoint by SOG pseudo-STA arrival.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        sog.endpoint_sta_at[a]
            .partial_cmp(&sog.endpoint_sta_at[b])
            .expect("finite")
    });
    let mut rank_pct = vec![0.0; n];
    for (rank, &i) in order.iter().enumerate() {
        rank_pct[i] = if n > 1 {
            rank as f64 / (n - 1) as f64
        } else {
            0.5
        };
    }
    let mut row = Vec::with_capacity(META_FEATURE_NAMES.len());
    for e in 0..n {
        row.clear();
        row.extend(variant_preds.iter().map(|v| v[e]));
        let ps = &row[..4];
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        let min = ps.iter().cloned().fold(f64::MAX, f64::min);
        let max = ps.iter().cloned().fold(f64::MIN, f64::max);
        let std = (ps.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / ps.len() as f64).sqrt();
        row.push(mean);
        row.push(min);
        row.push(max);
        row.push(std);
        row.push(sog.endpoint_sta_at[e]);
        row.push(rank_pct[e]);
        row.push(sog.driving_regs[e].ln_1p());
        row.extend(sog.design_feats.iter().copied());
        out.push_row(&row);
    }
}

/// The fitted ensemble meta-model.
#[derive(Debug)]
pub struct EnsembleModel {
    meta: Gbdt,
}

impl EnsembleModel {
    /// Fits on meta rows pooled over training designs.
    pub fn fit(rows: &FeatureMatrix, labels: &[f64], seed: u64) -> EnsembleModel {
        let mut params = GbdtParams::default();
        params.n_trees = 150;
        params.learning_rate = 0.07;
        params.tree.max_depth = 6;
        params.seed = seed;
        let obj = SquaredObjective {
            targets: labels.to_vec(),
        };
        EnsembleModel {
            meta: Gbdt::fit(rows, &obj, &params),
        }
    }

    /// Predicts ensembled endpoint arrivals.
    pub fn predict(&self, rows: &FeatureMatrix) -> Vec<f64> {
        self.meta.predict_all(rows)
    }

    /// Prediction into a caller-owned buffer (cleared first).
    pub fn predict_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        self.meta.predict_into(rows, out);
    }

    /// Split-count feature importance over
    /// [`META_FEATURE_NAMES`]-ordered features.
    pub fn feature_importance(&self) -> Vec<usize> {
        self.meta.feature_importance()
    }
}

impl rtlt_store::Codec for EnsembleModel {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        self.meta.encode(e);
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(EnsembleModel {
            meta: Gbdt::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::build_variant_data;
    use crate::metrics::pearson;
    use rtlt_bog::{blast, BogVariant};
    use rtlt_liberty::Library;
    use rtlt_verilog::compile;

    #[test]
    fn meta_rows_shape_and_stats() {
        let bog = blast(
            &compile(
                "module m(input clk, input [7:0] a, output [7:0] q);
                   reg [7:0] r;
                   always @(posedge clk) r <= r + a;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let lib = Library::pseudo_bog();
        let sog = build_variant_data(&bog, &lib, 1.0, 1);
        let n = sog.endpoint_sta_at.len();
        // Fake variant predictions.
        let preds: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..n).map(|e| e as f64 + k as f64).collect())
            .collect();
        let rows = meta_rows(&preds, &sog);
        assert_eq!(rows.n_rows(), n);
        assert_eq!(rows.n_cols(), META_FEATURE_NAMES.len());
        // mean/min/max consistency on first endpoint.
        let r0 = rows.row(0);
        assert!((r0[4] - (r0[0] + r0[1] + r0[2] + r0[3]) / 4.0).abs() < 1e-12);
        assert!(r0[5] <= r0[6]);
    }

    #[test]
    fn ensemble_fits_targets() {
        let bog = blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] r;
                   always @(posedge clk) r <= a * b;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let lib = Library::pseudo_bog();
        let variants: Vec<_> = BogVariant::ALL
            .iter()
            .map(|&v| build_variant_data(&bog.to_variant(v), &lib, 1.0, 2))
            .collect();
        let n = variants[0].endpoint_sta_at.len();
        let labels: Vec<f64> = variants[0]
            .endpoint_sta_at
            .iter()
            .map(|a| a * 0.8 + 0.1)
            .collect();
        let preds: Vec<Vec<f64>> = variants.iter().map(|v| v.endpoint_sta_at.clone()).collect();
        let rows = meta_rows(&preds, &variants[0]);
        let model = EnsembleModel::fit(&rows, &labels, 1);
        let out = model.predict(&rows);
        assert_eq!(out.len(), n);
        assert!(pearson(&out, &labels) > 0.95);
    }
}
