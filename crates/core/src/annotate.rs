//! Automatic slack annotation on HDL source (paper §3.5.1, Fig. 3 step 3).
//!
//! Marks the technology node and predicted WNS/TNS at the top of the file,
//! and appends `// (name) Slack@…ns rank@g…` to the declaration line of
//! every top-level sequential signal.
//!
//! Annotation is **idempotent**: an already-annotated source has its header
//! replaced in place (line count preserved, so declaration line numbers
//! from a re-parse stay aligned) and stale per-signal comments stripped
//! before fresh ones are appended — the edit → annotate → edit loop never
//! accumulates duplicates. Line endings (`\n` vs `\r\n`) are preserved.

use crate::metrics::rank_groups;
use crate::pipeline::{DesignData, Prediction};
use std::collections::HashMap;

/// First header line prefix.
const TECH_PREFIX: &str = "// Tech:";
/// Second header line prefix.
const WNS_PREFIX: &str = "// Predicted WNS:";
/// Opening of a per-signal annotation comment.
const SIGNAL_MARKER: &str = " // (";

/// Produces an annotated copy of the design's Verilog source.
pub fn annotate_source(d: &DesignData, pred: &Prediction) -> String {
    // Criticality groups from the LTR scores (higher = more critical).
    let groups = rank_groups(&pred.signal_rank_score);
    let slacks = pred.signal_slack();

    // Map declaration line → list of annotations.
    let mut per_line: HashMap<u32, Vec<String>> = HashMap::new();
    for (i, s) in d.signals().iter().enumerate() {
        if !s.top_level {
            continue;
        }
        per_line.entry(s.decl_line).or_default().push(format!(
            "// ({}) Slack@{:.2}ns rank@g{}",
            s.name,
            slacks[i],
            groups[i] + 1
        ));
    }

    let header = [
        "// Tech: NanGate45-like (synthetic)".to_owned(),
        format!(
            "// Predicted WNS: {:.2}ns, TNS: {:.2}ns @ clock {:.2}ns",
            pred.wns_pred, pred.tns_pred, d.clock
        ),
    ];
    annotate_text(&d.source, &per_line, &header)
}

/// Whether `s` consists *entirely* of one or more of this module's own
/// annotation comments (`// (<name>) Slack@<value>ns rank@g<digits>`,
/// space-separated). Anything else — including a user comment that merely
/// resembles the opener — is not strippable.
fn is_annotation_run(mut s: &str) -> bool {
    loop {
        let Some(rest) = s.strip_prefix("// (") else {
            return false;
        };
        let Some(close) = rest.find(") Slack@") else {
            return false;
        };
        // The name must look like a (hierarchical) signal identifier —
        // otherwise a user comment such as `// (note) ...` followed by a
        // real annotation would validate as one giant annotation.
        let name = &rest[..close];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$' | '[' | ']'))
        {
            return false;
        }
        let rest = &rest[close + ") Slack@".len()..];
        let Some(ns) = rest.find("ns rank@g") else {
            return false;
        };
        let value = &rest[..ns];
        if value.is_empty()
            || !value
                .chars()
                .all(|c| c.is_ascii_digit() || c == '.' || c == '-')
        {
            return false;
        }
        let rest = &rest[ns + "ns rank@g".len()..];
        let digits = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if digits == 0 {
            return false;
        }
        match rest[digits..].strip_prefix(' ') {
            None => return rest[digits..].is_empty(),
            Some(next) => s = next,
        }
    }
}

/// Trims a trailing run of per-signal annotation comments (and trailing
/// whitespace) from one line, leaving the code — and any user comments,
/// even ones shaped like `// (...)` — untouched.
fn strip_signal_comment(line: &str) -> &str {
    let mut from = 0;
    while let Some(rel) = line[from..].find(SIGNAL_MARKER) {
        let pos = from + rel;
        if is_annotation_run(&line[pos + 1..]) {
            return line[..pos].trim_end();
        }
        from = pos + SIGNAL_MARKER.len();
    }
    line.trim_end()
}

/// Whether the source opens with an annotation header.
fn has_header(lines: &[&str]) -> bool {
    lines.len() >= 2 && lines[0].starts_with(TECH_PREFIX) && lines[1].starts_with(WNS_PREFIX)
}

/// Removes every annotation this module produces: the two header lines (if
/// present) and all trailing per-signal comments. Useful for diffing an
/// annotated file against its pristine source.
pub fn strip_annotations(source: &str) -> String {
    let eol = line_ending(source);
    let lines: Vec<&str> = source.lines().collect();
    let skip = if has_header(&lines) { 2 } else { 0 };
    let mut out = String::new();
    for line in &lines[skip..] {
        out.push_str(strip_signal_comment(line));
        out.push_str(eol);
    }
    out
}

fn line_ending(source: &str) -> &'static str {
    if source.contains("\r\n") {
        "\r\n"
    } else {
        "\n"
    }
}

/// The text transformation behind [`annotate_source`]: replaces (or
/// prepends) the two-line header and rewrites each annotated line.
/// `per_line` keys are 1-based line numbers of the *input* source — when
/// the input is already annotated, its header lines are replaced one for
/// one, so downstream line numbers stay valid.
fn annotate_text(
    source: &str,
    per_line: &HashMap<u32, Vec<String>>,
    header: &[String; 2],
) -> String {
    let eol = line_ending(source);
    let lines: Vec<&str> = source.lines().collect();
    let replacing = has_header(&lines);

    let mut out = String::new();
    out.push_str(&header[0]);
    out.push_str(eol);
    out.push_str(&header[1]);
    out.push_str(eol);
    for (idx, line) in lines.iter().enumerate() {
        if replacing && idx < 2 {
            continue;
        }
        let n = idx as u32 + 1;
        match per_line.get(&n) {
            Some(annos) => {
                out.push_str(strip_signal_comment(line));
                for a in annos {
                    out.push(' ');
                    out.push_str(a);
                }
            }
            None => out.push_str(line.trim_end_matches('\r')),
        }
        out.push_str(eol);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DesignSet, RtlTimer, TimerConfig};

    fn prepared(src: &str) -> (DesignSet, RtlTimer, TimerConfig) {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let sources = vec![
            ("t".to_owned(), src.to_owned()),
            ("u".to_owned(), src.replace("module t", "module u")),
        ];
        let set = DesignSet::prepare_named_or_panic(&sources, &cfg);
        let (train, _) = set.split(&["t"]);
        let model = RtlTimer::fit(&train, &cfg);
        (set, model, cfg)
    }

    const SRC: &str = "module t(input clk, input [7:0] a, output [7:0] q);
  reg [7:0] slow_acc;
  reg [7:0] fast_copy;
  always @(posedge clk) begin
    slow_acc <= slow_acc + a;
    fast_copy <= a;
  end
  assign q = slow_acc ^ fast_copy;
endmodule";

    #[test]
    fn annotation_marks_sequential_signals() {
        let (set, model, _) = prepared(SRC);
        let d = set.get("t").unwrap();
        let pred = model.predict(d);
        let annotated = annotate_source(d, &pred);
        assert!(annotated.contains("Predicted WNS"));
        assert!(annotated.contains("(slow_acc) Slack@"), "{annotated}");
        assert!(annotated.contains("(fast_copy) Slack@"));
        assert!(annotated.contains("rank@g"));
        // Original code is preserved.
        assert!(annotated.contains("assign q = slow_acc ^ fast_copy;"));
    }

    #[test]
    fn multiple_declarations_on_one_line_each_get_annotated() {
        let src = "module t(input clk, input [3:0] a, output [3:0] q);
  reg [3:0] r1; reg [3:0] r2;
  always @(posedge clk) begin r1 <= a; r2 <= r1 + a; end
  assign q = r2;
endmodule";
        let (set, model, _) = prepared(src);
        let d = set.get("t").unwrap();
        let annotated = annotate_source(d, &model.predict(d));
        let decl_line = annotated
            .lines()
            .find(|l| l.contains("reg [3:0] r1;"))
            .expect("decl line present");
        assert!(decl_line.contains("(r1) Slack@"), "{decl_line}");
        assert!(decl_line.contains("(r2) Slack@"), "{decl_line}");
    }

    #[test]
    fn non_top_level_signals_are_skipped() {
        let src = "module sub(input clk, input [3:0] d, output [3:0] y);
  reg [3:0] hidden;
  always @(posedge clk) hidden <= d + 4'd1;
  assign y = hidden;
endmodule
module t(input clk, input [3:0] a, output [3:0] q);
  wire [3:0] w;
  sub u0 (.clk(clk), .d(a), .y(w));
  reg [3:0] visible;
  always @(posedge clk) visible <= w;
  assign q = visible;
endmodule";
        let (set, model, _) = prepared(src);
        let d = set.get("t").unwrap();
        let annotated = annotate_source(d, &model.predict(d));
        assert!(annotated.contains("(visible) Slack@"));
        assert!(
            !annotated.contains("(u0.hidden)"),
            "sub-module signals are not annotatable on the top source"
        );
    }

    #[test]
    fn crlf_sources_keep_their_line_endings() {
        let src = SRC.replace('\n', "\r\n");
        let (set, model, _) = prepared(&src);
        let d = set.get("t").unwrap();
        let annotated = annotate_source(d, &model.predict(d));
        assert!(annotated.contains("(slow_acc) Slack@"));
        // Every line — including the annotated ones — ends with \r\n.
        assert_eq!(
            annotated.matches('\n').count(),
            annotated.matches("\r\n").count()
        );
        assert!(!annotated.contains("\r\r"));
    }

    #[test]
    fn annotation_is_idempotent() {
        let (set, model, cfg) = prepared(SRC);
        let d = set.get("t").unwrap();
        let pred = model.predict(d);
        let once = annotate_source(d, &pred);

        // Re-prepare the *annotated* source (as the editing loop does) and
        // annotate again: the header is replaced, not stacked, and signal
        // comments are refreshed, not duplicated.
        let set2 = DesignSet::prepare_named_or_panic(&[("t".to_owned(), once.clone())], &cfg);
        let d2 = set2.get("t").unwrap();
        let pred2 = model.predict(d2);
        let twice = annotate_source(d2, &pred2);
        assert_eq!(once.lines().count(), twice.lines().count());
        assert_eq!(twice.matches(TECH_PREFIX).count(), 1);
        assert_eq!(twice.matches("(slow_acc) Slack@").count(), 1, "{twice}");
        // And the stripped bodies agree with the pristine source.
        let mut pristine = String::from(SRC);
        pristine.push('\n');
        assert_eq!(strip_annotations(&twice), pristine);
        assert_eq!(strip_annotations(&once), pristine);
    }

    #[test]
    fn strip_annotations_of_pristine_source_is_identity() {
        let mut pristine = String::from(SRC);
        pristine.push('\n');
        assert_eq!(strip_annotations(&pristine), pristine);
    }

    #[test]
    fn user_comments_survive_repeated_annotation() {
        // A user comment shaped like our marker opener must never be
        // stripped — only the appended annotation run is.
        let src = "module t(input clk, input [3:0] a, output [3:0] q);
  reg [3:0] r; // (gain stage) keep me
  always @(posedge clk) r <= r + a;
  assign q = r;
endmodule";
        let (set, model, cfg) = prepared(src);
        let d = set.get("t").unwrap();
        let once = annotate_source(d, &model.predict(d));
        let decl = once.lines().find(|l| l.contains("reg [3:0] r;")).unwrap();
        assert!(decl.contains("// (gain stage) keep me"), "{decl}");
        assert!(decl.contains("// (r) Slack@"), "{decl}");

        let set2 = DesignSet::prepare_named_or_panic(&[("t".to_owned(), once.clone())], &cfg);
        let d2 = set2.get("t").unwrap();
        let twice = annotate_source(d2, &model.predict(d2));
        let decl = twice.lines().find(|l| l.contains("reg [3:0] r;")).unwrap();
        assert!(decl.contains("// (gain stage) keep me"), "{decl}");
        assert_eq!(decl.matches("Slack@").count(), 1, "{decl}");
    }

    #[test]
    fn annotation_run_validator_is_strict() {
        assert!(is_annotation_run("// (r) Slack@-0.10ns rank@g1"));
        assert!(is_annotation_run(
            "// (a) Slack@1.25ns rank@g2 // (b) Slack@-3.00ns rank@g4"
        ));
        assert!(!is_annotation_run("// (gain stage) keep me"));
        assert!(!is_annotation_run(
            "// (gain stage) keep me // (r) Slack@-0.12ns rank@g1"
        ));
        assert!(!is_annotation_run("// (r) Slack@oops rank@g1"));
        assert!(!is_annotation_run("// (r) Slack@-0.10ns rank@gX"));
        assert!(!is_annotation_run(
            "// (r) Slack@-0.10ns rank@g1 trailing words"
        ));
    }
}
