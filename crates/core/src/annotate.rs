//! Automatic slack annotation on HDL source (paper §3.5.1, Fig. 3 step 3).
//!
//! Marks the technology node and predicted WNS/TNS at the top of the file,
//! and appends `// (name) Slack@…ns rank@g…` to the declaration line of
//! every top-level sequential signal.

use crate::metrics::rank_groups;
use crate::pipeline::{DesignData, Prediction};
use std::collections::HashMap;

/// Produces an annotated copy of the design's Verilog source.
pub fn annotate_source(d: &DesignData, pred: &Prediction) -> String {
    // Criticality groups from the LTR scores (higher = more critical).
    let groups = rank_groups(&pred.signal_rank_score);
    let slacks = pred.signal_slack();

    // Map declaration line → list of annotations.
    let mut per_line: HashMap<u32, Vec<String>> = HashMap::new();
    for (i, s) in d.signals().iter().enumerate() {
        if !s.top_level {
            continue;
        }
        per_line.entry(s.decl_line).or_default().push(format!(
            "// ({}) Slack@{:.2}ns rank@g{}",
            s.name,
            slacks[i],
            groups[i] + 1
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "// Tech: NanGate45-like (synthetic)\n// Predicted WNS: {:.2}ns, TNS: {:.2}ns @ clock {:.2}ns\n",
        pred.wns_pred, pred.tns_pred, d.clock
    ));
    for (lineno, line) in d.source.lines().enumerate() {
        let n = lineno as u32 + 1;
        match per_line.get(&n) {
            Some(annos) => {
                out.push_str(line.trim_end());
                for a in annos {
                    out.push(' ');
                    out.push_str(a);
                }
                out.push('\n');
            }
            None => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DesignSet, RtlTimer, TimerConfig};

    #[test]
    fn annotation_marks_sequential_signals() {
        let cfg = TimerConfig {
            threads: 2,
            ..Default::default()
        };
        let src = "module t(input clk, input [7:0] a, output [7:0] q);
  reg [7:0] slow_acc;
  reg [7:0] fast_copy;
  always @(posedge clk) begin
    slow_acc <= slow_acc + a;
    fast_copy <= a;
  end
  assign q = slow_acc ^ fast_copy;
endmodule";
        let sources = vec![
            ("t".to_owned(), src.to_owned()),
            ("u".to_owned(), src.replace("module t", "module u")),
        ];
        let set = DesignSet::prepare_named_or_panic(&sources, &cfg);
        let (train, test) = set.split(&["t"]);
        let model = RtlTimer::fit(&train, &cfg);
        let pred = model.predict(test[0]);
        let annotated = annotate_source(test[0], &pred);
        assert!(annotated.contains("Predicted WNS"));
        assert!(annotated.contains("(slow_acc) Slack@"), "{annotated}");
        assert!(annotated.contains("(fast_copy) Slack@"));
        assert!(annotated.contains("rank@g"));
        // Original code is preserved.
        assert!(annotated.contains("assign q = slow_acc ^ fast_copy;"));
    }
}
