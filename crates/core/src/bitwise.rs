//! Bit-wise endpoint arrival-time models (paper §3.4.1).
//!
//! All model families share the same interface: fit on path rows grouped by
//! endpoint, predict an endpoint as the **max** over its sampled paths
//! (Eq. 3). The `CritOnly` variants are the paper's "w/o sample" ablation —
//! they see only the pseudo-STA slowest path.

use crate::dataset::VariantData;
use rtlt_ml::{
    FeatureMatrix, Gbdt, GbdtParams, GroupedMaxObjective, Mlp, MlpParams, PathSample,
    PathTransformer, Scaler, SquaredObjective, TransformerParams,
};

/// Model family for the bit-wise task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitModelKind {
    /// Gradient-boosted trees with the grouped max-loss (RTL-Timer's
    /// default).
    TreeMax,
    /// Trees trained on the slowest path only ("tree-based w/o sample").
    TreeCritOnly,
    /// MLP with grouped max-loss.
    MlpMax,
    /// MLP on the slowest path only ("MLP w/o sample").
    MlpCritOnly,
    /// Transformer over operator sequences with max-loss.
    Transformer,
}

/// A fitted bit-wise model.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one model lives per representation; not worth boxing
pub enum BitwiseModel {
    /// Tree-based (max-loss or crit-only).
    Tree {
        /// The boosted ensemble.
        model: Gbdt,
        /// Whether only critical paths are used at inference.
        crit_only: bool,
    },
    /// MLP-based.
    Mlp {
        /// The network.
        model: Mlp,
        /// Feature standardizer.
        scaler: Scaler,
        /// Whether only critical paths are used at inference.
        crit_only: bool,
    },
    /// Transformer-based.
    Transformer {
        /// The network.
        model: PathTransformer,
    },
}

/// Training corpus: per design, the variant data and per-endpoint labels.
pub struct BitwiseCorpus<'a> {
    /// `(paths of one design, arrival labels per endpoint)`.
    pub designs: Vec<(&'a VariantData, &'a [f64])>,
}

/// Flattened corpus: `(rows, per-endpoint row groups, targets, critical
/// row indices)`.
type FlatCorpus = (FeatureMatrix, Vec<Vec<usize>>, Vec<f64>, Vec<usize>);

impl<'a> BitwiseCorpus<'a> {
    /// Flattens rows/groups/targets across designs (skipping endpoints with
    /// non-finite labels, e.g. retimed-away registers).
    fn flatten(&self) -> FlatCorpus {
        let nf = self
            .designs
            .iter()
            .find_map(|(d, _)| d.rows.first())
            .map_or(0, |r| r.features.len());
        let mut rows = FeatureMatrix::new(nf);
        let mut groups = Vec::new();
        let mut targets = Vec::new();
        let mut crit_rows = Vec::new(); // first row of each group
        for (data, labels) in &self.designs {
            for (e, group) in data.groups.iter().enumerate() {
                let y = labels[e];
                if !y.is_finite() || group.is_empty() {
                    continue;
                }
                let mut g = Vec::with_capacity(group.len());
                for &r in group {
                    g.push(rows.n_rows());
                    rows.push_row(&data.rows[r].features);
                }
                crit_rows.push(g[0]);
                groups.push(g);
                targets.push(y);
            }
        }
        (rows, groups, targets, crit_rows)
    }
}

/// Gathers a subset of `rows` (by index, in order) into a fresh matrix.
fn gather(rows: &FeatureMatrix, idx: &[usize]) -> FeatureMatrix {
    let mut out = FeatureMatrix::with_capacity(rows.n_cols(), idx.len());
    for &r in idx {
        out.push_row(rows.row(r));
    }
    out
}

/// Default GBDT hyper-parameters for the bit-wise task (paper: 100 trees;
/// depth scaled down to our dataset sizes).
pub fn bitwise_gbdt_params(seed: u64) -> GbdtParams {
    let mut p = GbdtParams::default();
    p.n_trees = 120;
    p.learning_rate = 0.08;
    p.tree.max_depth = 7;
    p.seed = seed;
    p
}

impl BitwiseModel {
    /// Trains a bit-wise model of the requested kind.
    pub fn fit(kind: BitModelKind, corpus: &BitwiseCorpus<'_>, seed: u64) -> BitwiseModel {
        let (rows, groups, targets, crit_rows) = corpus.flatten();
        match kind {
            BitModelKind::TreeMax => {
                let obj = GroupedMaxObjective { groups, targets };
                let model = Gbdt::fit(&rows, &obj, &bitwise_gbdt_params(seed));
                BitwiseModel::Tree {
                    model,
                    crit_only: false,
                }
            }
            BitModelKind::TreeCritOnly => {
                let crit_feat = gather(&rows, &crit_rows);
                let obj = SquaredObjective { targets };
                let model = Gbdt::fit(&crit_feat, &obj, &bitwise_gbdt_params(seed));
                BitwiseModel::Tree {
                    model,
                    crit_only: true,
                }
            }
            BitModelKind::MlpMax | BitModelKind::MlpCritOnly => {
                let crit_only = kind == BitModelKind::MlpCritOnly;
                let scaler = Scaler::fit(&rows);
                let mut scaled = rows.clone();
                scaler.transform_all(&mut scaled);
                let mut model = Mlp::new(
                    scaled.n_cols(),
                    MlpParams {
                        hidden: vec![64, 64, 64],
                        epochs: 40,
                        seed,
                        ..Default::default()
                    },
                );
                if crit_only {
                    let crit_feat = gather(&scaled, &crit_rows);
                    model.fit_regression(&crit_feat, &targets);
                } else {
                    model.fit_grouped_max(&scaled, &groups, &targets);
                }
                BitwiseModel::Mlp {
                    model,
                    scaler,
                    crit_only,
                }
            }
            BitModelKind::Transformer => {
                // Sequence training is the costliest model; cap the corpus
                // by endpoint striding (deterministic) to keep the ablation
                // tractable, as one would subsample for a slow baseline.
                const MAX_GROUPS: usize = 6000;
                let total_groups: usize = corpus.designs.iter().map(|(d, _)| d.groups.len()).sum();
                let stride = (total_groups / MAX_GROUPS).max(1);
                let mut samples = Vec::new();
                let mut tf_groups: Vec<Vec<usize>> = Vec::new();
                let mut tf_targets = Vec::new();
                let mut counter = 0usize;
                for (data, labels) in &corpus.designs {
                    for (e, group) in data.groups.iter().enumerate() {
                        counter += 1;
                        if (counter - 1) % stride != 0 {
                            continue;
                        }
                        let y = labels[e];
                        if !y.is_finite() || group.is_empty() {
                            continue;
                        }
                        let mut g = Vec::new();
                        for &r in group {
                            g.push(samples.len());
                            samples.push(row_to_sample(&data.rows[r]));
                        }
                        tf_groups.push(g);
                        tf_targets.push(y);
                    }
                }
                let mut model = PathTransformer::new(
                    crate::features::N_OP_CLASSES,
                    crate::features::N_TOKEN_FEATURES,
                    7, // design + cone features as globals
                    TransformerParams {
                        epochs: 10,
                        seed,
                        ..Default::default()
                    },
                );
                model.fit_grouped_max(&samples, &tf_groups, &tf_targets);
                BitwiseModel::Transformer { model }
            }
        }
    }

    /// Predicts per-endpoint arrival times for one design (max over its
    /// sampled paths; `CritOnly` models use the slowest path only).
    pub fn predict_endpoints(&self, data: &VariantData) -> Vec<f64> {
        let mut scratch = FeatureMatrix::default();
        let mut preds = Vec::new();
        self.predict_endpoints_with(data, &mut scratch, &mut preds)
    }

    /// [`predict_endpoints`](Self::predict_endpoints) with caller-owned
    /// scratch buffers, so per-design prediction loops reuse one feature
    /// matrix and one prediction vector. Tree/MLP variants batch all of a
    /// design's path rows through one kernel call (identical values and
    /// fold order as the per-row walk).
    pub fn predict_endpoints_with(
        &self,
        data: &VariantData,
        scratch: &mut FeatureMatrix,
        preds: &mut Vec<f64>,
    ) -> Vec<f64> {
        let nf = data.rows.first().map_or(0, |r| r.features.len());
        let crit_only = match self {
            BitwiseModel::Tree { crit_only, .. } | BitwiseModel::Mlp { crit_only, .. } => {
                *crit_only
            }
            BitwiseModel::Transformer { model } => {
                return data
                    .groups
                    .iter()
                    .map(|group| {
                        if group.is_empty() {
                            return 0.0;
                        }
                        group
                            .iter()
                            .map(|&r| model.predict(&row_to_sample(&data.rows[r])))
                            .fold(f64::MIN, f64::max)
                    })
                    .collect();
            }
        };
        // Gather the rows each group reads, in group traversal order.
        scratch.reset(nf);
        for group in &data.groups {
            if crit_only {
                if let Some(&r0) = group.first() {
                    scratch.push_row(&data.rows[r0].features);
                }
            } else {
                for &r in group {
                    scratch.push_row(&data.rows[r].features);
                }
            }
        }
        match self {
            BitwiseModel::Tree { model, .. } => model.predict_into(scratch, preds),
            BitwiseModel::Mlp { model, scaler, .. } => {
                scaler.transform_all(scratch);
                *preds = model.predict_all(scratch);
            }
            BitwiseModel::Transformer { .. } => unreachable!(),
        }
        // Reduce back to one value per group (empty groups stay 0.0).
        let mut off = 0usize;
        data.groups
            .iter()
            .map(|group| {
                if group.is_empty() {
                    return 0.0;
                }
                let take = if crit_only { 1 } else { group.len() };
                let v = preds[off..off + take]
                    .iter()
                    .cloned()
                    .fold(f64::MIN, f64::max);
                off += take;
                v
            })
            .collect()
    }
}

/// Persistence for the production (tree-based) model family. The MLP and
/// transformer variants exist only for the Table-5 ablations and are never
/// part of a fitted [`crate::pipeline::RtlTimer`]; encoding one is a logic
/// error.
impl rtlt_store::Codec for BitwiseModel {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        match self {
            BitwiseModel::Tree { model, crit_only } => {
                e.u8(0);
                e.bool(*crit_only);
                model.encode(e);
            }
            BitwiseModel::Mlp { .. } | BitwiseModel::Transformer { .. } => {
                unreachable!("only tree-based bitwise models are persisted")
            }
        }
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        match d.u8()? {
            0 => Ok(BitwiseModel::Tree {
                crit_only: d.bool()?,
                model: Gbdt::decode(d)?,
            }),
            _ => Err(rtlt_store::CodecError::new("BitwiseModel tag")),
        }
    }
}

fn row_to_sample(row: &crate::dataset::PathRow) -> PathSample {
    PathSample {
        ops: row.ops.clone(),
        tok_feats: row.tok_feats.clone(),
        global: row.features[..7].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::build_variant_data;
    use crate::metrics::pearson;
    use rtlt_bog::blast;
    use rtlt_liberty::Library;
    use rtlt_verilog::compile;

    fn variant_and_labels() -> (VariantData, Vec<f64>) {
        let bog = blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] r;
                   reg [15:0] s;
                   always @(posedge clk) begin
                     r <= a + b;
                     s <= s + (r * a[7:0]);
                   end
                   assign q = s;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let lib = Library::pseudo_bog();
        let data = build_variant_data(&bog, &lib, 1.0, 3);
        // Synthetic labels: a monotone transform of the pseudo-STA arrival
        // (learnable from path features).
        let labels: Vec<f64> = data
            .endpoint_sta_at
            .iter()
            .map(|a| 0.5 * a + 0.05 * a * a)
            .collect();
        (data, labels)
    }

    #[test]
    fn tree_max_beats_random_on_self_fit() {
        let (data, labels) = variant_and_labels();
        let corpus = BitwiseCorpus {
            designs: vec![(&data, &labels)],
        };
        let model = BitwiseModel::fit(BitModelKind::TreeMax, &corpus, 1);
        let preds = model.predict_endpoints(&data);
        assert!(pearson(&preds, &labels) > 0.9);
    }

    #[test]
    fn crit_only_uses_single_path() {
        let (data, labels) = variant_and_labels();
        let corpus = BitwiseCorpus {
            designs: vec![(&data, &labels)],
        };
        let model = BitwiseModel::fit(BitModelKind::TreeCritOnly, &corpus, 1);
        let preds = model.predict_endpoints(&data);
        assert_eq!(preds.len(), data.groups.len());
        assert!(pearson(&preds, &labels) > 0.8);
    }

    #[test]
    fn nan_labels_are_skipped() {
        let (data, mut labels) = variant_and_labels();
        labels[0] = f64::NAN;
        let corpus = BitwiseCorpus {
            designs: vec![(&data, &labels)],
        };
        let model = BitwiseModel::fit(BitModelKind::TreeMax, &corpus, 1);
        let preds = model.predict_endpoints(&data);
        assert!(preds.iter().all(|p| p.is_finite()));
    }
}
