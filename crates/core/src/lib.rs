//! **RTL-Timer** — fine-grained RTL-stage timing prediction.
//!
//! Reproduction of *"Annotating Slack Directly on Your Verilog: Fine-Grained
//! RTL Timing Evaluation for Early Optimization"* (DAC 2024). Starting from
//! Verilog source, the pipeline:
//!
//! 1. bit-blasts the RTL into four Boolean-operator-graph representations
//!    (SOG/AIG/AIMG/XAG, via [`rtlt_bog`]),
//! 2. times each as a pseudo netlist ([`rtlt_sta`]) and samples the slowest
//!    plus `K` random paths into every register endpoint,
//! 3. extracts design/cone/path features (paper Table 2, [`features`]),
//! 4. trains bit-wise arrival-time models under a grouped **max-loss**
//!    ([`bitwise`]), ensembles the four representations ([`ensemble`]),
//! 5. aggregates bits → signals (regression + LambdaMART ranking,
//!    [`signal`]) and signals → design WNS/TNS ([`design`]),
//! 6. and applies the predictions: slack **annotation** on the original HDL
//!    ([`annotate`]) and `group_path`/`retime` synthesis optimization
//!    ([`optimize`]).
//!
//! Ground-truth labels come from the synthesis simulator ([`rtlt_synth`]) —
//! the documented substitute for the paper's commercial flow.
//!
//! # Quickstart
//!
//! ```no_run
//! use rtl_timer::pipeline::{DesignSet, RtlTimer, TimerConfig};
//!
//! // Prepare the benchmark suite (compile + blast + label via synthesis).
//! let set = DesignSet::prepare_suite(&TimerConfig::default());
//! // Leave-one-out: train on all designs except b18_1, predict it.
//! let (train, test) = set.split(&["b18_1"]);
//! let model = RtlTimer::fit(&train, &TimerConfig::default());
//! let pred = model.predict(test[0]);
//! println!("signal-wise R = {:.3}", pred.signal_r());
//! ```

pub mod annotate;
pub mod baselines;
pub mod bitwise;
pub mod cache;
pub mod dataset;
pub mod design;
pub mod ensemble;
pub mod features;
pub mod incremental;
pub mod live;
pub mod metrics;
pub mod optimize;
pub mod pipeline;
pub mod report;
pub mod signal;

pub use cache::PrepareKeys;
pub use incremental::{IncrementalAnnotator, ReannotateJob, ReannotateOutcome};
pub use live::{LiveAnnotator, LiveOutcome, LiveService, SessionClient};
pub use metrics::{covr, mape, pearson, r_squared, rank_groups};
pub use pipeline::{
    DesignData, DesignSet, PrepareError, PrepareStages, RtlTimer, StealConfig, StolenPrepare,
    TimerConfig,
};
