//! Reimplementations (in spirit) of the comparison methods in Table 4.
//!
//! None of the original baselines are runnable offline; each is rebuilt
//! from its method description and labeled "-style" (DESIGN.md §2):
//!
//! * **SNS-style** [Xu et al., ISCA'22] — design-level neural regressor on
//!   operator-histogram features (WNS);
//! * **MasterRTL-style** [Fang et al., ICCAD'23] — single-representation
//!   (SOG) tree pipeline for WNS/TNS;
//! * **ICCAD'22-style** [Sengupta et al.] — AST-feature regressor (TNS);
//! * **Customized GNN** [after Wang et al., DAC'23] — message-passing
//!   network on the BOG with endpoint readout (bit-wise AT);
//! * **Signal-direct** — the paper's "w/o bit-wise" ablation: model RTL
//!   signals directly from pseudo-STA aggregates, skipping bit-level
//!   prediction.

use crate::bitwise::{BitModelKind, BitwiseCorpus, BitwiseModel};
use crate::design::{design_row, DesignTimingModel};
use crate::metrics::rank_groups;
use crate::pipeline::DesignData;
use crate::signal::signal_labels;
use rtlt_ml::{
    FeatureMatrix, Gbdt, GbdtParams, Gnn, GnnGraph, GnnParams, LambdaMart, LtrParams, Mlp,
    MlpParams, Scaler, SquaredObjective,
};

// ---------------------------------------------------------------------------
// SNS-style: histogram features → MLP → WNS.
// ---------------------------------------------------------------------------

/// SNS-style whole-design WNS predictor.
#[derive(Debug)]
pub struct SnsStyle {
    mlp: Mlp,
    scaler: Scaler,
}

impl SnsStyle {
    /// Fits on the training designs.
    pub fn fit(train: &[&DesignData], seed: u64) -> SnsStyle {
        let rows: Vec<Vec<f64>> = train.iter().map(|d| d.op_histogram()).collect();
        let targets: Vec<f64> = train.iter().map(|d| d.wns).collect();
        let mut scaled = FeatureMatrix::from_rows(&rows);
        let scaler = Scaler::fit(&scaled);
        scaler.transform_all(&mut scaled);
        let mut mlp = Mlp::new(
            scaled.n_cols(),
            MlpParams {
                hidden: vec![24, 24],
                epochs: 400,
                batch: 8,
                seed,
                ..Default::default()
            },
        );
        mlp.fit_regression(&scaled, &targets);
        SnsStyle { mlp, scaler }
    }

    /// Predicts WNS.
    pub fn predict_wns(&self, d: &DesignData) -> f64 {
        let mut row = d.op_histogram();
        self.scaler.transform(&mut row);
        self.mlp.predict(&row).min(0.0)
    }
}

// ---------------------------------------------------------------------------
// ICCAD'22-style: AST features → GBDT → TNS (and WNS).
// ---------------------------------------------------------------------------

/// ICCAD'22-style AST-level design timing predictor.
#[derive(Debug)]
pub struct AstStyle {
    tns: Gbdt,
    wns: Gbdt,
}

impl AstStyle {
    /// Fits on the training designs.
    pub fn fit(train: &[&DesignData], seed: u64) -> AstStyle {
        let rows = {
            let per_design: Vec<Vec<f64>> = train.iter().map(|d| d.ast_feats.clone()).collect();
            FeatureMatrix::from_rows(&per_design)
        };
        let mut params = GbdtParams::default();
        params.n_trees = 50;
        params.tree.max_depth = 2;
        params.tree.lambda = 2.0;
        params.seed = seed;
        let tns_t: Vec<f64> = train.iter().map(|d| d.tns).collect();
        let wns_t: Vec<f64> = train.iter().map(|d| d.wns).collect();
        AstStyle {
            tns: Gbdt::fit(&rows, &SquaredObjective { targets: tns_t }, &params),
            wns: Gbdt::fit(&rows, &SquaredObjective { targets: wns_t }, &params),
        }
    }

    /// Predicts `(WNS, TNS)`.
    pub fn predict(&self, d: &DesignData) -> (f64, f64) {
        (
            self.wns.predict(&d.ast_feats).min(0.0),
            self.tns.predict(&d.ast_feats).min(0.0),
        )
    }
}

// ---------------------------------------------------------------------------
// MasterRTL-style: SOG-only tree pipeline.
// ---------------------------------------------------------------------------

/// MasterRTL-style WNS/TNS predictor: SOG representation only, no
/// multi-representation ensemble.
#[derive(Debug)]
pub struct MasterRtlStyle {
    bit: BitwiseModel,
    timing: DesignTimingModel,
}

impl MasterRtlStyle {
    /// Fits on the training designs.
    pub fn fit(train: &[&DesignData], seed: u64) -> MasterRtlStyle {
        let corpus = BitwiseCorpus {
            designs: train
                .iter()
                .map(|d| (&d.variant_data[0], &d.labels_at[..]))
                .collect(),
        };
        let bit = BitwiseModel::fit(BitModelKind::TreeMax, &corpus, seed);
        let mut rows = FeatureMatrix::new(crate::design::DESIGN_ROW_NAMES.len());
        let mut wns_t = Vec::new();
        let mut tns_t = Vec::new();
        let mut eps = Vec::new();
        let mut scratch = FeatureMatrix::default();
        let mut preds = Vec::new();
        for d in train {
            let bits = bit.predict_endpoints_with(&d.variant_data[0], &mut scratch, &mut preds);
            rows.push_row(&design_row(
                &bits,
                d.clock,
                d.setup,
                &d.variant_data[0].design_feats,
            ));
            wns_t.push(d.wns);
            tns_t.push(d.tns);
            eps.push(d.labels_at.len() as f64);
        }
        let timing = DesignTimingModel::fit(&rows, &wns_t, &tns_t, &eps, seed ^ 2);
        MasterRtlStyle { bit, timing }
    }

    /// Predicts `(WNS, TNS)`.
    pub fn predict(&self, d: &DesignData) -> (f64, f64) {
        let bits = self.bit.predict_endpoints(&d.variant_data[0]);
        let row = design_row(&bits, d.clock, d.setup, &d.variant_data[0].design_feats);
        self.timing.predict(&row, d.labels_at.len() as f64)
    }
}

// ---------------------------------------------------------------------------
// Customized GNN baseline.
// ---------------------------------------------------------------------------

/// Builds the GNN input graph from a design's SOG.
pub fn gnn_graph(d: &DesignData) -> GnnGraph {
    let bog = &d.sog;
    let fanout = bog.fanout_counts();
    let levels = bog.levels();
    let max_level = levels.iter().copied().max().unwrap_or(1).max(1) as f64;
    let node_feats: Vec<Vec<f64>> = (0..bog.len() as u32)
        .map(|i| {
            let mut f = vec![0.0; 8 + 2];
            let cls = crate::features::op_class(bog.node(i).op);
            f[cls] = 1.0;
            f[8] = (fanout[i as usize] as f64).ln_1p();
            f[9] = levels[i as usize] as f64 / max_level;
            f
        })
        .collect();
    let fanins: Vec<Vec<u32>> = (0..bog.len() as u32)
        .map(|i| bog.fanins(i).to_vec())
        .collect();
    let endpoints: Vec<(usize, f64)> = bog
        .regs()
        .iter()
        .enumerate()
        .filter(|(e, _)| d.labels_at[*e].is_finite())
        .map(|(e, r)| (r.d as usize, d.labels_at[e]))
        .collect();
    GnnGraph {
        node_feats,
        fanins,
        endpoints,
    }
}

/// Customized-GNN bit-wise baseline.
#[derive(Debug)]
pub struct GnnBaseline {
    gnn: Gnn,
}

impl GnnBaseline {
    /// Fits on the training designs.
    pub fn fit(train: &[&DesignData], seed: u64) -> GnnBaseline {
        let graphs: Vec<GnnGraph> = train.iter().map(|d| gnn_graph(d)).collect();
        let mut gnn = Gnn::new(
            10,
            GnnParams {
                epochs: 12,
                seed,
                ..Default::default()
            },
        );
        gnn.fit(&graphs);
        GnnBaseline { gnn }
    }

    /// Predicts per-endpoint arrivals of a design (aligned with the
    /// labeled endpoints of [`gnn_graph`]).
    pub fn predict(&self, d: &DesignData) -> (Vec<f64>, Vec<f64>) {
        let g = gnn_graph(d);
        let preds = self.gnn.predict(&g);
        let labels = g.endpoints.iter().map(|&(_, y)| y).collect();
        (preds, labels)
    }
}

// ---------------------------------------------------------------------------
// Signal-direct ablation ("w/o bit-wise").
// ---------------------------------------------------------------------------

/// Direct signal-level model skipping bit-wise prediction entirely.
#[derive(Debug)]
pub struct SignalDirect {
    regression: Gbdt,
    ranking: LambdaMart,
}

/// Signal features computable without any bit-level model: aggregates of
/// the pseudo-STA arrivals plus design features.
pub fn direct_signal_rows(d: &DesignData) -> FeatureMatrix {
    let sog = &d.variant_data[0];
    let mut out = FeatureMatrix::new(3 + sog.design_feats.len());
    let mut row = Vec::with_capacity(out.n_cols());
    for s in d.signals() {
        let ats: Vec<f64> = s
            .regs
            .iter()
            .map(|&b| sog.endpoint_sta_at[b as usize])
            .collect();
        let mean = ats.iter().sum::<f64>() / ats.len().max(1) as f64;
        let max = ats.iter().cloned().fold(f64::MIN, f64::max);
        row.clear();
        row.extend([max, mean, (s.width as f64).ln_1p()]);
        row.extend(sog.design_feats.iter().copied());
        out.push_row(&row);
    }
    out
}

impl SignalDirect {
    /// Fits regression + ranking on direct signal features.
    pub fn fit(train: &[&DesignData], seed: u64) -> SignalDirect {
        let cols = train
            .first()
            .map_or(3, |d| 3 + d.variant_data[0].design_feats.len());
        let mut rows = FeatureMatrix::new(cols);
        let mut targets = Vec::new();
        let mut queries = Vec::new();
        let mut relevance = Vec::new();
        for d in train {
            let drows = direct_signal_rows(d);
            let labels = signal_labels(&d.labels_at, d.signals());
            let valid: Vec<usize> = (0..drows.n_rows())
                .filter(|&i| labels[i].is_finite())
                .collect();
            if valid.is_empty() {
                continue;
            }
            let lv: Vec<f64> = valid.iter().map(|&i| labels[i]).collect();
            let groups = rank_groups(&lv);
            let mut q = Vec::new();
            for (k, &i) in valid.iter().enumerate() {
                q.push(rows.n_rows());
                rows.push_row(drows.row(i));
                targets.push(lv[k]);
                relevance.push(3.0 - groups[k] as f64);
            }
            queries.push(q);
        }
        let mut params = GbdtParams::default();
        params.n_trees = 100;
        params.seed = seed;
        let regression = Gbdt::fit(&rows, &SquaredObjective { targets }, &params);
        let mut ltr = LtrParams::default();
        ltr.gbdt.n_trees = 60;
        ltr.gbdt.seed = seed ^ 3;
        let ranking = LambdaMart::fit(&rows, &queries, &relevance, &ltr);
        SignalDirect {
            regression,
            ranking,
        }
    }

    /// Predicts `(signal arrivals, ranking scores)`.
    pub fn predict(&self, d: &DesignData) -> (Vec<f64>, Vec<f64>) {
        let rows = direct_signal_rows(d);
        (
            self.regression.predict_all(&rows),
            self.ranking.score_all(&rows),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DesignSet, TimerConfig};

    fn small_set() -> DesignSet {
        let mk = |name: &str, w: u32| {
            (
                name.to_owned(),
                format!(
                    "module {name}(input clk, input [{x}:0] a, input [{x}:0] b, output [{x}:0] q);
                       reg [{x}:0] r;
                       reg [{x}:0] s;
                       always @(posedge clk) begin
                         r <= a + b;
                         s <= s ^ (r + a);
                       end
                       assign q = s;
                     endmodule",
                    x = w - 1
                ),
            )
        };
        let sources = vec![mk("x0", 8), mk("x1", 10), mk("x2", 12)];
        DesignSet::prepare_named_or_panic(
            &sources,
            &TimerConfig {
                threads: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn all_baselines_fit_and_predict() {
        let set = small_set();
        let (train, test) = set.split(&["x2"]);
        let d = test[0];

        let sns = SnsStyle::fit(&train, 1);
        assert!(sns.predict_wns(d) <= 0.0);

        let ast = AstStyle::fit(&train, 1);
        let (w, t) = ast.predict(d);
        assert!(w <= 0.0 && t <= 0.0);

        let master = MasterRtlStyle::fit(&train, 1);
        let (w2, t2) = master.predict(d);
        assert!(w2 <= 0.0 && t2 <= 0.0);

        let gnn = GnnBaseline::fit(&train, 1);
        let (p, l) = gnn.predict(d);
        assert_eq!(p.len(), l.len());

        let direct = SignalDirect::fit(&train, 1);
        let (reg, rank) = direct.predict(d);
        assert_eq!(reg.len(), d.signals().len());
        assert_eq!(rank.len(), d.signals().len());
    }
}
