//! Design-level WNS/TNS modeling (paper §3.4.3): compute direct estimates
//! from the predicted per-endpoint slacks, then refine with a tree model
//! that also sees design-scale features.

use rtlt_ml::{FeatureMatrix, Gbdt, GbdtParams, SquaredObjective};

/// Names of the design-level features.
pub const DESIGN_ROW_NAMES: [&str; 13] = [
    "direct_wns",
    "direct_tns_per_ep",
    "violation_frac",
    "at_q50",
    "at_q90",
    "at_q99",
    "at_max",
    "at_mean",
    "clock",
    "log_endpoints",
    "log_seq_cells",
    "log_comb_cells",
    "log_total_cells",
];

/// Direct WNS/TNS computed from predicted endpoint arrivals.
pub fn direct_wns_tns(pred_at: &[f64], clock: f64, setup: f64) -> (f64, f64) {
    let mut wns = 0.0f64;
    let mut tns = 0.0f64;
    for &at in pred_at {
        if !at.is_finite() {
            continue;
        }
        let slack = clock - setup - at;
        if slack < 0.0 {
            tns += slack;
            wns = wns.min(slack);
        }
    }
    (wns, tns)
}

/// Builds the design-level feature row.
pub fn design_row(pred_at: &[f64], clock: f64, setup: f64, design_feats: &[f64]) -> Vec<f64> {
    let finite: Vec<f64> = pred_at.iter().cloned().filter(|a| a.is_finite()).collect();
    let n = finite.len().max(1);
    let mut sorted = finite.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |f: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[(((sorted.len() - 1) as f64) * f) as usize]
        }
    };
    let (wns, tns) = direct_wns_tns(&finite, clock, setup);
    let violations = finite.iter().filter(|&&a| clock - setup - a < 0.0).count();
    let mut row = vec![
        wns,
        tns / n as f64,
        violations as f64 / n as f64,
        q(0.5),
        q(0.9),
        q(0.99),
        sorted.last().copied().unwrap_or(0.0),
        finite.iter().sum::<f64>() / n as f64,
        clock,
        (n as f64).ln_1p(),
    ];
    row.extend(design_feats.iter().take(3).copied());
    row
}

/// Fitted WNS + TNS regressors. TNS is modeled per-endpoint then rescaled
/// (designs differ by orders of magnitude in endpoint count).
#[derive(Debug)]
pub struct DesignTimingModel {
    wns: Gbdt,
    tns: Gbdt,
}

impl DesignTimingModel {
    /// Fits on one row per training design.
    ///
    /// `rows` from [`design_row`]; `wns_labels`/`tns_labels` from the
    /// synthesis ground truth; `ep_counts` = labeled endpoint count per
    /// design.
    pub fn fit(
        rows: &FeatureMatrix,
        wns_labels: &[f64],
        tns_labels: &[f64],
        ep_counts: &[f64],
        seed: u64,
    ) -> DesignTimingModel {
        // Few samples (≈ 20 designs): shallow, strongly-regularized trees.
        let mut params = GbdtParams::default();
        params.n_trees = 60;
        params.learning_rate = 0.12;
        params.tree.max_depth = 2;
        params.tree.lambda = 2.0;
        params.tree.min_child_weight = 2.0;
        params.subsample = 0.9;
        params.seed = seed;
        let wns = Gbdt::fit(
            rows,
            &SquaredObjective {
                targets: wns_labels.to_vec(),
            },
            &params,
        );
        let tns_per_ep: Vec<f64> = tns_labels
            .iter()
            .zip(ep_counts)
            .map(|(t, n)| t / n.max(1.0))
            .collect();
        let tns = Gbdt::fit(
            rows,
            &SquaredObjective {
                targets: tns_per_ep,
            },
            &params,
        );
        DesignTimingModel { wns, tns }
    }

    /// Predicts `(WNS, TNS)` for a design row with `n_endpoints`.
    pub fn predict(&self, row: &[f64], n_endpoints: f64) -> (f64, f64) {
        let wns = self.wns.predict(row).min(0.0);
        let tns = (self.tns.predict(row) * n_endpoints.max(1.0)).min(0.0);
        (wns, tns)
    }
}

impl rtlt_store::Codec for DesignTimingModel {
    fn encode(&self, e: &mut rtlt_store::Enc) {
        self.wns.encode(e);
        self.tns.encode(e);
    }
    fn decode(d: &mut rtlt_store::Dec<'_>) -> Result<Self, rtlt_store::CodecError> {
        Ok(DesignTimingModel {
            wns: Gbdt::decode(d)?,
            tns: Gbdt::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_values_match_manual_sum() {
        let at = [0.5, 0.9, 1.4];
        let (wns, tns) = direct_wns_tns(&at, 1.0, 0.035);
        // slacks: 0.465, 0.065, -0.435.
        assert!((wns + 0.435).abs() < 1e-9);
        assert!((tns + 0.435).abs() < 1e-9);
    }

    #[test]
    fn design_row_shape() {
        let row = design_row(&[0.1, 0.2, 0.9], 0.5, 0.035, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(row.len(), DESIGN_ROW_NAMES.len());
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn model_recovers_monotone_relation() {
        // Synthetic designs whose true WNS/TNS are close to the direct
        // estimates.
        let mut rows = Vec::new();
        let mut wns = Vec::new();
        let mut tns = Vec::new();
        let mut eps = Vec::new();
        for d in 0..16 {
            let n = 50 + d * 10;
            let at: Vec<f64> = (0..n)
                .map(|i| 0.2 + 0.8 * (i as f64 / n as f64) + d as f64 * 0.01)
                .collect();
            let clock = 0.8;
            let row = design_row(&at, clock, 0.035, &[5.0, 8.0, 8.5, 30.0]);
            let (dw, dt) = direct_wns_tns(&at, clock, 0.035);
            rows.push(row);
            wns.push(dw * 1.1 - 0.01);
            tns.push(dt * 1.2 - 0.1);
            eps.push(n as f64);
        }
        let model = DesignTimingModel::fit(&FeatureMatrix::from_rows(&rows), &wns, &tns, &eps, 3);
        let mut pred_w = Vec::new();
        let mut pred_t = Vec::new();
        for (row, n) in rows.iter().zip(&eps) {
            let (w, t) = model.predict(row, *n);
            pred_w.push(w);
            pred_t.push(t);
        }
        assert!(crate::metrics::pearson(&pred_w, &wns) > 0.9);
        assert!(crate::metrics::pearson(&pred_t, &tns) > 0.9);
    }
}
