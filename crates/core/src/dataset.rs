//! Path-level dataset construction (the register-oriented RTL processing of
//! paper §3.2): for every register endpoint, the slowest path plus `K`
//! random paths from its input cone, featurized for the bit-wise models.

use crate::features::{op_class, path_features, token_features};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtlt_bog::{input_cone, Bog, BogVariant, Endpoint};
use rtlt_liberty::Library;
use rtlt_sta::{Sta, StaConfig};

/// One featurized timing path.
#[derive(Debug, Clone)]
pub struct PathRow {
    /// Table-2 feature vector ([`crate::features::PATH_FEATURE_NAMES`]).
    pub features: Vec<f64>,
    /// Operator-class token sequence (source → endpoint).
    pub ops: Vec<usize>,
    /// Per-token features.
    pub tok_feats: Vec<Vec<f64>>,
    /// Owning register endpoint index.
    pub endpoint: usize,
}

/// All sampled paths of one design under one BOG representation.
#[derive(Debug, Clone)]
pub struct VariantData {
    /// Which representation.
    pub variant: BogVariant,
    /// Path rows.
    pub rows: Vec<PathRow>,
    /// Row indices per register endpoint.
    pub groups: Vec<Vec<usize>>,
    /// Pseudo-STA arrival per register endpoint.
    pub endpoint_sta_at: Vec<f64>,
    /// Driving-register count per endpoint (cone feature, reused by the
    /// ensemble).
    pub driving_regs: Vec<f64>,
    /// Design-level features of this representation.
    pub design_feats: Vec<f64>,
}

/// Maximum random paths sampled per endpoint (on top of the slowest path).
pub const MAX_RANDOM_PATHS: usize = 5;

/// Builds the path dataset for one representation of a design.
pub fn build_variant_data(bog: &Bog, lib: &Library, clock: f64, seed: u64) -> VariantData {
    let cfg = StaConfig {
        clock_period: clock,
        ..StaConfig::default()
    };
    let sta = Sta::run(bog, lib, cfg);
    let fanout = bog.fanout_counts();
    let n_eps = bog.regs().len();

    // Endpoint rank percentile by pseudo-STA arrival.
    let ats: Vec<f64> = (0..n_eps).map(|i| sta.result().endpoint_at[i]).collect();
    let mut order: Vec<usize> = (0..n_eps).collect();
    order.sort_by(|&a, &b| ats[a].partial_cmp(&ats[b]).expect("finite"));
    let mut rank_pct = vec![0.0f64; n_eps];
    for (rank, &i) in order.iter().enumerate() {
        rank_pct[i] = if n_eps > 1 {
            rank as f64 / (n_eps - 1) as f64
        } else {
            0.5
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(n_eps);
    let mut driving_regs = Vec::with_capacity(n_eps);

    for e in 0..n_eps {
        let ep = Endpoint::Reg(e as u32);
        let cone = input_cone(bog, bog.endpoint_node(ep));
        driving_regs.push(cone.driving_regs as f64);
        let mut group = Vec::new();

        // Slowest path (the pseudo-STA critical path S*→i).
        let crit = sta.critical_path(ep);
        // K random paths, proportional to the driving-register count
        // (paper: "the sample number K_i is proportional to the number of
        // driving registers").
        let k = (cone.driving_regs / 3).clamp(0, MAX_RANDOM_PATHS);
        let crit_nodes = crit.nodes.clone();
        let mut paths = vec![crit];
        for p in sta.sample_paths(ep, k, &mut rng) {
            if p.nodes != crit_nodes {
                paths.push(p);
            }
        }

        for p in paths {
            let features = path_features(&sta, bog, &p, &cone, rank_pct[e], &fanout);
            let ops = p.nodes.iter().map(|&n| op_class(bog.node(n).op)).collect();
            let tok_feats = token_features(&sta, &p, &fanout);
            group.push(rows.len());
            rows.push(PathRow {
                features,
                ops,
                tok_feats,
                endpoint: e,
            });
        }
        groups.push(group);
    }

    VariantData {
        variant: bog.variant,
        rows,
        groups,
        endpoint_sta_at: ats,
        driving_regs,
        design_feats: crate::features::design_features(bog),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn bog() -> Bog {
        blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] r;
                   reg [15:0] s;
                   always @(posedge clk) begin
                     r <= a + b;
                     s <= s + (r ^ a);
                   end
                   assign q = s;
                 endmodule",
                "m",
            )
            .unwrap(),
        )
    }

    #[test]
    fn dataset_covers_every_endpoint() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let data = build_variant_data(&bog, &lib, 1.0, 1);
        assert_eq!(data.groups.len(), bog.regs().len());
        assert!(
            data.groups.iter().all(|g| !g.is_empty()),
            "each endpoint has >= 1 path"
        );
        // First row of every group is the slowest path: its arrival equals
        // the endpoint pseudo-STA arrival.
        for (e, g) in data.groups.iter().enumerate() {
            let crit_arrival = data.rows[g[0]].features[7];
            assert!((crit_arrival - data.endpoint_sta_at[e]).abs() < 1e-9);
            for &r in g {
                assert_eq!(data.rows[r].endpoint, e);
                assert!(data.rows[r].features[7] <= crit_arrival + 1e-9);
            }
        }
    }

    #[test]
    fn bigger_cones_get_more_paths() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let data = build_variant_data(&bog, &lib, 1.0, 1);
        // `s` endpoints depend on r+a (wide cones) → sampled extra paths;
        // at least one endpoint should have multiple paths.
        assert!(data.groups.iter().any(|g| g.len() > 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let a = build_variant_data(&bog, &lib, 1.0, 9);
        let b = build_variant_data(&bog, &lib, 1.0, 9);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.features, y.features);
        }
    }
}
