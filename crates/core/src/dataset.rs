//! Path-level dataset construction (the register-oriented RTL processing of
//! paper §3.2): for every register endpoint, the slowest path plus `K`
//! random paths from its input cone, featurized for the bit-wise models.
//!
//! Two construction paths exist:
//!
//! * [`build_variant_data`] — the monolithic original: one global pseudo-STA
//!   over the full graph (kept for micro-benchmarks and unit tests);
//! * [`build_all_variant_data`] — the **sharded** pipeline path: one
//!   [`ConeShard`] per RTL signal, computed on the signal's canonically
//!   extracted input cone ([`rtlt_bog::extract_signal_cone`]) and memoized
//!   in the store under a module-set × cone-content key. Shards carry only
//!   cone-local quantities; the cheap merge step splices in the
//!   design-global features (rank percentile, cell counts). Editing one
//!   module recomputes only the shards whose cones it feeds.
//!
//! The sharded path further splits each shard into a **seed-independent
//! kernel** and a **seed-dependent replay**. Everything `build_cone_shard`
//! derives before the RNG is ever consulted — levelized pseudo-STA tables,
//! per-endpoint cone summaries, the critical path and its featurized row —
//! is a pure function of the cone's canonical content, so it is computed
//! once per *unique* cone ([`ConeEval`], memoized in the `conesta` store
//! namespace plus an in-process once-map) and shared by every signal whose
//! extracted cone is byte-identical (bit lanes of one word, replicated
//! blocks). The per-signal seeded path sampling then *replays* over the
//! shared evaluation; output bytes are identical to the legacy per-signal
//! path (`RTLT_NO_CONE_DEDUP=1` forces the latter for verification).

use crate::cache::{conesta_key, shard_key, stage};
use crate::features::{design_features, op_class, path_features, token_features};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtlt_bog::{input_cone_scratch, Bog, BogVariant, ConeInfo, ConeScratch, Endpoint, NodeId};
use rtlt_liberty::Library;
use rtlt_sta::{LevelScratch, Sta, StaConfig, StaResult};
use rtlt_store::{ContentHash, Store};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One featurized timing path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathRow {
    /// Table-2 feature vector ([`crate::features::PATH_FEATURE_NAMES`]).
    pub features: Vec<f64>,
    /// Operator-class token sequence (source → endpoint).
    pub ops: Vec<usize>,
    /// Per-token features.
    pub tok_feats: Vec<Vec<f64>>,
    /// Owning register endpoint index.
    pub endpoint: usize,
}

/// All sampled paths of one design under one BOG representation.
#[derive(Debug, Clone)]
pub struct VariantData {
    /// Which representation.
    pub variant: BogVariant,
    /// Path rows.
    pub rows: Vec<PathRow>,
    /// Row indices per register endpoint.
    pub groups: Vec<Vec<usize>>,
    /// Pseudo-STA arrival per register endpoint.
    pub endpoint_sta_at: Vec<f64>,
    /// Driving-register count per endpoint (cone feature, reused by the
    /// ensemble).
    pub driving_regs: Vec<f64>,
    /// Design-level features of this representation.
    pub design_feats: Vec<f64>,
}

/// Maximum random paths sampled per endpoint (on top of the slowest path).
pub const MAX_RANDOM_PATHS: usize = 5;

/// Builds the path dataset for one representation of a design.
pub fn build_variant_data(bog: &Bog, lib: &Library, clock: f64, seed: u64) -> VariantData {
    let cfg = StaConfig {
        clock_period: clock,
        ..StaConfig::default()
    };
    let sta = Sta::run(bog, lib, cfg);
    let fanout = bog.fanout_counts();
    let design_feats = crate::features::design_features(bog);
    let mut cone_scratch = ConeScratch::new();
    cone_scratch.begin(bog);
    let n_eps = bog.regs().len();

    // Endpoint rank percentile by pseudo-STA arrival.
    let ats: Vec<f64> = (0..n_eps).map(|i| sta.result().endpoint_at[i]).collect();
    let mut order: Vec<usize> = (0..n_eps).collect();
    order.sort_by(|&a, &b| ats[a].partial_cmp(&ats[b]).expect("finite"));
    let mut rank_pct = vec![0.0f64; n_eps];
    for (rank, &i) in order.iter().enumerate() {
        rank_pct[i] = if n_eps > 1 {
            rank as f64 / (n_eps - 1) as f64
        } else {
            0.5
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(n_eps);
    let mut driving_regs = Vec::with_capacity(n_eps);

    for e in 0..n_eps {
        let ep = Endpoint::Reg(e as u32);
        let cone = input_cone_scratch(bog, bog.endpoint_node(ep), &mut cone_scratch);
        driving_regs.push(cone.driving_regs as f64);
        let mut group = Vec::new();

        // Slowest path (the pseudo-STA critical path S*→i).
        let crit = sta.critical_path(ep);
        // K random paths, proportional to the driving-register count
        // (paper: "the sample number K_i is proportional to the number of
        // driving registers").
        let k = (cone.driving_regs / 3).clamp(0, MAX_RANDOM_PATHS);
        let crit_nodes = crit.nodes.clone();
        let mut paths = vec![crit];
        for p in sta.sample_paths(ep, k, &mut rng) {
            if p.nodes != crit_nodes {
                paths.push(p);
            }
        }

        for p in paths {
            let features = path_features(&sta, bog, &p, &cone, rank_pct[e], &fanout, &design_feats);
            let ops = p.nodes.iter().map(|&n| op_class(bog.node(n).op)).collect();
            let tok_feats = token_features(&sta, &p, &fanout);
            group.push(rows.len());
            rows.push(PathRow {
                features,
                ops,
                tok_feats,
                endpoint: e,
            });
        }
        groups.push(group);
    }

    VariantData {
        variant: bog.variant,
        rows,
        groups,
        endpoint_sta_at: ats,
        driving_regs,
        design_feats,
    }
}

/// One signal's slice of a variant dataset: everything the per-endpoint
/// processing derives from the signal's input cone alone. Global context
/// (rank percentile, design cell counts) is deliberately absent — the merge
/// step fills it — so a shard is reusable across any edit that leaves the
/// cone's feeding modules unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeShard {
    /// Cone-local pseudo-STA arrival per endpoint (bit), LSB first.
    pub sta_at: Vec<f64>,
    /// Driving-register count per endpoint.
    pub driving_regs: Vec<f64>,
    /// Path rows; `endpoint` is the bit index within the signal, and
    /// feature slots 0..4 (rank percentile + design features) are
    /// placeholders overwritten at merge.
    pub rows: Vec<PathRow>,
    /// Row indices per endpoint (bit).
    pub groups: Vec<Vec<usize>>,
}

/// Deterministic per-shard sampling seed: a function of the design seed,
/// the representation, and the signal *name* (stable across edits — signal
/// indices are not).
pub fn shard_seed(design_seed: u64, variant_idx: usize, signal: &str) -> u64 {
    let mut h = design_seed ^ (variant_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in signal.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds one signal's shard on its extracted cone: cone-local pseudo-STA,
/// then the slowest + `K` random paths per bit endpoint. The extracted
/// graph's first `n_eps` registers are the signal's bits; boundary
/// registers beyond them are launch points only.
pub fn build_cone_shard(
    sub: &Bog,
    n_eps: usize,
    lib: &Library,
    clock: f64,
    seed: u64,
) -> ConeShard {
    let cfg = StaConfig {
        clock_period: clock,
        ..StaConfig::default()
    };
    let sta = Sta::run(sub, lib, cfg);
    let fanout = sub.fanout_counts();
    let design = design_features(sub);
    let mut cone_scratch = ConeScratch::new();
    cone_scratch.begin(sub);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shard = ConeShard {
        sta_at: Vec::with_capacity(n_eps),
        driving_regs: Vec::with_capacity(n_eps),
        rows: Vec::new(),
        groups: Vec::with_capacity(n_eps),
    };
    for e in 0..n_eps {
        let ep = Endpoint::Reg(e as u32);
        let cone = input_cone_scratch(sub, sub.endpoint_node(ep), &mut cone_scratch);
        shard.driving_regs.push(cone.driving_regs as f64);
        shard.sta_at.push(sta.result().endpoint_at[e]);
        let crit = sta.critical_path(ep);
        let k = (cone.driving_regs / 3).clamp(0, MAX_RANDOM_PATHS);
        let crit_nodes = crit.nodes.clone();
        let mut paths = vec![crit];
        for p in sta.sample_paths(ep, k, &mut rng) {
            if p.nodes != crit_nodes {
                paths.push(p);
            }
        }
        let mut group = Vec::with_capacity(paths.len());
        for p in paths {
            // Slots 0..4 (rank percentile + design-level features) are
            // filled at merge; the placeholder values computed here from
            // the sub-graph are overwritten.
            let features = path_features(&sta, sub, &p, &cone, 0.0, &fanout, &design);
            let ops = p.nodes.iter().map(|&n| op_class(sub.node(n).op)).collect();
            let tok_feats = token_features(&sta, &p, &fanout);
            group.push(shard.rows.len());
            shard.rows.push(PathRow {
                features,
                ops,
                tok_feats,
                endpoint: e,
            });
        }
        shard.groups.push(group);
    }
    shard
}

/// The seed-independent evaluation of one canonical cone under one
/// representation: everything [`build_cone_shard`] derives before the RNG
/// is ever consulted. One evaluation is shared by all signals whose
/// extracted cones are byte-identical — within a design through the
/// in-process once-map, across designs and runs through the `conesta`
/// store namespace ([`crate::cache::conesta_key`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ConeEval {
    /// Pseudo-STA tables of the variant-converted cone (levelized kernel).
    pub sta: Arc<StaResult>,
    /// Fanout counts per node.
    pub fanout: Vec<u32>,
    /// Input-cone summary per endpoint (bit).
    pub cones: Vec<ConeInfo>,
    /// Critical-path node sequence per endpoint — the dedup filter the
    /// replay applies to sampled paths.
    pub crit_nodes: Vec<Vec<NodeId>>,
    /// Featurized critical-path row per endpoint. Global slots 0..4 are
    /// placeholders, same contract as [`ConeShard::rows`].
    pub crit_rows: Vec<PathRow>,
    /// Design features of the variant-converted cone — per-graph constants
    /// that fill the placeholder slots 1..4 of every replayed row (two full
    /// node passes each, so computed once here instead of once per row).
    pub design: Vec<f64>,
}

/// Computes the seed-independent evaluation of a variant-converted cone:
/// levelized pseudo-STA over `levels`-backed SoA tables, then per
/// endpoint the input-cone summary (via the reused `cones` scratch, whose
/// depth memo is shared across the cone's endpoints), critical path, and
/// its featurized row. Bit-identical to what [`build_cone_shard`] derives
/// for the same inputs.
pub fn compute_cone_eval(
    vbog: &Bog,
    n_eps: usize,
    lib: &Library,
    clock: f64,
    levels: &mut LevelScratch,
    cone_scratch: &mut ConeScratch,
) -> ConeEval {
    let cfg = StaConfig {
        clock_period: clock,
        ..StaConfig::default()
    };
    let sta = Sta::run_levelized(vbog, lib, cfg, levels);
    let fanout = vbog.fanout_counts();
    let design = design_features(vbog);
    cone_scratch.begin(vbog);
    let mut cones = Vec::with_capacity(n_eps);
    let mut crit_nodes = Vec::with_capacity(n_eps);
    let mut crit_rows = Vec::with_capacity(n_eps);
    for e in 0..n_eps {
        let ep = Endpoint::Reg(e as u32);
        let cone = input_cone_scratch(vbog, vbog.endpoint_node(ep), cone_scratch);
        let crit = sta.critical_path(ep);
        let features = path_features(&sta, vbog, &crit, &cone, 0.0, &fanout, &design);
        let ops = crit
            .nodes
            .iter()
            .map(|&n| op_class(vbog.node(n).op))
            .collect();
        let tok_feats = token_features(&sta, &crit, &fanout);
        crit_rows.push(PathRow {
            features,
            ops,
            tok_feats,
            endpoint: e,
        });
        crit_nodes.push(crit.nodes);
        cones.push(cone);
    }
    ConeEval {
        sta: sta.result_arc(),
        fanout,
        cones,
        crit_nodes,
        crit_rows,
        design,
    }
}

/// Replays the seed-dependent part of [`build_cone_shard`] over a shared
/// evaluation: re-seeds the sampler and draws the `K` random paths per
/// endpoint against the already-computed STA tables. The RNG consumption
/// sequence matches `build_cone_shard` exactly (all draws happen inside
/// `sample_paths`), so the resulting shard is bit-identical.
pub fn replay_cone_shard(
    vbog: &Bog,
    eval: &ConeEval,
    n_eps: usize,
    lib: &Library,
    clock: f64,
    seed: u64,
) -> ConeShard {
    replay_cone_shard_with(vbog, eval, n_eps, lib, clock, seed, |eval, e| {
        eval.crit_rows[e].clone()
    })
}

/// [`replay_cone_shard`] consuming the evaluation: critical-path rows are
/// moved into the shard instead of deep-cloned. This is the singleton-cone
/// fast path — an evaluation used by exactly one signal never needs its
/// rows again.
pub fn replay_cone_shard_owned(
    vbog: &Bog,
    mut eval: ConeEval,
    n_eps: usize,
    lib: &Library,
    clock: f64,
    seed: u64,
) -> ConeShard {
    let mut crit_rows = std::mem::take(&mut eval.crit_rows);
    replay_cone_shard_with(vbog, &eval, n_eps, lib, clock, seed, |_, e| {
        std::mem::take(&mut crit_rows[e])
    })
}

fn replay_cone_shard_with(
    vbog: &Bog,
    eval: &ConeEval,
    n_eps: usize,
    lib: &Library,
    clock: f64,
    seed: u64,
    mut crit_row: impl FnMut(&ConeEval, usize) -> PathRow,
) -> ConeShard {
    let cfg = StaConfig {
        clock_period: clock,
        ..StaConfig::default()
    };
    let sta = Sta::with_result(vbog, lib, cfg, Arc::clone(&eval.sta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shard = ConeShard {
        sta_at: Vec::with_capacity(n_eps),
        driving_regs: Vec::with_capacity(n_eps),
        rows: Vec::new(),
        groups: Vec::with_capacity(n_eps),
    };
    for e in 0..n_eps {
        let ep = Endpoint::Reg(e as u32);
        let cone = &eval.cones[e];
        shard.driving_regs.push(cone.driving_regs as f64);
        shard.sta_at.push(eval.sta.endpoint_at[e]);
        let k = (cone.driving_regs / 3).clamp(0, MAX_RANDOM_PATHS);
        let crit_nodes = &eval.crit_nodes[e];
        let mut group = vec![shard.rows.len()];
        shard.rows.push(crit_row(eval, e));
        for p in sta.sample_paths(ep, k, &mut rng) {
            if &p.nodes != crit_nodes {
                let features = path_features(&sta, vbog, &p, cone, 0.0, &eval.fanout, &eval.design);
                let ops = p.nodes.iter().map(|&n| op_class(vbog.node(n).op)).collect();
                let tok_feats = token_features(&sta, &p, &eval.fanout);
                group.push(shard.rows.len());
                shard.rows.push(PathRow {
                    features,
                    ops,
                    tok_feats,
                    endpoint: e,
                });
            }
        }
        shard.groups.push(group);
    }
    shard
}

static TOTAL_SIGNALS: AtomicU64 = AtomicU64::new(0);
static UNIQUE_CONES: AtomicU64 = AtomicU64::new(0);
static SAVED_EVALS: AtomicU64 = AtomicU64::new(0);
static FEATURIZE_NANOS: AtomicU64 = AtomicU64::new(0);

/// Process-wide shared-cone featurization counters, accumulated by every
/// [`build_all_variant_data`] call (cache-warm or cold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConeDedupStats {
    /// Signals featurized (one canonical extraction each).
    pub total_signals: u64,
    /// Distinct canonical cone contents among them (per design, summed).
    pub unique_cones: u64,
    /// Seed-independent evaluations answered by the once-map or the
    /// `conesta` namespace instead of being recomputed.
    pub saved_evals: u64,
    /// Wall time spent inside `build_all_variant_data` (seconds, summed
    /// across threads).
    pub featurize_seconds: f64,
}

/// Snapshot of the shared-cone dedup counters.
pub fn cone_dedup_stats() -> ConeDedupStats {
    ConeDedupStats {
        total_signals: TOTAL_SIGNALS.load(Ordering::Relaxed),
        unique_cones: UNIQUE_CONES.load(Ordering::Relaxed),
        saved_evals: SAVED_EVALS.load(Ordering::Relaxed),
        featurize_seconds: FEATURIZE_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
    }
}

/// Whether shared-cone evaluation is active (default). `RTLT_NO_CONE_DEDUP=1`
/// forces the legacy per-signal evaluation path — the escape hatch for
/// byte-identity verification and for bisecting featurize regressions.
pub(crate) fn cone_dedup_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !std::env::var("RTLT_NO_CONE_DEDUP")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Worker-local scratch for the featurize hot loop: the levelized kernel's
/// topology tables plus the per-variant merge buffers that used to be
/// reallocated for every variant of every design. One instance per worker
/// thread (see `rtlt_runtime::try_par_map_with`); buffers grow to the
/// largest design seen and are reused.
#[derive(Debug, Default)]
pub struct FeaturizeScratch {
    /// Levelized-kernel topology tables.
    pub levels: LevelScratch,
    /// Input-cone traversal scratch (stamped visited set + shared depth
    /// memo), reset per cone graph.
    pub cones: ConeScratch,
    /// Endpoint permutation reused by the merge's rank sort.
    order: Vec<usize>,
    /// Rank-percentile table reused by the merge.
    rank_pct: Vec<f64>,
    /// Per-variant shard handles (cleared per variant, capacity kept).
    shards: Vec<Arc<ConeShard>>,
}

impl FeaturizeScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Merges per-signal shards (signal order) into a full [`VariantData`],
/// splicing in the design-global context: endpoint rank percentiles over
/// the merged arrivals and the variant graph's design features.
pub fn merge_shards(
    variant: BogVariant,
    design_feats: Vec<f64>,
    shards: &[Arc<ConeShard>],
) -> VariantData {
    merge_shards_into(
        variant,
        design_feats,
        shards,
        &mut Vec::new(),
        &mut Vec::new(),
    )
}

/// [`merge_shards`] with caller-owned sort/rank buffers (reused across
/// variants and designs by [`FeaturizeScratch`]).
fn merge_shards_into(
    variant: BogVariant,
    design_feats: Vec<f64>,
    shards: &[Arc<ConeShard>],
    order: &mut Vec<usize>,
    rank_pct: &mut Vec<f64>,
) -> VariantData {
    let n_eps: usize = shards.iter().map(|s| s.sta_at.len()).sum();
    let mut data = VariantData {
        variant,
        rows: Vec::new(),
        groups: Vec::with_capacity(n_eps),
        endpoint_sta_at: Vec::with_capacity(n_eps),
        driving_regs: Vec::with_capacity(n_eps),
        design_feats,
    };
    for shard in shards {
        let row_base = data.rows.len();
        let ep_base = data.endpoint_sta_at.len();
        data.endpoint_sta_at.extend_from_slice(&shard.sta_at);
        data.driving_regs.extend_from_slice(&shard.driving_regs);
        for g in &shard.groups {
            data.groups.push(g.iter().map(|r| r + row_base).collect());
        }
        for row in &shard.rows {
            let mut row = row.clone();
            row.endpoint += ep_base;
            data.rows.push(row);
        }
    }

    // Endpoint rank percentile by merged pseudo-STA arrival.
    order.clear();
    order.extend(0..n_eps);
    order.sort_by(|&a, &b| {
        data.endpoint_sta_at[a]
            .partial_cmp(&data.endpoint_sta_at[b])
            .expect("finite")
    });
    rank_pct.clear();
    rank_pct.resize(n_eps, 0.5f64);
    for (rank, &i) in order.iter().enumerate() {
        if n_eps > 1 {
            rank_pct[i] = rank as f64 / (n_eps - 1) as f64;
        }
    }
    for row in &mut data.rows {
        row.features[0] = rank_pct[row.endpoint];
        row.features[1..4].copy_from_slice(&data.design_feats[0..3]);
    }
    data
}

/// Builds all four variants' datasets through the sharded path: one
/// extraction per signal, one memoized [`ConeShard`] per (signal ×
/// variant), keyed by the canonical cone content (see
/// [`crate::cache::shard_key`]). The extraction is cheap (linear in the
/// cone, no STA/sampling) — it is the probe that decides whether the
/// expensive shard computation can be skipped.
///
/// Allocates a fresh [`FeaturizeScratch`]; the pipeline's parallel prepare
/// path calls [`build_all_variant_data_scratch`] with a worker-local one.
pub fn build_all_variant_data(
    store: &Store,
    sog: &Bog,
    lib: &Library,
    clock: f64,
    design_seed: u64,
) -> Vec<VariantData> {
    build_all_variant_data_scratch(
        store,
        sog,
        lib,
        clock,
        design_seed,
        cone_dedup_enabled(),
        &mut FeaturizeScratch::new(),
    )
}

/// [`build_all_variant_data`] with an explicit scratch and dedup switch.
/// With `dedup` set (the default path), each *unique* canonical cone gets
/// one seed-independent [`ConeEval`] — computed via the levelized kernel,
/// memoized in-process and in the `conesta` namespace — and every signal
/// sharing it replays only the seeded sampling. With `dedup` unset (the
/// `RTLT_NO_CONE_DEDUP=1` escape hatch), every signal runs the legacy
/// monolithic [`build_cone_shard`]. Output bytes are identical either way.
pub fn build_all_variant_data_scratch(
    store: &Store,
    sog: &Bog,
    lib: &Library,
    clock: f64,
    design_seed: u64,
    dedup: bool,
    scratch: &mut FeaturizeScratch,
) -> Vec<VariantData> {
    let started = Instant::now();
    // One canonical extraction per signal, shared by all four variants.
    // Two hashes per cone: the full content hash keys the per-seed shard
    // cache (name-sensitive, unchanged from before the split), while the
    // structural fingerprint keys the shared seed-independent evaluation
    // (name-free, so isomorphic cones of different signals collide).
    let extractions: Vec<(Bog, ContentHash, ContentHash)> = (0..sog.signals().len())
        .map(|sig| {
            let sub = rtlt_bog::extract_signal_cone(sog, sig);
            let content = ContentHash::of_bytes(&rtlt_store::Codec::to_bytes(&sub));
            let fingerprint = rtlt_bog::cone_fingerprint(&sub);
            (sub, content, fingerprint)
        })
        .collect();
    TOTAL_SIGNALS.fetch_add(extractions.len() as u64, Ordering::Relaxed);
    // Fingerprint multiplicity within this design: only cones that occur
    // more than once go through the memoized `conesta` path — see
    // `shared_cone_eval`.
    let mut multiplicity: HashMap<&ContentHash, u32> = HashMap::new();
    for (_, _, fp) in &extractions {
        *multiplicity.entry(fp).or_insert(0) += 1;
    }
    UNIQUE_CONES.fetch_add(multiplicity.len() as u64, Ordering::Relaxed);

    let out = BogVariant::ALL
        .iter()
        .enumerate()
        .map(|(vi, &variant)| {
            let design_feats = design_features(&sog.to_variant(variant));
            // Once-map of this design × variant: canonical content →
            // (variant-converted cone, shared evaluation). Signals are
            // processed sequentially here (parallelism is across designs),
            // so no locking.
            let mut once: HashMap<ContentHash, (Arc<Bog>, Arc<ConeEval>)> = HashMap::new();
            scratch.shards.clear();
            for (sig, s) in sog.signals().iter().enumerate() {
                let (sub, content, fingerprint) = &extractions[sig];
                let n_eps = s.width as usize;
                let seed = shard_seed(design_seed, vi, &s.name);
                let key = shard_key(vi, clock, seed, content);
                let (levels, cone_scratch) = (&mut scratch.levels, &mut scratch.cones);
                let shard = store.get_or_compute(stage::SHARD, key, || {
                    if !dedup {
                        return build_cone_shard(&sub.to_variant(variant), n_eps, lib, clock, seed);
                    }
                    if multiplicity.get(fingerprint).copied().unwrap_or(1) > 1 {
                        let (vbog, eval) = shared_cone_eval(
                            store,
                            &mut once,
                            vi,
                            variant,
                            clock,
                            fingerprint,
                            sub,
                            n_eps,
                            lib,
                            levels,
                            cone_scratch,
                        );
                        replay_cone_shard(&vbog, &eval, n_eps, lib, clock, seed)
                    } else {
                        // Singleton cone (~90 % of signals on the bundled
                        // suites): compute and replay in place — no store
                        // round-trip, no Arc, crit rows moved not cloned.
                        let vbog = sub.to_variant(variant);
                        let eval =
                            compute_cone_eval(&vbog, n_eps, lib, clock, levels, cone_scratch);
                        replay_cone_shard_owned(&vbog, eval, n_eps, lib, clock, seed)
                    }
                });
                scratch.shards.push(shard);
            }
            merge_shards_into(
                variant,
                design_feats,
                &scratch.shards,
                &mut scratch.order,
                &mut scratch.rank_pct,
            )
        })
        .collect();
    FEATURIZE_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// A resumable [`build_all_variant_data`]: the same per-signal shard walk,
/// sliced into bounded `step` calls so a single-threaded event loop can
/// interleave many re-annotations without one large design starving the
/// tick. Iteration order, cache keys, dedup behavior and merged output are
/// identical to the one-shot path — a job stepped to completion produces
/// byte-identical [`VariantData`] (the live annotation service's whole
/// degrade story rests on this).
#[derive(Debug)]
pub struct FeaturizeJob {
    sog: Bog,
    clock: f64,
    design_seed: u64,
    dedup: bool,
    extractions: Vec<(Bog, ContentHash, ContentHash)>,
    multiplicity: HashMap<ContentHash, u32>,
    scratch: FeaturizeScratch,
    once: HashMap<ContentHash, (Arc<Bog>, Arc<ConeEval>)>,
    vi: usize,
    sig: usize,
    done: Vec<VariantData>,
}

impl FeaturizeJob {
    /// Extracts every signal cone up front (cheap, linear) and positions
    /// the job at the first shard of the first variant.
    pub fn new(sog: &Bog, clock: f64, design_seed: u64) -> FeaturizeJob {
        let started = Instant::now();
        let extractions: Vec<(Bog, ContentHash, ContentHash)> = (0..sog.signals().len())
            .map(|sig| {
                let sub = rtlt_bog::extract_signal_cone(sog, sig);
                let content = ContentHash::of_bytes(&rtlt_store::Codec::to_bytes(&sub));
                let fingerprint = rtlt_bog::cone_fingerprint(&sub);
                (sub, content, fingerprint)
            })
            .collect();
        TOTAL_SIGNALS.fetch_add(extractions.len() as u64, Ordering::Relaxed);
        let mut multiplicity: HashMap<ContentHash, u32> = HashMap::new();
        for (_, _, fp) in &extractions {
            *multiplicity.entry(*fp).or_insert(0) += 1;
        }
        UNIQUE_CONES.fetch_add(multiplicity.len() as u64, Ordering::Relaxed);
        let job = FeaturizeJob {
            sog: sog.clone(),
            clock,
            design_seed,
            dedup: cone_dedup_enabled(),
            extractions,
            multiplicity,
            scratch: FeaturizeScratch::new(),
            once: HashMap::new(),
            vi: 0,
            sig: 0,
            done: Vec::with_capacity(BogVariant::ALL.len()),
        };
        FEATURIZE_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        job
    }

    /// Every `(namespace, key)` pair the job will look up, in walk order —
    /// one [`Store::prefetch`] over these pulls all cold shards in a
    /// single batched GETM round trip before stepping begins.
    pub fn shard_items(&self) -> Vec<(String, ContentHash)> {
        let mut items = Vec::with_capacity(BogVariant::ALL.len() * self.extractions.len());
        for vi in 0..BogVariant::ALL.len() {
            for (sig, s) in self.sog.signals().iter().enumerate() {
                let (_, content, _) = &self.extractions[sig];
                let seed = shard_seed(self.design_seed, vi, &s.name);
                items.push((
                    stage::SHARD.to_owned(),
                    shard_key(vi, self.clock, seed, content),
                ));
            }
        }
        items
    }

    /// Total shards the job evaluates (signals × variants).
    pub fn total_shards(&self) -> u64 {
        (BogVariant::ALL.len() * self.extractions.len()) as u64
    }

    /// Shards not yet evaluated.
    pub fn remaining_shards(&self) -> u64 {
        let per_variant = self.extractions.len();
        let done = self.vi * per_variant + self.sig.min(per_variant);
        self.total_shards() - done as u64
    }

    /// Whether every variant has been merged.
    pub fn is_done(&self) -> bool {
        self.vi >= BogVariant::ALL.len()
    }

    /// Evaluates up to `max_shards` more shards (at least one), merging
    /// each variant as its last shard lands. Returns `true` once the job
    /// is done and [`FeaturizeJob::finish`] may be called.
    pub fn step(&mut self, store: &Store, lib: &Library, max_shards: usize) -> bool {
        let started = Instant::now();
        let mut budget = max_shards.max(1);
        let n = self.sog.signals().len();
        while self.vi < BogVariant::ALL.len() {
            let vi = self.vi;
            let variant = BogVariant::ALL[vi];
            while self.sig < n {
                if budget == 0 {
                    FEATURIZE_NANOS
                        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    return false;
                }
                let sig = self.sig;
                let s = &self.sog.signals()[sig];
                let (sub, content, fingerprint) = &self.extractions[sig];
                let n_eps = s.width as usize;
                let seed = shard_seed(self.design_seed, vi, &s.name);
                let key = shard_key(vi, self.clock, seed, content);
                let dedup = self.dedup;
                let clock = self.clock;
                let (levels, cone_scratch) = (&mut self.scratch.levels, &mut self.scratch.cones);
                let once = &mut self.once;
                let multiplicity = &self.multiplicity;
                let shard = store.get_or_compute(stage::SHARD, key, || {
                    if !dedup {
                        return build_cone_shard(&sub.to_variant(variant), n_eps, lib, clock, seed);
                    }
                    if multiplicity.get(fingerprint).copied().unwrap_or(1) > 1 {
                        let (vbog, eval) = shared_cone_eval(
                            store,
                            once,
                            vi,
                            variant,
                            clock,
                            fingerprint,
                            sub,
                            n_eps,
                            lib,
                            levels,
                            cone_scratch,
                        );
                        replay_cone_shard(&vbog, &eval, n_eps, lib, clock, seed)
                    } else {
                        let vbog = sub.to_variant(variant);
                        let eval =
                            compute_cone_eval(&vbog, n_eps, lib, clock, levels, cone_scratch);
                        replay_cone_shard_owned(&vbog, eval, n_eps, lib, clock, seed)
                    }
                });
                self.scratch.shards.push(shard);
                self.sig += 1;
                budget -= 1;
            }
            let design_feats = design_features(&self.sog.to_variant(variant));
            self.done.push(merge_shards_into(
                variant,
                design_feats,
                &self.scratch.shards,
                &mut self.scratch.order,
                &mut self.scratch.rank_pct,
            ));
            self.scratch.shards.clear();
            self.once.clear();
            self.vi += 1;
            self.sig = 0;
        }
        FEATURIZE_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        true
    }

    /// The merged variant datasets. Panics if the job is not done.
    pub fn finish(self) -> Vec<VariantData> {
        assert!(self.is_done(), "FeaturizeJob finished before completion");
        self.done
    }
}

/// Resolves the shared evaluation of one canonical cone: the once-map
/// first (an earlier signal of the same design × variant), then the
/// `conesta` namespace (other designs, earlier runs), then a fresh
/// levelized-kernel computation. Counts every resolution that skipped the
/// computation.
///
/// Only called for fingerprints with multiplicity > 1 within the design —
/// singleton cones (~90 % on the bundled suites) bypass the `conesta`
/// round-trip entirely, since persisting their (large) STA tables costs
/// more than the dedup would save.
#[allow(clippy::too_many_arguments)]
fn shared_cone_eval(
    store: &Store,
    once: &mut HashMap<ContentHash, (Arc<Bog>, Arc<ConeEval>)>,
    vi: usize,
    variant: BogVariant,
    clock: f64,
    fingerprint: &ContentHash,
    sub: &Bog,
    n_eps: usize,
    lib: &Library,
    levels: &mut LevelScratch,
    cone_scratch: &mut ConeScratch,
) -> (Arc<Bog>, Arc<ConeEval>) {
    if let Some((vbog, eval)) = once.get(fingerprint) {
        SAVED_EVALS.fetch_add(1, Ordering::Relaxed);
        return (Arc::clone(vbog), Arc::clone(eval));
    }
    let vbog = Arc::new(sub.to_variant(variant));
    let computed = Cell::new(false);
    let eval = store.get_or_compute(stage::CONESTA, conesta_key(vi, clock, fingerprint), || {
        computed.set(true);
        compute_cone_eval(&vbog, n_eps, lib, clock, levels, cone_scratch)
    });
    if !computed.get() {
        SAVED_EVALS.fetch_add(1, Ordering::Relaxed);
    }
    once.insert(*fingerprint, (Arc::clone(&vbog), Arc::clone(&eval)));
    (vbog, eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn bog() -> Bog {
        blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] r;
                   reg [15:0] s;
                   always @(posedge clk) begin
                     r <= a + b;
                     s <= s + (r ^ a);
                   end
                   assign q = s;
                 endmodule",
                "m",
            )
            .unwrap(),
        )
    }

    #[test]
    fn dataset_covers_every_endpoint() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let data = build_variant_data(&bog, &lib, 1.0, 1);
        assert_eq!(data.groups.len(), bog.regs().len());
        assert!(
            data.groups.iter().all(|g| !g.is_empty()),
            "each endpoint has >= 1 path"
        );
        // First row of every group is the slowest path: its arrival equals
        // the endpoint pseudo-STA arrival.
        for (e, g) in data.groups.iter().enumerate() {
            let crit_arrival = data.rows[g[0]].features[7];
            assert!((crit_arrival - data.endpoint_sta_at[e]).abs() < 1e-9);
            for &r in g {
                assert_eq!(data.rows[r].endpoint, e);
                assert!(data.rows[r].features[7] <= crit_arrival + 1e-9);
            }
        }
    }

    #[test]
    fn bigger_cones_get_more_paths() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let data = build_variant_data(&bog, &lib, 1.0, 1);
        // `s` endpoints depend on r+a (wide cones) → sampled extra paths;
        // at least one endpoint should have multiple paths.
        assert!(data.groups.iter().any(|g| g.len() > 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let a = build_variant_data(&bog, &lib, 1.0, 9);
        let b = build_variant_data(&bog, &lib, 1.0, 9);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.features, y.features);
        }
    }

    #[test]
    fn sharded_build_covers_all_endpoints_consistently() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let store = Store::in_memory();
        let all = build_all_variant_data(&store, &bog, &lib, 1.0, 7);
        assert_eq!(all.len(), 4);
        for data in &all {
            assert_eq!(data.groups.len(), bog.regs().len());
            assert_eq!(data.endpoint_sta_at.len(), bog.regs().len());
            assert!(data.groups.iter().all(|g| !g.is_empty()));
            // Critical-path row arrival equals the endpoint pseudo-STA
            // arrival, and global slots are filled in every row.
            for (e, g) in data.groups.iter().enumerate() {
                assert!((data.rows[g[0]].features[7] - data.endpoint_sta_at[e]).abs() < 1e-9);
                for &r in g {
                    assert_eq!(data.rows[r].endpoint, e);
                    assert_eq!(data.rows[r].features[1..4], data.design_feats[0..3]);
                }
            }
        }
        // Shards were populated: signals × 4 misses, and a second build is
        // answered entirely from the store with identical output.
        let misses = store.stats().namespace(stage::SHARD).misses;
        assert_eq!(misses as usize, bog.signals().len() * 4);
        let again = build_all_variant_data(&store, &bog, &lib, 1.0, 7);
        assert_eq!(store.stats().namespace(stage::SHARD).misses, misses);
        for (a, b) in all.iter().zip(&again) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.endpoint_sta_at, b.endpoint_sta_at);
        }
    }

    /// Two signals with isomorphic cones (same structure, different input
    /// and signal names) — the dedup unit.
    fn twin_bog() -> Bog {
        blast(
            &compile(
                "module m(input clk, input [7:0] a, input [7:0] b,
                          input [7:0] c, input [7:0] d,
                          output [7:0] q1, output [7:0] q2);
                   reg [7:0] r1;
                   reg [7:0] r2;
                   always @(posedge clk) begin
                     r1 <= a & b;
                     r2 <= c & d;
                   end
                   assign q1 = r1;
                   assign q2 = r2;
                 endmodule",
                "m",
            )
            .unwrap(),
        )
    }

    fn assert_variant_data_eq(a: &[VariantData], b: &[VariantData]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.variant, y.variant);
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.groups, y.groups);
            assert_eq!(x.endpoint_sta_at, y.endpoint_sta_at);
            assert_eq!(x.driving_regs, y.driving_regs);
            assert_eq!(x.design_feats, y.design_feats);
        }
    }

    #[test]
    fn dedup_and_legacy_paths_are_bit_identical() {
        let lib = Library::pseudo_bog();
        for bog in [bog(), twin_bog()] {
            for clock in [1.0, 0.37] {
                let dedup_store = Store::in_memory();
                let legacy_store = Store::in_memory();
                let mut scratch = FeaturizeScratch::new();
                let deduped = build_all_variant_data_scratch(
                    &dedup_store,
                    &bog,
                    &lib,
                    clock,
                    7,
                    true,
                    &mut scratch,
                );
                let legacy = build_all_variant_data_scratch(
                    &legacy_store,
                    &bog,
                    &lib,
                    clock,
                    7,
                    false,
                    &mut scratch,
                );
                assert_variant_data_eq(&deduped, &legacy);
                // The per-seed shard cache is shaped identically either way.
                assert_eq!(
                    dedup_store.stats().namespace(stage::SHARD).misses,
                    legacy_store.stats().namespace(stage::SHARD).misses,
                );
                assert_eq!(legacy_store.stats().namespace(stage::CONESTA).misses, 0);
            }
        }
    }

    #[test]
    fn isomorphic_cones_share_one_evaluation() {
        let bog = twin_bog();
        let lib = Library::pseudo_bog();
        let store = Store::in_memory();
        let mut scratch = FeaturizeScratch::new();
        build_all_variant_data_scratch(&store, &bog, &lib, 1.0, 7, true, &mut scratch);
        // r1/r2 cones are isomorphic: one conesta entry per variant serves
        // both signals' shards.
        let conesta = store.stats().namespace(stage::CONESTA).misses;
        let shard = store.stats().namespace(stage::SHARD).misses;
        assert_eq!(shard as usize, bog.signals().len() * 4);
        assert_eq!(conesta as usize, 4, "one shared evaluation per variant");
    }

    #[test]
    fn conesta_survives_round_trip_through_store() {
        // A second build over the same store must not recompute conesta
        // entries, and replaying from decoded (not in-process) evaluations
        // must give identical bytes.
        let bog = twin_bog();
        let lib = Library::pseudo_bog();
        let store = Store::in_memory();
        let mut scratch = FeaturizeScratch::new();
        let first = build_all_variant_data_scratch(&store, &bog, &lib, 1.0, 7, true, &mut scratch);
        let conesta_misses = store.stats().namespace(stage::CONESTA).misses;
        // Different seed → different shard keys → shards recompute, but the
        // seed-independent evaluations are all served from the store.
        let second = build_all_variant_data_scratch(&store, &bog, &lib, 1.0, 8, true, &mut scratch);
        assert_eq!(
            store.stats().namespace(stage::CONESTA).misses,
            conesta_misses
        );
        // Same-seed legacy rebuild for the byte-identity check.
        let legacy_store = Store::in_memory();
        let legacy =
            build_all_variant_data_scratch(&legacy_store, &bog, &lib, 1.0, 8, false, &mut scratch);
        assert_variant_data_eq(&second, &legacy);
        drop(first);
    }

    #[test]
    fn shard_seed_tracks_signal_identity_not_position() {
        assert_eq!(shard_seed(1, 0, "a"), shard_seed(1, 0, "a"));
        assert_ne!(shard_seed(1, 0, "a"), shard_seed(1, 0, "b"));
        assert_ne!(shard_seed(1, 0, "a"), shard_seed(1, 1, "a"));
        assert_ne!(shard_seed(1, 0, "a"), shard_seed(2, 0, "a"));
    }
}
