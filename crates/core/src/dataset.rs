//! Path-level dataset construction (the register-oriented RTL processing of
//! paper §3.2): for every register endpoint, the slowest path plus `K`
//! random paths from its input cone, featurized for the bit-wise models.
//!
//! Two construction paths exist:
//!
//! * [`build_variant_data`] — the monolithic original: one global pseudo-STA
//!   over the full graph (kept for micro-benchmarks and unit tests);
//! * [`build_all_variant_data`] — the **sharded** pipeline path: one
//!   [`ConeShard`] per RTL signal, computed on the signal's canonically
//!   extracted input cone ([`rtlt_bog::extract_signal_cone`]) and memoized
//!   in the store under a module-set × cone-content key. Shards carry only
//!   cone-local quantities; the cheap merge step splices in the
//!   design-global features (rank percentile, cell counts). Editing one
//!   module recomputes only the shards whose cones it feeds.

use crate::cache::{shard_key, stage};
use crate::features::{design_features, op_class, path_features, token_features};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtlt_bog::{input_cone, Bog, BogVariant, Endpoint};
use rtlt_liberty::Library;
use rtlt_sta::{Sta, StaConfig};
use rtlt_store::{ContentHash, Store};
use std::sync::Arc;

/// One featurized timing path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathRow {
    /// Table-2 feature vector ([`crate::features::PATH_FEATURE_NAMES`]).
    pub features: Vec<f64>,
    /// Operator-class token sequence (source → endpoint).
    pub ops: Vec<usize>,
    /// Per-token features.
    pub tok_feats: Vec<Vec<f64>>,
    /// Owning register endpoint index.
    pub endpoint: usize,
}

/// All sampled paths of one design under one BOG representation.
#[derive(Debug, Clone)]
pub struct VariantData {
    /// Which representation.
    pub variant: BogVariant,
    /// Path rows.
    pub rows: Vec<PathRow>,
    /// Row indices per register endpoint.
    pub groups: Vec<Vec<usize>>,
    /// Pseudo-STA arrival per register endpoint.
    pub endpoint_sta_at: Vec<f64>,
    /// Driving-register count per endpoint (cone feature, reused by the
    /// ensemble).
    pub driving_regs: Vec<f64>,
    /// Design-level features of this representation.
    pub design_feats: Vec<f64>,
}

/// Maximum random paths sampled per endpoint (on top of the slowest path).
pub const MAX_RANDOM_PATHS: usize = 5;

/// Builds the path dataset for one representation of a design.
pub fn build_variant_data(bog: &Bog, lib: &Library, clock: f64, seed: u64) -> VariantData {
    let cfg = StaConfig {
        clock_period: clock,
        ..StaConfig::default()
    };
    let sta = Sta::run(bog, lib, cfg);
    let fanout = bog.fanout_counts();
    let n_eps = bog.regs().len();

    // Endpoint rank percentile by pseudo-STA arrival.
    let ats: Vec<f64> = (0..n_eps).map(|i| sta.result().endpoint_at[i]).collect();
    let mut order: Vec<usize> = (0..n_eps).collect();
    order.sort_by(|&a, &b| ats[a].partial_cmp(&ats[b]).expect("finite"));
    let mut rank_pct = vec![0.0f64; n_eps];
    for (rank, &i) in order.iter().enumerate() {
        rank_pct[i] = if n_eps > 1 {
            rank as f64 / (n_eps - 1) as f64
        } else {
            0.5
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(n_eps);
    let mut driving_regs = Vec::with_capacity(n_eps);

    for e in 0..n_eps {
        let ep = Endpoint::Reg(e as u32);
        let cone = input_cone(bog, bog.endpoint_node(ep));
        driving_regs.push(cone.driving_regs as f64);
        let mut group = Vec::new();

        // Slowest path (the pseudo-STA critical path S*→i).
        let crit = sta.critical_path(ep);
        // K random paths, proportional to the driving-register count
        // (paper: "the sample number K_i is proportional to the number of
        // driving registers").
        let k = (cone.driving_regs / 3).clamp(0, MAX_RANDOM_PATHS);
        let crit_nodes = crit.nodes.clone();
        let mut paths = vec![crit];
        for p in sta.sample_paths(ep, k, &mut rng) {
            if p.nodes != crit_nodes {
                paths.push(p);
            }
        }

        for p in paths {
            let features = path_features(&sta, bog, &p, &cone, rank_pct[e], &fanout);
            let ops = p.nodes.iter().map(|&n| op_class(bog.node(n).op)).collect();
            let tok_feats = token_features(&sta, &p, &fanout);
            group.push(rows.len());
            rows.push(PathRow {
                features,
                ops,
                tok_feats,
                endpoint: e,
            });
        }
        groups.push(group);
    }

    VariantData {
        variant: bog.variant,
        rows,
        groups,
        endpoint_sta_at: ats,
        driving_regs,
        design_feats: crate::features::design_features(bog),
    }
}

/// One signal's slice of a variant dataset: everything the per-endpoint
/// processing derives from the signal's input cone alone. Global context
/// (rank percentile, design cell counts) is deliberately absent — the merge
/// step fills it — so a shard is reusable across any edit that leaves the
/// cone's feeding modules unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeShard {
    /// Cone-local pseudo-STA arrival per endpoint (bit), LSB first.
    pub sta_at: Vec<f64>,
    /// Driving-register count per endpoint.
    pub driving_regs: Vec<f64>,
    /// Path rows; `endpoint` is the bit index within the signal, and
    /// feature slots 0..4 (rank percentile + design features) are
    /// placeholders overwritten at merge.
    pub rows: Vec<PathRow>,
    /// Row indices per endpoint (bit).
    pub groups: Vec<Vec<usize>>,
}

/// Deterministic per-shard sampling seed: a function of the design seed,
/// the representation, and the signal *name* (stable across edits — signal
/// indices are not).
pub fn shard_seed(design_seed: u64, variant_idx: usize, signal: &str) -> u64 {
    let mut h = design_seed ^ (variant_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in signal.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds one signal's shard on its extracted cone: cone-local pseudo-STA,
/// then the slowest + `K` random paths per bit endpoint. The extracted
/// graph's first `n_eps` registers are the signal's bits; boundary
/// registers beyond them are launch points only.
pub fn build_cone_shard(
    sub: &Bog,
    n_eps: usize,
    lib: &Library,
    clock: f64,
    seed: u64,
) -> ConeShard {
    let cfg = StaConfig {
        clock_period: clock,
        ..StaConfig::default()
    };
    let sta = Sta::run(sub, lib, cfg);
    let fanout = sub.fanout_counts();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shard = ConeShard {
        sta_at: Vec::with_capacity(n_eps),
        driving_regs: Vec::with_capacity(n_eps),
        rows: Vec::new(),
        groups: Vec::with_capacity(n_eps),
    };
    for e in 0..n_eps {
        let ep = Endpoint::Reg(e as u32);
        let cone = input_cone(sub, sub.endpoint_node(ep));
        shard.driving_regs.push(cone.driving_regs as f64);
        shard.sta_at.push(sta.result().endpoint_at[e]);
        let crit = sta.critical_path(ep);
        let k = (cone.driving_regs / 3).clamp(0, MAX_RANDOM_PATHS);
        let crit_nodes = crit.nodes.clone();
        let mut paths = vec![crit];
        for p in sta.sample_paths(ep, k, &mut rng) {
            if p.nodes != crit_nodes {
                paths.push(p);
            }
        }
        let mut group = Vec::with_capacity(paths.len());
        for p in paths {
            // Slots 0..4 (rank percentile + design-level features) are
            // filled at merge; the placeholder values computed here from
            // the sub-graph are overwritten.
            let features = path_features(&sta, sub, &p, &cone, 0.0, &fanout);
            let ops = p.nodes.iter().map(|&n| op_class(sub.node(n).op)).collect();
            let tok_feats = token_features(&sta, &p, &fanout);
            group.push(shard.rows.len());
            shard.rows.push(PathRow {
                features,
                ops,
                tok_feats,
                endpoint: e,
            });
        }
        shard.groups.push(group);
    }
    shard
}

/// Merges per-signal shards (signal order) into a full [`VariantData`],
/// splicing in the design-global context: endpoint rank percentiles over
/// the merged arrivals and the variant graph's design features.
pub fn merge_shards(
    variant: BogVariant,
    design_feats: Vec<f64>,
    shards: &[Arc<ConeShard>],
) -> VariantData {
    let n_eps: usize = shards.iter().map(|s| s.sta_at.len()).sum();
    let mut data = VariantData {
        variant,
        rows: Vec::new(),
        groups: Vec::with_capacity(n_eps),
        endpoint_sta_at: Vec::with_capacity(n_eps),
        driving_regs: Vec::with_capacity(n_eps),
        design_feats,
    };
    for shard in shards {
        let row_base = data.rows.len();
        let ep_base = data.endpoint_sta_at.len();
        data.endpoint_sta_at.extend_from_slice(&shard.sta_at);
        data.driving_regs.extend_from_slice(&shard.driving_regs);
        for g in &shard.groups {
            data.groups.push(g.iter().map(|r| r + row_base).collect());
        }
        for row in &shard.rows {
            let mut row = row.clone();
            row.endpoint += ep_base;
            data.rows.push(row);
        }
    }

    // Endpoint rank percentile by merged pseudo-STA arrival.
    let mut order: Vec<usize> = (0..n_eps).collect();
    order.sort_by(|&a, &b| {
        data.endpoint_sta_at[a]
            .partial_cmp(&data.endpoint_sta_at[b])
            .expect("finite")
    });
    let mut rank_pct = vec![0.5f64; n_eps];
    for (rank, &i) in order.iter().enumerate() {
        if n_eps > 1 {
            rank_pct[i] = rank as f64 / (n_eps - 1) as f64;
        }
    }
    for row in &mut data.rows {
        row.features[0] = rank_pct[row.endpoint];
        row.features[1..4].copy_from_slice(&data.design_feats[0..3]);
    }
    data
}

/// Builds all four variants' datasets through the sharded path: one
/// extraction per signal, one memoized [`ConeShard`] per (signal ×
/// variant), keyed by the canonical cone content (see
/// [`crate::cache::shard_key`]). The extraction is cheap (linear in the
/// cone, no STA/sampling) — it is the probe that decides whether the
/// expensive shard computation can be skipped.
pub fn build_all_variant_data(
    store: &Store,
    sog: &Bog,
    lib: &Library,
    clock: f64,
    design_seed: u64,
) -> Vec<VariantData> {
    // One canonical extraction per signal, shared by all four variants.
    let extractions: Vec<(Bog, ContentHash)> = (0..sog.signals().len())
        .map(|sig| {
            let sub = rtlt_bog::extract_signal_cone(sog, sig);
            let content = ContentHash::of_bytes(&rtlt_store::Codec::to_bytes(&sub));
            (sub, content)
        })
        .collect();

    BogVariant::ALL
        .iter()
        .enumerate()
        .map(|(vi, &variant)| {
            let design_feats = design_features(&sog.to_variant(variant));
            let shards: Vec<Arc<ConeShard>> = sog
                .signals()
                .iter()
                .enumerate()
                .map(|(sig, s)| {
                    let (sub, content) = &extractions[sig];
                    let seed = shard_seed(design_seed, vi, &s.name);
                    let key = shard_key(vi, clock, seed, content);
                    store.get_or_compute(stage::SHARD, key, || {
                        build_cone_shard(
                            &sub.to_variant(variant),
                            s.width as usize,
                            lib,
                            clock,
                            seed,
                        )
                    })
                })
                .collect();
            merge_shards(variant, design_feats, &shards)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_bog::blast;
    use rtlt_verilog::compile;

    fn bog() -> Bog {
        blast(
            &compile(
                "module m(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
                   reg [15:0] r;
                   reg [15:0] s;
                   always @(posedge clk) begin
                     r <= a + b;
                     s <= s + (r ^ a);
                   end
                   assign q = s;
                 endmodule",
                "m",
            )
            .unwrap(),
        )
    }

    #[test]
    fn dataset_covers_every_endpoint() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let data = build_variant_data(&bog, &lib, 1.0, 1);
        assert_eq!(data.groups.len(), bog.regs().len());
        assert!(
            data.groups.iter().all(|g| !g.is_empty()),
            "each endpoint has >= 1 path"
        );
        // First row of every group is the slowest path: its arrival equals
        // the endpoint pseudo-STA arrival.
        for (e, g) in data.groups.iter().enumerate() {
            let crit_arrival = data.rows[g[0]].features[7];
            assert!((crit_arrival - data.endpoint_sta_at[e]).abs() < 1e-9);
            for &r in g {
                assert_eq!(data.rows[r].endpoint, e);
                assert!(data.rows[r].features[7] <= crit_arrival + 1e-9);
            }
        }
    }

    #[test]
    fn bigger_cones_get_more_paths() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let data = build_variant_data(&bog, &lib, 1.0, 1);
        // `s` endpoints depend on r+a (wide cones) → sampled extra paths;
        // at least one endpoint should have multiple paths.
        assert!(data.groups.iter().any(|g| g.len() > 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let a = build_variant_data(&bog, &lib, 1.0, 9);
        let b = build_variant_data(&bog, &lib, 1.0, 9);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.features, y.features);
        }
    }

    #[test]
    fn sharded_build_covers_all_endpoints_consistently() {
        let bog = bog();
        let lib = Library::pseudo_bog();
        let store = Store::in_memory();
        let all = build_all_variant_data(&store, &bog, &lib, 1.0, 7);
        assert_eq!(all.len(), 4);
        for data in &all {
            assert_eq!(data.groups.len(), bog.regs().len());
            assert_eq!(data.endpoint_sta_at.len(), bog.regs().len());
            assert!(data.groups.iter().all(|g| !g.is_empty()));
            // Critical-path row arrival equals the endpoint pseudo-STA
            // arrival, and global slots are filled in every row.
            for (e, g) in data.groups.iter().enumerate() {
                assert!((data.rows[g[0]].features[7] - data.endpoint_sta_at[e]).abs() < 1e-9);
                for &r in g {
                    assert_eq!(data.rows[r].endpoint, e);
                    assert_eq!(data.rows[r].features[1..4], data.design_feats[0..3]);
                }
            }
        }
        // Shards were populated: signals × 4 misses, and a second build is
        // answered entirely from the store with identical output.
        let misses = store.stats().namespace(stage::SHARD).misses;
        assert_eq!(misses as usize, bog.signals().len() * 4);
        let again = build_all_variant_data(&store, &bog, &lib, 1.0, 7);
        assert_eq!(store.stats().namespace(stage::SHARD).misses, misses);
        for (a, b) in all.iter().zip(&again) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.endpoint_sta_at, b.endpoint_sta_at);
        }
    }

    #[test]
    fn shard_seed_tracks_signal_identity_not_position() {
        assert_eq!(shard_seed(1, 0, "a"), shard_seed(1, 0, "a"));
        assert_ne!(shard_seed(1, 0, "a"), shard_seed(1, 0, "b"));
        assert_ne!(shard_seed(1, 0, "a"), shard_seed(1, 1, "a"));
        assert_ne!(shard_seed(1, 0, "a"), shard_seed(2, 0, "a"));
    }
}
