//! Content-addressed caching of the prepare pipeline.
//!
//! Each [`crate::pipeline::PrepareStages`] stage is a pure function of its
//! predecessor plus the [`TimerConfig`] fields it actually reads, so stage
//! outputs are memoizable under the chained keys built here:
//!
//! ```text
//! compile   = H(name, source)                      // reads no config
//! blast     = H(compile)                           // reads no config
//! label     = H(blast, cfg.seed, cfg.synth_effort) // the label flow's inputs
//! featurize = H(label)                             // derives everything else
//! ```
//!
//! `cfg.threads` deliberately appears in **no** key: it changes how fast a
//! suite prepares, never what is prepared. The [`Codec`] impls in this
//! module (plus the ones in `rtlt-bog`/`rtlt-verilog` for the graph types)
//! make every stage artifact storable in the `rtlt-store` disk tier, so a
//! warm run of any bench binary skips suite preparation entirely.

use crate::dataset::{PathRow, VariantData};
use crate::optimize::FlowMetrics;
use crate::pipeline::{BlastedDesign, CompiledDesign, DesignData, LabelOutcome, TimerConfig};
use rtlt_bog::{Bog, BogVariant};
use rtlt_store::{Codec, CodecError, ContentHash, Dec, Enc, KeyBuilder};
use std::sync::Arc;

/// Store namespaces, one per memoized computation. Namespacing keeps stats
/// attributable per stage and makes the on-disk layout self-describing
/// (`<cache-dir>/<namespace>/<key>.bin`).
pub mod stage {
    /// Frontend artifacts (parse + AST features + elaborate).
    pub const COMPILE: &str = "compile";
    /// Bit-blasted SOG.
    pub const BLAST: &str = "blast";
    /// Ground-truth label flow outcome.
    pub const LABEL: &str = "label";
    /// Fully featurized design data.
    pub const FEATURIZE: &str = "featurize";
    /// Table-6 optimization candidate flows.
    pub const OPT_FLOW: &str = "optflow";

    /// The four prepare stages, pipeline order (for aggregate reporting).
    pub const PREPARE: [&str; 4] = [COMPILE, BLAST, LABEL, FEATURIZE];
}

/// Pipeline algorithm epoch, folded into every stage-key domain. The
/// codec-level `FORMAT_VERSION` only guards the *shape* of stored bytes;
/// this guards their *meaning*. Bump it whenever any stage's algorithm
/// changes output for unchanged inputs (synthesis cost model, blasting
/// rules, featurization, …) so warm caches from older builds read as
/// misses instead of silently serving stale artifacts.
pub const PIPELINE_EPOCH: u64 = 1;

/// The chained content keys of one design's preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareKeys {
    /// Key of the compile-stage artifact.
    pub compile: ContentHash,
    /// Key of the blast-stage artifact.
    pub blast: ContentHash,
    /// Key of the label-stage artifact.
    pub label: ContentHash,
    /// Key of the featurize-stage artifact (identifies the whole
    /// preparation — [`DesignData::prepare_key`] records it).
    pub featurize: ContentHash,
}

impl PrepareKeys {
    /// Derives all four stage keys from the preparation inputs. Only the
    /// `TimerConfig` fields a stage reads participate in its key.
    pub fn derive(name: &str, source: &str, cfg: &TimerConfig) -> PrepareKeys {
        let compile = KeyBuilder::new("rtlt.stage.compile")
            .u64(PIPELINE_EPOCH)
            .str(name)
            .str(source)
            .finish();
        let blast = KeyBuilder::new("rtlt.stage.blast")
            .u64(PIPELINE_EPOCH)
            .key(&compile)
            .finish();
        let label = KeyBuilder::new("rtlt.stage.label")
            .u64(PIPELINE_EPOCH)
            .key(&blast)
            .u64(cfg.seed)
            .f64(cfg.synth_effort)
            .finish();
        let featurize = KeyBuilder::new("rtlt.stage.featurize")
            .u64(PIPELINE_EPOCH)
            .key(&label)
            .finish();
        PrepareKeys {
            compile,
            blast,
            label,
            featurize,
        }
    }
}

/// Key of one optimization candidate flow: the prepared design plus the
/// criticality scores driving `group_path`/`retime`. Clock, per-design seed
/// and base effort are functions of the preparation, so `prepare_key`
/// already covers them.
pub fn opt_flow_key(prepare_key: &ContentHash, scores: &[f64]) -> ContentHash {
    let mut b = KeyBuilder::new("rtlt.optflow")
        .u64(PIPELINE_EPOCH)
        .key(prepare_key);
    let mut e = Enc::new();
    for &s in scores {
        e.f64(s);
    }
    b = b.bytes(&e.into_bytes());
    b.finish()
}

impl Codec for CompiledDesign {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.str(&self.source);
        self.ast_feats.encode(e);
        self.netlist.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(CompiledDesign {
            name: d.str()?,
            source: d.str()?,
            ast_feats: Vec::decode(d)?,
            netlist: rtlt_verilog::rtlir::Netlist::decode(d)?,
        })
    }
}

impl Codec for BlastedDesign {
    fn encode(&self, e: &mut Enc) {
        self.compiled.encode(e);
        self.sog.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(BlastedDesign {
            compiled: CompiledDesign::decode(d)?,
            sog: Bog::decode(d)?,
        })
    }
}

impl Codec for LabelOutcome {
    fn encode(&self, e: &mut Enc) {
        self.endpoint_at.encode(e);
        e.f64(self.wns);
        e.f64(self.tns);
        e.f64(self.area);
        e.f64(self.power);
        e.f64(self.clock);
        e.f64(self.setup);
        e.u64(self.synth_seed);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(LabelOutcome {
            endpoint_at: Vec::decode(d)?,
            wns: d.f64()?,
            tns: d.f64()?,
            area: d.f64()?,
            power: d.f64()?,
            clock: d.f64()?,
            setup: d.f64()?,
            synth_seed: d.u64()?,
        })
    }
}

impl Codec for PathRow {
    fn encode(&self, e: &mut Enc) {
        self.features.encode(e);
        self.ops.encode(e);
        self.tok_feats.encode(e);
        e.usize(self.endpoint);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(PathRow {
            features: Vec::decode(d)?,
            ops: Vec::decode(d)?,
            tok_feats: Vec::decode(d)?,
            endpoint: d.usize()?,
        })
    }
}

impl Codec for VariantData {
    fn encode(&self, e: &mut Enc) {
        self.variant.encode(e);
        self.rows.encode(e);
        self.groups.encode(e);
        self.endpoint_sta_at.encode(e);
        self.driving_regs.encode(e);
        self.design_feats.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(VariantData {
            variant: BogVariant::decode(d)?,
            rows: Vec::decode(d)?,
            groups: Vec::decode(d)?,
            endpoint_sta_at: Vec::decode(d)?,
            driving_regs: Vec::decode(d)?,
            design_feats: Vec::decode(d)?,
        })
    }
}

impl Codec for DesignData {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.str(&self.source);
        self.sog.encode(e);
        self.variant_data.encode(e);
        self.labels_at.encode(e);
        e.f64(self.clock);
        e.f64(self.setup);
        e.f64(self.wns);
        e.f64(self.tns);
        e.f64(self.area);
        e.f64(self.power);
        self.ast_feats.encode(e);
        e.u64(self.synth_seed);
        e.f64(self.synth_effort);
        self.prepare_key.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let name: Arc<str> = Arc::decode(d)?;
        let source = d.str()?;
        let sog = Bog::decode(d)?;
        // Signal names are derivable from the SOG — recomputed instead of
        // stored, matching what featurization builds.
        Ok(DesignData {
            signal_names: crate::pipeline::signal_names_of(&sog),
            name,
            source,
            sog,
            variant_data: Vec::decode(d)?,
            labels_at: Arc::decode(d)?,
            clock: d.f64()?,
            setup: d.f64()?,
            wns: d.f64()?,
            tns: d.f64()?,
            area: d.f64()?,
            power: d.f64()?,
            ast_feats: Vec::decode(d)?,
            synth_seed: d.u64()?,
            synth_effort: d.f64()?,
            prepare_key: ContentHash::decode(d)?,
        })
    }
}

impl Codec for FlowMetrics {
    fn encode(&self, e: &mut Enc) {
        e.f64(self.wns);
        e.f64(self.tns);
        e.f64(self.power);
        e.f64(self.area);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(FlowMetrics {
            wns: d.f64()?,
            tns: d.f64()?,
            power: d.f64()?,
            area: d.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, effort: f64, threads: usize) -> TimerConfig {
        TimerConfig {
            seed,
            synth_effort: effort,
            threads,
        }
    }

    #[test]
    fn keys_are_stable_for_identical_inputs() {
        let a = PrepareKeys::derive("m", "module m(); endmodule", &cfg(1, 0.6, 1));
        let b = PrepareKeys::derive("m", "module m(); endmodule", &cfg(1, 0.6, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_never_enters_a_key() {
        let a = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 1));
        let b = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 64));
        assert_eq!(a, b);
    }

    #[test]
    fn source_change_invalidates_every_stage() {
        let a = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 1));
        let b = PrepareKeys::derive("m", "src2", &cfg(1, 0.6, 1));
        assert_ne!(a.compile, b.compile);
        assert_ne!(a.blast, b.blast);
        assert_ne!(a.label, b.label);
        assert_ne!(a.featurize, b.featurize);
    }

    #[test]
    fn label_config_fields_invalidate_only_downstream_stages() {
        let base = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 1));
        for other in [
            PrepareKeys::derive("m", "src", &cfg(2, 0.6, 1)),
            PrepareKeys::derive("m", "src", &cfg(1, 0.7, 1)),
        ] {
            assert_eq!(base.compile, other.compile);
            assert_eq!(base.blast, other.blast);
            assert_ne!(base.label, other.label);
            assert_ne!(base.featurize, other.featurize);
        }
    }

    #[test]
    fn opt_flow_key_tracks_scores_and_design() {
        let k1 = ContentHash::of_bytes(b"d1");
        let k2 = ContentHash::of_bytes(b"d2");
        let s = [1.0, 2.0, 3.0];
        assert_eq!(opt_flow_key(&k1, &s), opt_flow_key(&k1, &s));
        assert_ne!(opt_flow_key(&k1, &s), opt_flow_key(&k2, &s));
        assert_ne!(opt_flow_key(&k1, &s), opt_flow_key(&k1, &[1.0, 2.0, 3.5]));
    }

    #[test]
    fn flow_metrics_round_trip() {
        let m = FlowMetrics {
            wns: -0.25,
            tns: -10.5,
            power: 120.0,
            area: 88.25,
        };
        assert_eq!(FlowMetrics::from_bytes(&m.to_bytes()).unwrap(), m);
    }
}
