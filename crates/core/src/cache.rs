//! Content-addressed caching of the prepare pipeline.
//!
//! Each [`crate::pipeline::PrepareStages`] stage is a pure function of its
//! predecessor plus the [`TimerConfig`] fields it actually reads, so stage
//! outputs are memoizable under the chained keys built here:
//!
//! ```text
//! modast    = H(module text)                       // per-module parse
//! compile   = H(module_key(top))                   // dep-closed module keys
//! blast     = H(compile)                           // reads no config
//! label     = H(blast, cfg.seed, cfg.synth_effort) // the label flow's inputs
//! featurize = H(label)                             // derives everything else
//! shard     = H(variant, clock, seed,              // per-signal featurize
//!               cone module keys, cone content)    //   slice
//! model     = H(sorted train prepare_keys, seed)   // fitted RtlTimer
//! ```
//!
//! The design-level keys are **module-granular** since PR 3:
//! `module_key = H(name, text, dep_module_keys)` (see
//! [`rtlt_verilog::modsrc`]), so editing a module invalidates only the
//! designs whose top-module dependency cone contains it, and — through the
//! `shard` namespace — only the cones it feeds inside those designs.
//!
//! `cfg.threads` deliberately appears in **no** key: it changes how fast a
//! suite prepares, never what is prepared. The [`Codec`] impls in this
//! module (plus the ones in `rtlt-bog`/`rtlt-verilog`/`rtlt-ml` for graph
//! and model types) make every stage artifact storable in the `rtlt-store`
//! disk tier, so a warm run of any bench binary skips suite preparation
//! entirely.

use crate::bitwise::BitwiseModel;
use crate::dataset::{ConeEval, ConeShard, PathRow, VariantData};
use crate::optimize::FlowMetrics;
use crate::pipeline::{
    BlastedDesign, CompiledDesign, DesignData, LabelOutcome, RtlTimer, TimerConfig,
};
use rtlt_bog::{Bog, BogVariant};
use rtlt_store::{Codec, CodecError, ContentHash, Dec, Enc, KeyBuilder};
use std::sync::Arc;

/// Store namespaces, one per memoized computation. Namespacing keeps stats
/// attributable per stage and makes the on-disk layout self-describing
/// (`<cache-dir>/<namespace>/<key>.bin`).
pub mod stage {
    /// Per-module parse results (module AST under `H(module text)`).
    pub const MODAST: &str = "modast";
    /// Frontend artifacts (parse + AST features + elaborate).
    pub const COMPILE: &str = "compile";
    /// Bit-blasted SOG.
    pub const BLAST: &str = "blast";
    /// Ground-truth label flow outcome.
    pub const LABEL: &str = "label";
    /// Fully featurized design data.
    pub const FEATURIZE: &str = "featurize";
    /// Per-signal featurize shards (cone-granular invalidation).
    pub const SHARD: &str = "shard";
    /// Seed-independent shared cone evaluations (levelized pseudo-STA +
    /// critical paths), one per unique canonical cone content.
    pub const CONESTA: &str = "conesta";
    /// Fitted model stacks ([`RtlTimer`]), keyed by train set × seed.
    pub const MODEL: &str = "model";
    /// Table-6 optimization candidate flows.
    pub const OPT_FLOW: &str = "optflow";

    /// The four prepare stages, pipeline order (for aggregate reporting).
    pub const PREPARE: [&str; 4] = [COMPILE, BLAST, LABEL, FEATURIZE];
}

/// Pipeline algorithm epoch, folded into every stage-key domain. The
/// codec-level `FORMAT_VERSION` only guards the *shape* of stored bytes;
/// this guards their *meaning*. Bump it whenever any stage's algorithm
/// changes output for unchanged inputs (synthesis cost model, blasting
/// rules, featurization, …) so warm caches from older builds read as
/// misses instead of silently serving stale artifacts.
///
/// Epoch 2: featurization moved to the sharded cone-local pipeline
/// (per-signal pseudo-STA and sampling seeds; AST features restricted to
/// the top module's dependency cone).
pub const PIPELINE_EPOCH: u64 = 2;

/// The chained content keys of one design's preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareKeys {
    /// Key of the compile-stage artifact.
    pub compile: ContentHash,
    /// Key of the blast-stage artifact.
    pub blast: ContentHash,
    /// Key of the label-stage artifact.
    pub label: ContentHash,
    /// Key of the featurize-stage artifact (identifies the whole
    /// preparation — [`DesignData::prepare_key`] records it).
    pub featurize: ContentHash,
}

impl PrepareKeys {
    /// Derives all four stage keys from the preparation inputs. Only the
    /// `TimerConfig` fields a stage reads participate in its key.
    ///
    /// The compile key is **module-granular**: it hashes the dep-closed
    /// content key of the top module (`rtlt_verilog::modsrc::design_key`),
    /// so source edits outside the top's dependency cone — or pure
    /// re-ordering of unrelated modules in the file — do not invalidate
    /// the preparation. Sources the splitter cannot handle fall back to
    /// whole-source hashing.
    pub fn derive(name: &str, source: &str, cfg: &TimerConfig) -> PrepareKeys {
        let design = rtlt_verilog::modsrc::design_key(source, name).unwrap_or_else(|| {
            KeyBuilder::new("rtlt.design.flat")
                .str(name)
                .str(source)
                .finish()
        });
        let compile = KeyBuilder::new("rtlt.stage.compile")
            .u64(PIPELINE_EPOCH)
            .key(&design)
            .finish();
        let blast = KeyBuilder::new("rtlt.stage.blast")
            .u64(PIPELINE_EPOCH)
            .key(&compile)
            .finish();
        let label = KeyBuilder::new("rtlt.stage.label")
            .u64(PIPELINE_EPOCH)
            .key(&blast)
            .u64(cfg.seed)
            .f64(cfg.synth_effort)
            .finish();
        let featurize = KeyBuilder::new("rtlt.stage.featurize")
            .u64(PIPELINE_EPOCH)
            .key(&label)
            .finish();
        PrepareKeys {
            compile,
            blast,
            label,
            featurize,
        }
    }
}

/// Key of one optimization candidate flow: the prepared design plus the
/// criticality scores driving `group_path`/`retime`. Clock, per-design seed
/// and base effort are functions of the preparation, so `prepare_key`
/// already covers them.
pub fn opt_flow_key(prepare_key: &ContentHash, scores: &[f64]) -> ContentHash {
    let mut b = KeyBuilder::new("rtlt.optflow")
        .u64(PIPELINE_EPOCH)
        .key(prepare_key);
    let mut e = Enc::new();
    for &s in scores {
        e.f64(s);
    }
    b = b.bytes(&e.into_bytes());
    b.finish()
}

/// Key of one per-module parse result: the module's text alone (shared
/// across designs and across file positions — lines are cached relative and
/// rebased on use).
pub fn modast_key(module_text: &str) -> ContentHash {
    KeyBuilder::new("rtlt.modast")
        .u64(PIPELINE_EPOCH)
        .str(module_text)
        .finish()
}

/// Key of one featurize shard: representation × clock × sampling seed ×
/// the canonical content of the signal's extracted cone.
///
/// The cone content is itself a pure function of the module set feeding
/// the cone (the provenance map [`rtlt_bog::signal_provenance`] exposes) —
/// editing a module can only change the cones it feeds, so the content key
/// *refines* module-set keying: an edit invalidates exactly the cones
/// whose logic actually changed, not every cone of every touched module.
/// Touching one `always` block leaves the module's other cones warm.
pub fn shard_key(
    variant_idx: usize,
    clock: f64,
    seed: u64,
    cone_content: &ContentHash,
) -> ContentHash {
    KeyBuilder::new("rtlt.shard")
        .u64(PIPELINE_EPOCH)
        .u64(variant_idx as u64)
        .f64(clock)
        .u64(seed)
        .key(cone_content)
        .finish()
}

/// Key of one shared cone evaluation ([`crate::dataset::ConeEval`]):
/// representation × clock × the cone's **structural** fingerprint
/// ([`rtlt_bog::cone_fingerprint`]). Unlike [`shard_key`] there is no
/// sampling seed (the evaluation is seed-independent by construction) and
/// no name strings in the hashed content — so N signals with isomorphic
/// cones, whose shard keys all differ, map to one `conesta` entry.
pub fn conesta_key(variant_idx: usize, clock: f64, fingerprint: &ContentHash) -> ContentHash {
    KeyBuilder::new("rtlt.conesta")
        .u64(PIPELINE_EPOCH)
        .u64(variant_idx as u64)
        .f64(clock)
        .key(fingerprint)
        .finish()
}

/// Key of a fitted [`RtlTimer`]: the sorted content keys of the training
/// preparations plus the only [`TimerConfig`] field `fit` reads (`seed` —
/// `synth_effort` is already inside every `prepare_key`, and `threads`
/// never keys anything).
pub fn model_key(train: &[&DesignData], cfg: &TimerConfig) -> ContentHash {
    let mut keys: Vec<ContentHash> = train.iter().map(|d| d.prepare_key).collect();
    keys.sort_by_key(|k| k.to_hex());
    let mut b = KeyBuilder::new("rtlt.model")
        .u64(PIPELINE_EPOCH)
        .u64(cfg.seed);
    for k in &keys {
        b = b.key(k);
    }
    b.finish()
}

impl Codec for CompiledDesign {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.str(&self.source);
        self.ast_feats.encode(e);
        self.netlist.encode(e);
        e.seq_len(self.module_keys.len());
        for (name, key) in &self.module_keys {
            e.str(name);
            key.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(CompiledDesign {
            name: d.str()?,
            source: d.str()?,
            ast_feats: Vec::decode(d)?,
            netlist: rtlt_verilog::rtlir::Netlist::decode(d)?,
            module_keys: {
                let n = d.seq_len(1)?;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push((d.str()?, ContentHash::decode(d)?));
                }
                out
            },
        })
    }
}

impl Codec for ConeShard {
    fn encode(&self, e: &mut Enc) {
        self.sta_at.encode(e);
        self.driving_regs.encode(e);
        self.rows.encode(e);
        self.groups.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(ConeShard {
            sta_at: Vec::decode(d)?,
            driving_regs: Vec::decode(d)?,
            rows: Vec::decode(d)?,
            groups: Vec::decode(d)?,
        })
    }
}

impl Codec for ConeEval {
    fn encode(&self, e: &mut Enc) {
        self.sta.arrival.encode(e);
        self.sta.slew.encode(e);
        self.sta.load.encode(e);
        self.sta.delay.encode(e);
        self.sta.endpoint_at.encode(e);
        self.sta.endpoint_slack.encode(e);
        e.f64(self.sta.wns);
        e.f64(self.sta.tns);
        self.fanout.encode(e);
        self.cones.encode(e);
        self.crit_nodes.encode(e);
        self.crit_rows.encode(e);
        self.design.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let sta = rtlt_sta::StaResult {
            arrival: Vec::decode(d)?,
            slew: Vec::decode(d)?,
            load: Vec::decode(d)?,
            delay: Vec::decode(d)?,
            endpoint_at: Vec::decode(d)?,
            endpoint_slack: Vec::decode(d)?,
            wns: d.f64()?,
            tns: d.f64()?,
        };
        Ok(ConeEval {
            sta: Arc::new(sta),
            fanout: Vec::decode(d)?,
            cones: Vec::decode(d)?,
            crit_nodes: Vec::decode(d)?,
            crit_rows: Vec::decode(d)?,
            design: Vec::decode(d)?,
        })
    }
}

/// The fitted model stack. Only tree-based stacks exist ([`RtlTimer::fit`]
/// always fits the GBDT family); the [`BitwiseModel`] codec rejects the
/// ablation-only MLP/transformer variants.
impl Codec for RtlTimer {
    fn encode(&self, e: &mut Enc) {
        self.bitwise.encode(e);
        self.ensemble.encode(e);
        self.signal.encode(e);
        self.design_timing.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(RtlTimer {
            bitwise: Vec::<BitwiseModel>::decode(d)?,
            ensemble: crate::ensemble::EnsembleModel::decode(d)?,
            signal: crate::signal::SignalModels::decode(d)?,
            design_timing: crate::design::DesignTimingModel::decode(d)?,
        })
    }
}

impl Codec for BlastedDesign {
    fn encode(&self, e: &mut Enc) {
        self.compiled.encode(e);
        self.sog.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(BlastedDesign {
            compiled: CompiledDesign::decode(d)?,
            sog: Bog::decode(d)?,
        })
    }
}

impl Codec for LabelOutcome {
    fn encode(&self, e: &mut Enc) {
        self.endpoint_at.encode(e);
        e.f64(self.wns);
        e.f64(self.tns);
        e.f64(self.area);
        e.f64(self.power);
        e.f64(self.clock);
        e.f64(self.setup);
        e.u64(self.synth_seed);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(LabelOutcome {
            endpoint_at: Vec::decode(d)?,
            wns: d.f64()?,
            tns: d.f64()?,
            area: d.f64()?,
            power: d.f64()?,
            clock: d.f64()?,
            setup: d.f64()?,
            synth_seed: d.u64()?,
        })
    }
}

impl Codec for PathRow {
    fn encode(&self, e: &mut Enc) {
        self.features.encode(e);
        self.ops.encode(e);
        self.tok_feats.encode(e);
        e.usize(self.endpoint);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(PathRow {
            features: Vec::decode(d)?,
            ops: Vec::decode(d)?,
            tok_feats: Vec::decode(d)?,
            endpoint: d.usize()?,
        })
    }
}

impl Codec for VariantData {
    fn encode(&self, e: &mut Enc) {
        self.variant.encode(e);
        self.rows.encode(e);
        self.groups.encode(e);
        self.endpoint_sta_at.encode(e);
        self.driving_regs.encode(e);
        self.design_feats.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(VariantData {
            variant: BogVariant::decode(d)?,
            rows: Vec::decode(d)?,
            groups: Vec::decode(d)?,
            endpoint_sta_at: Vec::decode(d)?,
            driving_regs: Vec::decode(d)?,
            design_feats: Vec::decode(d)?,
        })
    }
}

impl Codec for DesignData {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.str(&self.source);
        self.sog.encode(e);
        self.variant_data.encode(e);
        self.labels_at.encode(e);
        e.f64(self.clock);
        e.f64(self.setup);
        e.f64(self.wns);
        e.f64(self.tns);
        e.f64(self.area);
        e.f64(self.power);
        self.ast_feats.encode(e);
        e.u64(self.synth_seed);
        e.f64(self.synth_effort);
        self.prepare_key.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let name: Arc<str> = Arc::decode(d)?;
        let source = d.str()?;
        let sog = Bog::decode(d)?;
        // Signal names are derivable from the SOG — recomputed instead of
        // stored, matching what featurization builds.
        Ok(DesignData {
            signal_names: crate::pipeline::signal_names_of(&sog),
            name,
            source,
            sog,
            variant_data: Vec::decode(d)?,
            labels_at: Arc::decode(d)?,
            clock: d.f64()?,
            setup: d.f64()?,
            wns: d.f64()?,
            tns: d.f64()?,
            area: d.f64()?,
            power: d.f64()?,
            ast_feats: Vec::decode(d)?,
            synth_seed: d.u64()?,
            synth_effort: d.f64()?,
            prepare_key: ContentHash::decode(d)?,
        })
    }
}

impl Codec for FlowMetrics {
    fn encode(&self, e: &mut Enc) {
        e.f64(self.wns);
        e.f64(self.tns);
        e.f64(self.power);
        e.f64(self.area);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(FlowMetrics {
            wns: d.f64()?,
            tns: d.f64()?,
            power: d.f64()?,
            area: d.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, effort: f64, threads: usize) -> TimerConfig {
        TimerConfig {
            seed,
            synth_effort: effort,
            threads,
        }
    }

    #[test]
    fn keys_are_stable_for_identical_inputs() {
        let a = PrepareKeys::derive("m", "module m(); endmodule", &cfg(1, 0.6, 1));
        let b = PrepareKeys::derive("m", "module m(); endmodule", &cfg(1, 0.6, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_never_enters_a_key() {
        let a = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 1));
        let b = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 64));
        assert_eq!(a, b);
    }

    #[test]
    fn source_change_invalidates_every_stage() {
        let a = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 1));
        let b = PrepareKeys::derive("m", "src2", &cfg(1, 0.6, 1));
        assert_ne!(a.compile, b.compile);
        assert_ne!(a.blast, b.blast);
        assert_ne!(a.label, b.label);
        assert_ne!(a.featurize, b.featurize);
    }

    #[test]
    fn label_config_fields_invalidate_only_downstream_stages() {
        let base = PrepareKeys::derive("m", "src", &cfg(1, 0.6, 1));
        for other in [
            PrepareKeys::derive("m", "src", &cfg(2, 0.6, 1)),
            PrepareKeys::derive("m", "src", &cfg(1, 0.7, 1)),
        ] {
            assert_eq!(base.compile, other.compile);
            assert_eq!(base.blast, other.blast);
            assert_ne!(base.label, other.label);
            assert_ne!(base.featurize, other.featurize);
        }
    }

    #[test]
    fn compile_key_ignores_modules_outside_the_top_cone() {
        let base = "module leaf(input a, output y); assign y = ~a; endmodule
module m(input clk, input a, output q);
  wire t;
  leaf u0 (.a(a), .y(t));
  reg r;
  always @(posedge clk) r <= t;
  assign q = r;
endmodule";
        let with_unused =
            format!("{base}\nmodule unused(input a, output y); assign y = a; endmodule");
        let c = cfg(1, 0.6, 1);
        let a = PrepareKeys::derive("m", base, &c);
        let b = PrepareKeys::derive("m", &with_unused, &c);
        assert_eq!(a.compile, b.compile, "unused module does not invalidate");
        assert_eq!(a.featurize, b.featurize);
        // Editing the instantiated leaf invalidates everything.
        let edited = base.replace("~a", "a");
        let e = PrepareKeys::derive("m", &edited, &c);
        assert_ne!(a.compile, e.compile);
    }

    #[test]
    fn shard_key_tracks_each_ingredient() {
        let cone = ContentHash::of_bytes(b"cone");
        let base = shard_key(0, 1.0, 7, &cone);
        assert_eq!(base, shard_key(0, 1.0, 7, &cone));
        assert_ne!(base, shard_key(1, 1.0, 7, &cone));
        assert_ne!(base, shard_key(0, 1.5, 7, &cone));
        assert_ne!(base, shard_key(0, 1.0, 8, &cone));
        assert_ne!(base, shard_key(0, 1.0, 7, &ContentHash::of_bytes(b"other")));
    }

    #[test]
    fn opt_flow_key_tracks_scores_and_design() {
        let k1 = ContentHash::of_bytes(b"d1");
        let k2 = ContentHash::of_bytes(b"d2");
        let s = [1.0, 2.0, 3.0];
        assert_eq!(opt_flow_key(&k1, &s), opt_flow_key(&k1, &s));
        assert_ne!(opt_flow_key(&k1, &s), opt_flow_key(&k2, &s));
        assert_ne!(opt_flow_key(&k1, &s), opt_flow_key(&k1, &[1.0, 2.0, 3.5]));
    }

    #[test]
    fn flow_metrics_round_trip() {
        let m = FlowMetrics {
            wns: -0.25,
            tns: -10.5,
            power: 120.0,
            area: 88.25,
        };
        assert_eq!(FlowMetrics::from_bytes(&m.to_bytes()).unwrap(), m);
    }
}
