//! The checksummed entry envelope shared by every byte-oriented store tier.
//!
//! A stored artifact travels between tiers (disk files, wire frames, the
//! server's in-memory tier) as one *entry*: a fixed header stamping the
//! [`FORMAT_VERSION`], the payload, and a trailing FNV-1a checksum. Framing
//! and validation live here so the disk tier, the remote protocol and
//! [`crate::Store`] all agree byte-for-byte — an entry written by one
//! process validates identically in any other, and a corrupted, truncated
//! or differently-versioned entry is rejected the same way everywhere
//! (always "treat as a miss", never an error).

use crate::codec::FORMAT_VERSION;

/// Magic bytes opening every entry.
pub const ENTRY_MAGIC: [u8; 4] = *b"RTLT";
/// Fixed entry header size: magic + format version + payload length.
pub const ENTRY_HEADER: usize = 4 + 4 + 8;
/// Trailing FNV-1a checksum size.
pub const ENTRY_TRAILER: usize = 8;
/// Framing overhead of one entry (header + trailer).
pub const ENTRY_OVERHEAD: usize = ENTRY_HEADER + ENTRY_TRAILER;

/// FNV-1a over a byte slice — the entry checksum. Not cryptographic; it
/// guards against torn writes and line noise, while the SHA-256 content
/// *key* already guarantees what the payload should be.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frames `payload` as one entry: header, payload, checksum.
pub fn encode_entry(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(ENTRY_OVERHEAD + payload.len());
    bytes.extend_from_slice(&ENTRY_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes
}

/// Oldest format version this build still reads. v2 entries carry bare
/// codec bytes where v3 carries [`crate::compress`] frames; the disk tier
/// lifts a v2 payload into a raw frame on read, so pre-compression caches
/// stay warm across the upgrade.
pub const MIN_FORMAT_VERSION: u32 = 2;

/// Validates one entry and returns its payload slice, or `None` for any
/// truncation, bad magic, version mismatch, length mismatch or checksum
/// failure. Only current-version entries pass; use
/// [`decode_entry_versioned`] to also accept readable older versions.
pub fn decode_entry(bytes: &[u8]) -> Option<&[u8]> {
    match decode_entry_versioned(bytes) {
        Some((FORMAT_VERSION, payload)) => Some(payload),
        _ => None,
    }
}

/// Validates one entry accepting any readable format version
/// ([`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]), returning the stamped
/// version alongside the payload so the caller can interpret the payload
/// bytes accordingly.
pub fn decode_entry_versioned(bytes: &[u8]) -> Option<(u32, &[u8])> {
    if bytes.len() < ENTRY_OVERHEAD || bytes[..4] != ENTRY_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return None;
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    if bytes.len() != ENTRY_OVERHEAD + len {
        return None;
    }
    let payload = &bytes[ENTRY_HEADER..ENTRY_HEADER + len];
    let checksum = u64::from_le_bytes(
        bytes[ENTRY_HEADER + len..]
            .try_into()
            .expect("trailer bytes"),
    );
    if fnv1a(payload) != checksum {
        return None;
    }
    Some((version, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_round_trips() {
        let payload = b"some artifact bytes";
        let entry = encode_entry(payload);
        assert_eq!(decode_entry(&entry), Some(&payload[..]));
        // Empty payloads are valid entries.
        let empty = encode_entry(&[]);
        assert_eq!(decode_entry(&empty), Some(&[][..]));
    }

    #[test]
    fn corruption_truncation_and_version_mismatch_rejected() {
        let good = encode_entry(b"payload");
        // Payload flip.
        let mut flipped = good.clone();
        flipped[ENTRY_HEADER] ^= 1;
        assert_eq!(decode_entry(&flipped), None);
        // Any truncation.
        for cut in 0..good.len() {
            assert_eq!(decode_entry(&good[..cut]), None, "cut {cut}");
        }
        // Stale format version.
        let mut stale = good.clone();
        stale[4] ^= 0xFF;
        assert_eq!(decode_entry(&stale), None);
        // Bad magic.
        let mut magicless = good.clone();
        magicless[0] = b'X';
        assert_eq!(decode_entry(&magicless), None);
        // Length header lying about the payload size.
        let mut lying = good;
        lying[8] ^= 0x7F;
        assert_eq!(decode_entry(&lying), None);
    }

    #[test]
    fn readable_older_versions_decode_with_their_stamp() {
        // A v2 entry, as a pre-compression build would have written it.
        let payload = b"bare codec bytes";
        let mut v2 = Vec::new();
        v2.extend_from_slice(&ENTRY_MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v2.extend_from_slice(payload);
        v2.extend_from_slice(&fnv1a(payload).to_le_bytes());
        // Strict decoding rejects it; versioned decoding reports v2.
        assert_eq!(decode_entry(&v2), None);
        assert_eq!(decode_entry_versioned(&v2), Some((2u32, &payload[..])));
        // Current-version entries report the current stamp.
        let v3 = encode_entry(payload);
        assert_eq!(
            decode_entry_versioned(&v3),
            Some((FORMAT_VERSION, &payload[..]))
        );
        // Versions below the floor or above the current are rejected.
        let mut v1 = v2.clone();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(decode_entry_versioned(&v1), None);
        let mut v99 = v2;
        v99[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode_entry_versioned(&v99), None);
    }
}
