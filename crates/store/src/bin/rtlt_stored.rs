//! `rtlt-stored` — the shared artifact service.
//!
//! Serves the content-addressed store over TCP so CI fleets and developer
//! machines share one warm cache (see `rtlt_store::server`). Std-only; no
//! flags are required:
//!
//! ```text
//! rtlt-stored [--addr HOST:PORT] [--dir DIR] [--mem-budget BYTES]
//!             [--gc-budget BYTES] [--lease-timeout SECONDS]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:7878`),
//! * `--dir`  — disk-tier root (default `rtlt-stored-cache`),
//! * `--mem-budget` — in-memory tier budget in bytes (default 512 MiB,
//!   `0` disables the memory tier),
//! * `--gc-budget` — if set, evict the disk tier down to this many bytes
//!   once at startup (steady-state eviction is driven by clients or
//!   operators via the protocol's GC request),
//! * `--lease-timeout` — seconds after which a silent fleet worker's
//!   design lease is re-queued for work stealing (default 120).

use rtlt_store::plan::DEFAULT_LEASE_TIMEOUT;
use rtlt_store::server::{self, ArtifactServer, ServerConfig, DEFAULT_ADDR};
use rtlt_store::wire::Request;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: rtlt-stored [--addr HOST:PORT] [--dir DIR] [--mem-budget BYTES] \
         [--gc-budget BYTES] [--lease-timeout SECONDS]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut dir = std::path::PathBuf::from("rtlt-stored-cache");
    let mut mem_budget = server::DEFAULT_SERVER_MEM_BUDGET;
    let mut gc_budget: Option<u64> = None;
    let mut lease_timeout = DEFAULT_LEASE_TIMEOUT;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--dir" => dir = value("--dir").into(),
            "--mem-budget" => {
                mem_budget = value("--mem-budget").parse().unwrap_or_else(|_| usage())
            }
            "--gc-budget" => {
                gc_budget = Some(value("--gc-budget").parse().unwrap_or_else(|_| usage()))
            }
            "--lease-timeout" => {
                lease_timeout = Duration::from_secs_f64(
                    value("--lease-timeout")
                        .parse()
                        .ok()
                        .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }

    let cfg = ServerConfig {
        dir,
        mem_budget,
        lease_timeout,
    };
    let server = Arc::new(ArtifactServer::new(&cfg));
    if let Some(budget) = gc_budget {
        if let rtlt_store::wire::Response::Done(r) = server.handle(Request::Gc {
            budget_bytes: budget,
        }) {
            eprintln!(
                "[rtlt-stored] startup gc: {} files scanned, {} evicted, {} KiB remain",
                r.scanned_files,
                r.evicted_files,
                r.remaining_bytes / 1024
            );
        }
    }

    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("[rtlt-stored] cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = listener.local_addr().expect("bound address");
    eprintln!(
        "[rtlt-stored] serving {} (wire v{}, multiplexed event loop; dir {}, mem budget {} KiB, lease timeout {:.1}s)",
        bound,
        rtlt_store::wire::WIRE_VERSION,
        cfg.dir.display(),
        cfg.mem_budget / 1024,
        cfg.lease_timeout.as_secs_f64()
    );
    server::serve(listener, server)
}
