//! Hand-rolled, std-only payload compression below the versioned codec.
//!
//! Every byte tier under [`crate::Store`] carries *compress frames*, not
//! decoded codec bytes: `[mode u8] ++ mode-specific body`. Four modes:
//!
//! * [`MODE_RAW`] — passthrough escape: the body is the payload verbatim,
//!   so incompressible payloads never regress by more than the 1-byte tag.
//! * [`MODE_PLANES`] — byte-plane transposition at stride 8: the payload's
//!   leading whole 8-byte words are transposed into eight byte planes, each
//!   plane is delta-coded (wrapping u8 differences), and the result is
//!   run-length encoded. f64-heavy `PathRow`/`VariantData` tables expose
//!   long runs of equal sign/exponent bytes once transposed, and the
//!   transform is byte-aligned, so the 4-mod-8 offsets produced by the
//!   codec's u32 length prefixes cannot break it.
//! * [`MODE_WORDS`] — order-preserving f64 bit transposition plus zigzag
//!   deltas: each u64 word goes through the sortable-bits transform
//!   (mapping IEEE-754 sign/magnitude order to unsigned integer order),
//!   consecutive words are delta-coded, and the zigzagged deltas are
//!   LEB128-varint coded. Wins on monotone numeric columns such as arrival
//!   times or per-level slack.
//! * [`MODE_LZ`] — a small LZ77 with a 64 KiB window: dictionary coding
//!   for repeated signal-name strings and other byte-level redundancy.
//!
//! [`compress`] runs every candidate encoder and keeps the smallest frame
//! (raw escape included), so mode choice is purely size-driven and each
//! frame is self-describing through its mode tag. [`decompress`] is total:
//! malformed, truncated, or corrupt frames yield `None`, which callers
//! treat as a cache miss — the store's universal degrade-to-recompute
//! posture. Decoders never trust a length header: declared sizes are
//! capped by [`MAX_DECODED`] and every production step is bounds-checked
//! against the declared size before bytes are materialized.

/// Mode tag: raw passthrough, body is the payload verbatim.
pub const MODE_RAW: u8 = 0;
/// Mode tag: byte-plane transposition + per-plane delta + RLE.
pub const MODE_PLANES: u8 = 1;
/// Mode tag: sortable-bits word deltas, zigzag varint coded.
pub const MODE_WORDS: u8 = 2;
/// Mode tag: LZ77 with a 64 KiB window.
pub const MODE_LZ: u8 = 3;

/// Hard cap on any declared decoded size (mirrors `wire::MAX_FRAME_BODY`):
/// a corrupt header cannot demand more than one maximum frame of memory.
pub const MAX_DECODED: u64 = 1 << 30;

const WORD: usize = 8;
/// Shortest run worth a run token (a run token costs >= 2 bytes).
const RUN_MIN: usize = 4;
/// Fewest whole words for which the word-granular modes are attempted.
const MIN_WORDS: usize = 4;
const LZ_WINDOW: usize = 64 * 1024;
const LZ_MIN_MATCH: usize = 4;
const LZ_HASH_BITS: u32 = 15;

/// LEB128-encodes `v`, appending to `out`.
pub fn varint_encode(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from the front of `bytes`, returning the
/// value and the number of bytes consumed. Rejects encodings longer than
/// 10 bytes and any bits past the 64th.
pub fn varint_decode(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &b) in bytes.iter().enumerate().take(10) {
        let low = u64::from(b & 0x7f);
        if i == 9 && low > 1 {
            return None;
        }
        v |= low << (7 * i);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

/// Maps a signed delta onto the unsigned varint-friendly zigzag line.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Order-preserving bit transform: interpreted as f64 bit patterns, the
/// mapped u64s sort in the same order as the floats (negatives reversed
/// below positives), so deltas between neighboring values stay small.
fn sortable_bits(w: u64) -> u64 {
    if w >> 63 == 1 {
        !w
    } else {
        w | (1 << 63)
    }
}

fn unsortable_bits(m: u64) -> u64 {
    if m >> 63 == 1 {
        m & !(1 << 63)
    } else {
        !m
    }
}

/// Wraps `payload` in a raw passthrough frame (mode byte + verbatim bytes).
/// This is the identity encoding: old uncompressed entries and legacy wire
/// payloads are lifted into the frame space with it.
pub fn raw_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 1);
    out.push(MODE_RAW);
    out.extend_from_slice(payload);
    out
}

/// Compresses `payload`, returning the smallest frame among every mode and
/// the raw escape. Never larger than `payload.len() + 1`.
pub fn compress(payload: &[u8]) -> Vec<u8> {
    let mut best = raw_frame(payload);
    for cand in [
        planes_frame(payload),
        words_frame(payload),
        lz_frame(payload),
    ]
    .into_iter()
    .flatten()
    {
        if cand.len() < best.len() {
            best = cand;
        }
    }
    best
}

/// Decompresses a frame produced by [`compress`] / [`raw_frame`]. Returns
/// `None` on any malformed, truncated, or unknown-mode frame.
pub fn decompress(frame: &[u8]) -> Option<Vec<u8>> {
    let (&mode, body) = frame.split_first()?;
    match mode {
        MODE_RAW => Some(body.to_vec()),
        MODE_PLANES => planes_decode(body),
        MODE_WORDS => words_decode(body),
        MODE_LZ => lz_decode(body),
        _ => None,
    }
}

/// Cheap peek at a frame's decoded payload size without decompressing it.
pub fn decoded_len(frame: &[u8]) -> Option<u64> {
    let (&mode, body) = frame.split_first()?;
    match mode {
        MODE_RAW => Some(body.len() as u64),
        MODE_PLANES | MODE_WORDS | MODE_LZ => {
            let (n, _) = varint_decode(body)?;
            (n <= MAX_DECODED).then_some(n)
        }
        _ => None,
    }
}

// ---- MODE_PLANES ----------------------------------------------------------

/// Body: varint(decoded_len) ++ varint(rle_len) ++ RLE bytes ++ raw tail.
/// The RLE section decodes to the delta-coded byte planes of the first
/// `decoded_len / 8 * 8` bytes; the tail is the `decoded_len % 8` remainder.
fn planes_frame(payload: &[u8]) -> Option<Vec<u8>> {
    let words = payload.len() / WORD;
    if words < MIN_WORDS {
        return None;
    }
    let head = words * WORD;
    let mut planes = Vec::with_capacity(head);
    for p in 0..WORD {
        let mut prev = 0u8;
        for chunk in payload[..head].chunks_exact(WORD) {
            let b = chunk[p];
            planes.push(b.wrapping_sub(prev));
            prev = b;
        }
    }
    let rle = rle_encode(&planes);
    let mut out = vec![MODE_PLANES];
    varint_encode(payload.len() as u64, &mut out);
    varint_encode(rle.len() as u64, &mut out);
    out.extend_from_slice(&rle);
    out.extend_from_slice(&payload[head..]);
    Some(out)
}

fn planes_decode(body: &[u8]) -> Option<Vec<u8>> {
    let (decoded_len, used) = varint_decode(body)?;
    if decoded_len > MAX_DECODED {
        return None;
    }
    let body = &body[used..];
    let (rle_len, used) = varint_decode(body)?;
    let body = &body[used..];
    let rle_len = usize::try_from(rle_len).ok()?;
    if body.len() < rle_len {
        return None;
    }
    let (rle, tail) = body.split_at(rle_len);
    let total = decoded_len as usize;
    let words = total / WORD;
    if tail.len() != total - words * WORD {
        return None;
    }
    let planes = rle_decode(rle, words * WORD)?;
    let mut out = vec![0u8; total];
    for (p, plane) in planes.chunks_exact(words.max(1)).enumerate() {
        let mut prev = 0u8;
        for (chunk, &d) in out.chunks_exact_mut(WORD).zip(plane) {
            prev = prev.wrapping_add(d);
            chunk[p] = prev;
        }
    }
    out[words * WORD..].copy_from_slice(tail);
    Some(out)
}

/// RLE token: varint head `v` with `n = v >> 1`; `v & 1 == 1` is a run
/// (one byte follows, repeated `n` times), `v & 1 == 0` a literal block
/// (`n` bytes follow). `n == 0` is invalid — every token must progress.
fn rle_encode(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut lit_start = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let mut run = 1;
        while i + run < bytes.len() && bytes[i + run] == b {
            run += 1;
        }
        if run >= RUN_MIN {
            flush_literals(&bytes[lit_start..i], &mut out);
            varint_encode(((run as u64) << 1) | 1, &mut out);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&bytes[lit_start..], &mut out);
    out
}

fn flush_literals(lit: &[u8], out: &mut Vec<u8>) {
    if !lit.is_empty() {
        varint_encode((lit.len() as u64) << 1, out);
        out.extend_from_slice(lit);
    }
}

fn rle_decode(mut rle: &[u8], expected: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(expected.min(1 << 20));
    while !rle.is_empty() {
        let (head, used) = varint_decode(rle)?;
        rle = &rle[used..];
        let n = usize::try_from(head >> 1).ok()?;
        if n == 0 || n > expected - out.len() {
            return None;
        }
        if head & 1 == 1 {
            let (&b, rest) = rle.split_first()?;
            rle = rest;
            out.resize(out.len() + n, b);
        } else {
            if rle.len() < n {
                return None;
            }
            out.extend_from_slice(&rle[..n]);
            rle = &rle[n..];
        }
    }
    (out.len() == expected).then_some(out)
}

// ---- MODE_WORDS -----------------------------------------------------------

/// Body: varint(decoded_len) ++ one varint per whole 8-byte word (zigzag of
/// the sortable-bits delta against the previous word, seed 0) ++ raw tail.
fn words_frame(payload: &[u8]) -> Option<Vec<u8>> {
    let words = payload.len() / WORD;
    if words < MIN_WORDS {
        return None;
    }
    let head = words * WORD;
    let mut out = vec![MODE_WORDS];
    varint_encode(payload.len() as u64, &mut out);
    let mut prev = 0u64;
    for chunk in payload[..head].chunks_exact(WORD) {
        let m = sortable_bits(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        varint_encode(zigzag(m.wrapping_sub(prev) as i64), &mut out);
        prev = m;
    }
    out.extend_from_slice(&payload[head..]);
    Some(out)
}

fn words_decode(body: &[u8]) -> Option<Vec<u8>> {
    let (decoded_len, used) = varint_decode(body)?;
    if decoded_len > MAX_DECODED {
        return None;
    }
    let mut body = &body[used..];
    let total = decoded_len as usize;
    let words = total / WORD;
    if words > body.len() {
        return None; // each word needs at least one varint byte
    }
    let mut out = Vec::with_capacity(total);
    let mut prev = 0u64;
    for _ in 0..words {
        let (v, used) = varint_decode(body)?;
        body = &body[used..];
        prev = prev.wrapping_add(unzigzag(v) as u64);
        out.extend_from_slice(&unsortable_bits(prev).to_le_bytes());
    }
    if body.len() != total - words * WORD {
        return None;
    }
    out.extend_from_slice(body);
    Some(out)
}

// ---- MODE_LZ --------------------------------------------------------------

/// Body: varint(decoded_len) ++ tokens. Literal token: varint(n << 1) then
/// `n` bytes. Match token: varint((len << 1) | 1) then varint(distance),
/// distance in `1..=produced` (overlapping copies allowed).
fn lz_frame(payload: &[u8]) -> Option<Vec<u8>> {
    if payload.len() < LZ_MIN_MATCH * 2 {
        return None;
    }
    let mut out = vec![MODE_LZ];
    varint_encode(payload.len() as u64, &mut out);
    let mut table = vec![usize::MAX; 1 << LZ_HASH_BITS];
    let mut i = 0;
    let mut lit_start = 0;
    while i + LZ_MIN_MATCH <= payload.len() {
        let h = lz_hash(&payload[i..i + LZ_MIN_MATCH]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX
            && i - cand <= LZ_WINDOW
            && payload[cand..cand + LZ_MIN_MATCH] == payload[i..i + LZ_MIN_MATCH]
        {
            let mut len = LZ_MIN_MATCH;
            while i + len < payload.len() && payload[cand + len] == payload[i + len] {
                len += 1;
            }
            flush_literals(&payload[lit_start..i], &mut out);
            varint_encode(((len as u64) << 1) | 1, &mut out);
            varint_encode((i - cand) as u64, &mut out);
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&payload[lit_start..], &mut out);
    Some(out)
}

fn lz_hash(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes.try_into().expect("4-byte prefix"));
    (v.wrapping_mul(2_654_435_761) >> (32 - LZ_HASH_BITS)) as usize
}

fn lz_decode(mut body: &[u8]) -> Option<Vec<u8>> {
    let (decoded_len, used) = varint_decode(body)?;
    if decoded_len > MAX_DECODED {
        return None;
    }
    body = &body[used..];
    let total = decoded_len as usize;
    let mut out = Vec::with_capacity(total.min(1 << 20));
    while !body.is_empty() {
        let (head, used) = varint_decode(body)?;
        body = &body[used..];
        let n = usize::try_from(head >> 1).ok()?;
        if n == 0 || n > total - out.len() {
            return None;
        }
        if head & 1 == 1 {
            let (dist, used) = varint_decode(body)?;
            body = &body[used..];
            let dist = usize::try_from(dist).ok()?;
            if dist == 0 || dist > out.len() {
                return None;
            }
            for _ in 0..n {
                out.push(out[out.len() - dist]);
            }
        } else {
            if body.len() < n {
                return None;
            }
            out.extend_from_slice(&body[..n]);
            body = &body[n..];
        }
    }
    (out.len() == total).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_bytes(mut seed: u64, n: usize) -> Vec<u8> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            varint_encode(v, &mut buf);
            assert_eq!(varint_decode(&buf), Some((v, buf.len())), "value {v}");
        }
        // Overlong and overflowing encodings are rejected.
        assert_eq!(varint_decode(&[0x80; 10]), None);
        assert_eq!(
            varint_decode(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]),
            None
        );
        assert_eq!(varint_decode(&[0x80]), None); // truncated continuation
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn sortable_bits_round_trips_and_orders() {
        for f in [0.0f64, -0.0, 1.5, -1.5, f64::MAX, f64::MIN, f64::INFINITY] {
            let w = f.to_bits();
            assert_eq!(unsortable_bits(sortable_bits(w)), w);
        }
        // Order preservation: -2.0 < -1.0 < 0.0 < 1.0 < 2.0.
        let sorted: Vec<u64> = [-2.0f64, -1.0, 0.0, 1.0, 2.0]
            .iter()
            .map(|f| sortable_bits(f.to_bits()))
            .collect();
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn float_table_compresses_and_round_trips() {
        // A monotone f64 column, the shape of sorted arrival times.
        let mut payload = Vec::new();
        for i in 0..4000u32 {
            payload.extend_from_slice(&(f64::from(i) * 0.125 + 3.0).to_bits().to_le_bytes());
        }
        let frame = compress(&payload);
        assert!(
            frame[0] != MODE_RAW,
            "float table should not fall back to raw"
        );
        assert!(
            frame.len() < payload.len() / 2,
            "{} vs {}",
            frame.len(),
            payload.len()
        );
        assert_eq!(decompress(&frame).as_deref(), Some(payload.as_slice()));
        assert_eq!(decoded_len(&frame), Some(payload.len() as u64));
    }

    #[test]
    fn repeated_strings_compress_via_lz() {
        let mut payload = Vec::new();
        for i in 0..400 {
            payload.extend_from_slice(format!("u_core/alu_{}/carry_chain/bit", i % 7).as_bytes());
        }
        let frame = compress(&payload);
        assert!(frame.len() < payload.len() / 2);
        assert_eq!(decompress(&frame).as_deref(), Some(payload.as_slice()));
    }

    #[test]
    fn incompressible_payloads_take_the_raw_escape() {
        let payload = xorshift_bytes(0x9e3779b97f4a7c15, 4096);
        let frame = compress(&payload);
        assert_eq!(frame.len(), payload.len() + 1);
        assert_eq!(frame[0], MODE_RAW);
        assert_eq!(decompress(&frame).as_deref(), Some(payload.as_slice()));
    }

    #[test]
    fn unaligned_tails_survive_every_mode() {
        for tail in 0..8 {
            let mut payload = Vec::new();
            for i in 0..200u32 {
                payload.extend_from_slice(&f64::from(i).to_bits().to_le_bytes());
            }
            payload.extend_from_slice(&vec![0xAB; tail]);
            for frame in [
                raw_frame(&payload),
                planes_frame(&payload).expect("planes"),
                words_frame(&payload).expect("words"),
                lz_frame(&payload).expect("lz"),
            ] {
                assert_eq!(decompress(&frame).as_deref(), Some(payload.as_slice()));
            }
        }
    }

    #[test]
    fn empty_and_tiny_payloads_round_trip() {
        for payload in [&b""[..], b"x", b"tiny payload"] {
            let frame = compress(payload);
            assert_eq!(decompress(&frame).as_deref(), Some(payload));
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut payload = Vec::new();
        for i in 0..300u32 {
            payload.extend_from_slice(&f64::from(i).to_bits().to_le_bytes());
        }
        for frame in [
            planes_frame(&payload).expect("planes"),
            words_frame(&payload).expect("words"),
            lz_frame(&payload).expect("lz"),
        ] {
            assert!(decompress(&frame).is_some());
            for cut in 0..frame.len() {
                assert_eq!(decompress(&frame[..cut]), None, "prefix of {cut} bytes");
            }
        }
        assert_eq!(decompress(&[]), None);
        assert_eq!(decompress(&[MODE_LZ + 42]), None, "unknown mode");
    }
}
