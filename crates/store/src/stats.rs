//! Per-namespace hit/miss/byte accounting for a [`crate::Store`].

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Counters of one namespace (one pipeline stage).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NamespaceStats {
    /// Lookups served from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups served from the on-disk tier (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing and had to compute.
    pub misses: u64,
    /// Payload bytes written to the disk tier.
    pub bytes_written: u64,
    /// Payload bytes read back from the disk tier.
    pub bytes_read: u64,
    /// Disk entries that failed verification/decoding and were discarded.
    pub corrupt_entries: u64,
}

impl NamespaceStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Hit rate in percent (100 when there were no lookups — an untouched
    /// stage is "fully skipped", which is what warm-cache checks want).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            100.0
        } else {
            100.0 * self.hits() as f64 / total as f64
        }
    }
}

/// Point-in-time snapshot of a store's counters, namespace-keyed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-namespace counters, sorted by namespace name.
    pub namespaces: Vec<(String, NamespaceStats)>,
    /// In-memory entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident in the in-memory tier.
    pub mem_bytes: u64,
}

impl StatsSnapshot {
    /// Counters of one namespace (zeros if never touched).
    pub fn namespace(&self, ns: &str) -> NamespaceStats {
        self.namespaces
            .iter()
            .find(|(n, _)| n == ns)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Aggregate counters over a set of namespaces (zeros if none touched).
    pub fn aggregate<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> NamespaceStats {
        let mut total = NamespaceStats::default();
        for ns in names {
            let s = self.namespace(ns);
            total.mem_hits += s.mem_hits;
            total.disk_hits += s.disk_hits;
            total.misses += s.misses;
            total.bytes_written += s.bytes_written;
            total.bytes_read += s.bytes_read;
            total.corrupt_entries += s.corrupt_entries;
        }
        total
    }
}

/// Thread-safe counter store, internal to [`crate::Store`].
#[derive(Debug, Default)]
pub(crate) struct StoreStats {
    inner: Mutex<BTreeMap<String, NamespaceStats>>,
    evictions: std::sync::atomic::AtomicU64,
}

impl StoreStats {
    pub(crate) fn with_ns(&self, ns: &str, f: impl FnOnce(&mut NamespaceStats)) {
        let mut map = self.inner.lock().expect("stats lock");
        f(map.entry(ns.to_owned()).or_default());
    }

    pub(crate) fn count_eviction(&self) {
        self.evictions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, mem_bytes: u64) -> StatsSnapshot {
        let map = self.inner.lock().expect("stats lock");
        StatsSnapshot {
            namespaces: map.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            evictions: self.evictions.load(std::sync::atomic::Ordering::Relaxed),
            mem_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_conventions() {
        let empty = NamespaceStats::default();
        assert_eq!(empty.hit_rate_pct(), 100.0);
        let s = NamespaceStats {
            mem_hits: 3,
            disk_hits: 6,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hits(), 9);
        assert!((s.hit_rate_pct() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_sums_namespaces() {
        let stats = StoreStats::default();
        stats.with_ns("a", |s| s.misses = 2);
        stats.with_ns("b", |s| s.mem_hits = 8);
        let snap = stats.snapshot(0);
        let agg = snap.aggregate(["a", "b", "untouched"]);
        assert_eq!(agg.misses, 2);
        assert_eq!(agg.mem_hits, 8);
        assert!((agg.hit_rate_pct() - 80.0).abs() < 1e-12);
    }
}
