//! Per-namespace, per-tier hit/miss/byte accounting for a [`crate::Store`].

use crate::tier::TierKind;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Counters of one namespace (one pipeline stage).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NamespaceStats {
    /// Lookups served from the in-memory level (the decoded front cache,
    /// or a byte [`crate::MemTier`] in a custom stack).
    pub mem_hits: u64,
    /// Lookups served from the on-disk tier.
    pub disk_hits: u64,
    /// Lookups served from the remote tier (a shared `rtlt-stored`).
    pub remote_hits: u64,
    /// The subset of `remote_hits` whose bytes arrived through a batched
    /// prefetch (one GETM round trip for a whole key set) rather than a
    /// per-key GET.
    pub batched_hits: u64,
    /// Lookups that found nothing and had to compute.
    pub misses: u64,
    /// Decoded (logical) payload bytes written to the byte tiers.
    pub bytes_written: u64,
    /// Decoded (logical) payload bytes read back from the byte tiers.
    pub bytes_read: u64,
    /// Stored (compress-frame) bytes written to the byte tiers — what
    /// actually lands on disk and travels the wire.
    pub stored_bytes_written: u64,
    /// Stored (compress-frame) bytes read back from the byte tiers.
    pub stored_bytes_read: u64,
    /// Entries that failed verification/decoding and were discarded.
    pub corrupt_entries: u64,
    /// Remote wire round trips (write→read turnarounds) attributed to this
    /// namespace's tier traffic — the thing RPC pipelining removes.
    /// Fire-and-forget writes whose acks are absorbed later land in the
    /// store-wide [`StatsSnapshot::remote_round_trips`] but not here.
    pub round_trips: u64,
}

impl NamespaceStats {
    /// Total hits across every tier.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.remote_hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Hit rate in percent (100 when there were no lookups — an untouched
    /// stage is "fully skipped", which is what warm-cache checks want).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            100.0
        } else {
            100.0 * self.hits() as f64 / total as f64
        }
    }

    /// Stored-to-logical byte ratio of this namespace's tier traffic
    /// (lower is better; 1.0 when nothing moved). Write-side traffic is
    /// preferred — it reflects what this run actually produced — falling
    /// back to read-side for warm runs that only consumed.
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_written > 0 {
            self.stored_bytes_written as f64 / self.bytes_written as f64
        } else if self.bytes_read > 0 {
            self.stored_bytes_read as f64 / self.bytes_read as f64
        } else {
            1.0
        }
    }

    /// Counts one hit on the tier level it was served from.
    pub(crate) fn count_tier_hit(&mut self, kind: TierKind) {
        match kind {
            TierKind::Memory => self.mem_hits += 1,
            TierKind::Disk => self.disk_hits += 1,
            TierKind::Remote => self.remote_hits += 1,
        }
    }
}

/// Hits aggregated by tier level — the "where did warm data come from"
/// breakdown the cache reports print.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierHits {
    /// Hits served in memory.
    pub mem: u64,
    /// Hits served from disk.
    pub disk: u64,
    /// Hits served from the remote service.
    pub remote: u64,
}

impl TierHits {
    /// Total hits across the three levels.
    pub fn total(&self) -> u64 {
        self.mem + self.disk + self.remote
    }

    /// Percentage of all hits served by the given level (0 when there were
    /// no hits at all).
    pub fn share_pct(&self, kind: TierKind) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = match kind {
            TierKind::Memory => self.mem,
            TierKind::Disk => self.disk,
            TierKind::Remote => self.remote,
        };
        100.0 * n as f64 / total as f64
    }
}

/// Point-in-time snapshot of a store's counters, namespace-keyed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-namespace counters, sorted by namespace name.
    pub namespaces: Vec<(String, NamespaceStats)>,
    /// In-memory entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident in the in-memory tier.
    pub mem_bytes: u64,
    /// Total remote wire round trips across every namespace, including
    /// turnarounds not attributable to a single namespace (flush drains,
    /// planner RPCs issued through the same connection). Authoritative for
    /// "how often did this run wait on the wire".
    pub remote_round_trips: u64,
}

impl StatsSnapshot {
    /// Counters of one namespace (zeros if never touched).
    pub fn namespace(&self, ns: &str) -> NamespaceStats {
        self.namespaces
            .iter()
            .find(|(n, _)| n == ns)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Aggregate counters over a set of namespaces (zeros if none touched).
    pub fn aggregate<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> NamespaceStats {
        let mut total = NamespaceStats::default();
        for ns in names {
            let s = self.namespace(ns);
            total.mem_hits += s.mem_hits;
            total.disk_hits += s.disk_hits;
            total.remote_hits += s.remote_hits;
            total.batched_hits += s.batched_hits;
            total.misses += s.misses;
            total.bytes_written += s.bytes_written;
            total.bytes_read += s.bytes_read;
            total.stored_bytes_written += s.stored_bytes_written;
            total.stored_bytes_read += s.stored_bytes_read;
            total.corrupt_entries += s.corrupt_entries;
            total.round_trips += s.round_trips;
        }
        total
    }

    /// Hits summed over every namespace, split by tier level.
    pub fn tier_hits(&self) -> TierHits {
        let mut t = TierHits::default();
        for (_, s) in &self.namespaces {
            t.mem += s.mem_hits;
            t.disk += s.disk_hits;
            t.remote += s.remote_hits;
        }
        t
    }
}

/// Thread-safe counter store, internal to [`crate::Store`].
#[derive(Debug, Default)]
pub(crate) struct StoreStats {
    inner: Mutex<BTreeMap<String, NamespaceStats>>,
    evictions: std::sync::atomic::AtomicU64,
}

impl StoreStats {
    pub(crate) fn with_ns(&self, ns: &str, f: impl FnOnce(&mut NamespaceStats)) {
        let mut map = self.inner.lock().expect("stats lock");
        f(map.entry(ns.to_owned()).or_default());
    }

    pub(crate) fn count_eviction(&self) {
        self.evictions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, mem_bytes: u64, remote_round_trips: u64) -> StatsSnapshot {
        let map = self.inner.lock().expect("stats lock");
        StatsSnapshot {
            namespaces: map.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            evictions: self.evictions.load(std::sync::atomic::Ordering::Relaxed),
            mem_bytes,
            remote_round_trips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_conventions() {
        let empty = NamespaceStats::default();
        assert_eq!(empty.hit_rate_pct(), 100.0);
        let s = NamespaceStats {
            mem_hits: 3,
            disk_hits: 4,
            remote_hits: 2,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hits(), 9);
        assert!((s.hit_rate_pct() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_sums_namespaces() {
        let stats = StoreStats::default();
        stats.with_ns("a", |s| s.misses = 2);
        stats.with_ns("b", |s| s.mem_hits = 6);
        stats.with_ns("b", |s| s.remote_hits = 2);
        let snap = stats.snapshot(0, 0);
        let agg = snap.aggregate(["a", "b", "untouched"]);
        assert_eq!(agg.misses, 2);
        assert_eq!(agg.mem_hits, 6);
        assert_eq!(agg.remote_hits, 2);
        assert!((agg.hit_rate_pct() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn compression_ratio_prefers_write_traffic() {
        let none = NamespaceStats::default();
        assert_eq!(none.compression_ratio(), 1.0);
        let wrote = NamespaceStats {
            bytes_written: 1000,
            stored_bytes_written: 250,
            bytes_read: 10,
            stored_bytes_read: 10,
            ..Default::default()
        };
        assert!((wrote.compression_ratio() - 0.25).abs() < 1e-12);
        let read_only = NamespaceStats {
            bytes_read: 1000,
            stored_bytes_read: 500,
            ..Default::default()
        };
        assert!((read_only.compression_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tier_hits_breakdown() {
        let stats = StoreStats::default();
        stats.with_ns("a", |s| {
            s.count_tier_hit(TierKind::Memory);
            s.count_tier_hit(TierKind::Disk);
            s.count_tier_hit(TierKind::Disk);
            s.count_tier_hit(TierKind::Remote);
        });
        let t = stats.snapshot(0, 0).tier_hits();
        assert_eq!((t.mem, t.disk, t.remote), (1, 2, 1));
        assert_eq!(t.total(), 4);
        assert!((t.share_pct(TierKind::Disk) - 50.0).abs() < 1e-12);
        assert_eq!(TierHits::default().share_pct(TierKind::Memory), 0.0);
    }
}
